//! Fig. 4 — CO2-Opt, Oracle, Service-Time-Opt, and Energy-Opt placements
//! in the (% CO2 increase w.r.t. CO2-Opt, % service increase w.r.t.
//! Service-Time-Opt) plane.
//!
//! Paper shape: the three single-objective optima sit far from each
//! other, Energy-Opt is visibly away from CO2-Opt (it ignores embodied
//! carbon and CI variation), and even the Oracle is >7% from both axes —
//! the joint optimum genuinely trades.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::{fmt_placement, EvalSetup};
use std::hint::black_box;

fn print_fig4() {
    let setup = EvalSetup::standard();
    let summaries = vec![
        setup.run(&mut setup.co2_opt()),
        setup.run(&mut setup.oracle()),
        setup.run(&mut setup.service_time_opt()),
        setup.run(&mut setup.energy_opt()),
    ];
    println!("\n=== Fig. 4: single-objective optima vs the Oracle ===");
    for c in setup.placements(&summaries) {
        println!("{}", fmt_placement(&c));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let setup = EvalSetup::quick();
    c.bench_function("fig4/oracle_run_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.oracle())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/debug/deps/headline-a490b6a0cfb944f1.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/debug/deps/libheadline-a490b6a0cfb944f1.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig2_hw_generations-47bfd8ac804e9ea5.d: crates/bench/benches/fig2_hw_generations.rs

/root/repo/target/release/deps/fig2_hw_generations-47bfd8ac804e9ea5: crates/bench/benches/fig2_hw_generations.rs

crates/bench/benches/fig2_hw_generations.rs:

/root/repo/target/debug/deps/fig9_single_gen-e4ed3dda512fc01c.d: crates/bench/benches/fig9_single_gen.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_single_gen-e4ed3dda512fc01c.rmeta: crates/bench/benches/fig9_single_gen.rs Cargo.toml

crates/bench/benches/fig9_single_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

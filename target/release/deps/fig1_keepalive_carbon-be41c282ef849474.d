/root/repo/target/release/deps/fig1_keepalive_carbon-be41c282ef849474.d: crates/bench/benches/fig1_keepalive_carbon.rs

/root/repo/target/release/deps/fig1_keepalive_carbon-be41c282ef849474: crates/bench/benches/fig1_keepalive_carbon.rs

crates/bench/benches/fig1_keepalive_carbon.rs:

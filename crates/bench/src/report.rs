//! The one `BENCH_*.json` writer.
//!
//! Every headline bench (`sim_sharded`, `ecolife_hotpath`,
//! `planner_fitness`) records its numbers in a `BENCH_*.json` at the
//! repo root. Each used to hand-roll its own `format!` blob; this
//! module is the single shared writer, so every file carries the same
//! header block — bench name, host CPU count, the git revision the
//! numbers were measured at, the workload seed, and the trace size —
//! followed by the bench's own rows in insertion order.

use std::fmt::Write as _;

/// An ordered JSON object under construction: a fixed header block,
/// then whatever rows the bench appends.
pub struct BenchJson {
    fields: Vec<(String, String)>,
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repo) is unavailable — bench numbers should name
/// the revision they were measured at.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchJson {
    /// Start a report with the shared header block.
    pub fn new(bench: &str, seed: u64, trace_invocations: usize) -> Self {
        let host_cpus = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut report = BenchJson { fields: Vec::new() };
        report.text("bench", bench);
        report.text("git", &git_describe());
        report.int("host_cpus", host_cpus as u64);
        report.int("seed", seed);
        report.int("trace_invocations", trace_invocations as u64);
        report
    }

    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// A float rounded to `decimals` places — the precision each row
    /// was historically quoted at (0 for wall-clock ms, 2 for
    /// speedups, …).
    pub fn float(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.push(key, format!("{value:.decimals$}"))
    }

    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        let mut escaped = String::with_capacity(value.len() + 2);
        escaped.push('"');
        for c in value.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        escaped.push('"');
        self.push(key, escaped)
    }

    fn push(&mut self, key: &str, rendered: String) -> &mut Self {
        debug_assert!(
            self.fields.iter().all(|(k, _)| k != key),
            "duplicate bench field '{key}'"
        );
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// The pretty-printed object, fields in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Write `BENCH_<file>` at the repository root and echo it to
    /// stdout (the bench logs double as the measurement record).
    pub fn write(&self, file_name: &str) {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file_name);
        let json = self.render();
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}:\n{json}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_then_rows_in_order() {
        let mut r = BenchJson::new("demo", 41, 123);
        r.float("engine_ms", 465.4, 0)
            .float("speedup", 8.666, 2)
            .text("note", "a \"quoted\" note\nwith a newline");
        let json = r.render();
        let keys: Vec<&str> = json
            .lines()
            .filter_map(|l| l.trim().strip_prefix('"'))
            .filter_map(|l| l.split('"').next())
            .collect();
        assert_eq!(
            keys,
            [
                "bench",
                "git",
                "host_cpus",
                "seed",
                "trace_invocations",
                "engine_ms",
                "speedup",
                "note"
            ]
        );
        assert!(json.contains("\"engine_ms\": 465\n") || json.contains("\"engine_ms\": 465,"));
        assert!(json.contains("\"speedup\": 8.67"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(json.trim_end().ends_with('}'));
    }
}

/root/repo/target/release/deps/ecolife_bench-0f34c7b5d9d91d2b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libecolife_bench-0f34c7b5d9d91d2b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/rand-fe596ecd192f5128.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-fe596ecd192f5128.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Concrete SKU catalog matching Table I of the paper, with embodied-carbon
//! and power values calibrated from the Boavizta methodology [25] and the
//! Teads AWS EC2 dataset [34].
//!
//! Calibration rationale (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! * CPU embodied carbon grows with die size / core complexity / process
//!   recency. Values are *compute-subsystem* attributions per the Teads
//!   AWS dataset [34]: the server-level manufacturing footprint
//!   (package, motherboard, PSU, chassis share — ~0.5-0.7 tCO2e per
//!   socket) is carried by the CPU term, exactly as the paper routes all
//!   embodied carbon through its CPU and DRAM terms. 2016-era E5 ≈ 500 kg,
//!   2020-era Platinum ≈ 900 kg.
//! * DRAM embodied carbon per GiB *shrinks* with density generation (more
//!   bits per wafer): 2018 Micron DDR4 ≈ 620 g/GiB, 2019 Samsung ≈ 530
//!   g/GiB (memory-subsystem attribution, Boavizta methodology). This asymmetry (old CPU cheap per core, old DRAM expensive per
//!   GiB) is what makes the keep-alive trade-off function-dependent: small
//!   functions are cheap to keep warm on old hardware (the reserved-core
//!   term dominates), while large-memory functions erode the advantage —
//!   the paper's Fig. 3 "inverted case".
//! * Newer packages are more energy-efficient per unit of work (Sec. II:
//!   "Newer hardware is usually more energy efficient, and hence, results
//!   in lower operational carbon") — the per-work energy of each old part
//!   sits 10-25% above the reference. But older parts carry much lower
//!   embodied attributions and, with more cores per package, a cheaper
//!   reserved idle core — so keep-alive and embodied-heavy phases favor
//!   old while execution favors new. That is precisely the trade-off the
//!   paper measures (Fig. 2: A_OLD saves 23.8% total carbon over a
//!   10-minute keep-alive episode while costing 15.9% execution time).

use crate::{
    CpuModel, DramModel, Fleet, Generation, HardwareNode, HardwarePair, NodeId, PairId, Region,
};

// ---------------------------------------------------------------------------
// CPU SKUs (Table I)
// ---------------------------------------------------------------------------

/// Intel Xeon E5-2686 (2016), the `i3.metal` part: A_OLD.
pub fn xeon_e5_2686() -> CpuModel {
    CpuModel {
        name: "Intel Xeon E5-2686",
        year: 2016,
        cores: 36,
        active_power_w: 145.0,
        idle_core_power_w: 2.2,
        embodied_g: 500_000.0,
        perf_index: 0.80,
    }
}

/// Intel Xeon Platinum 8124M (2017): B_OLD.
pub fn xeon_platinum_8124m() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8124M",
        year: 2017,
        cores: 18,
        active_power_w: 170.0,
        idle_core_power_w: 2.6,
        embodied_g: 600_000.0,
        perf_index: 0.87,
    }
}

/// Intel Xeon Platinum 8275L (2019): C_OLD (one-year gap to the reference).
pub fn xeon_platinum_8275l() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8275L",
        year: 2019,
        cores: 24,
        active_power_w: 185.0,
        idle_core_power_w: 2.8,
        embodied_g: 780_000.0,
        perf_index: 0.95,
    }
}

/// Intel Xeon Platinum 8252C (2020), the `m5zn.metal` part and the
/// reference "new" generation for all three pairs.
pub fn xeon_platinum_8252c() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8252C",
        year: 2020,
        cores: 24,
        active_power_w: 160.0,
        idle_core_power_w: 3.0,
        embodied_g: 900_000.0,
        perf_index: 1.0,
    }
}

// ---------------------------------------------------------------------------
// DRAM SKUs (Table I)
// ---------------------------------------------------------------------------

/// Micron 512 GiB kit (2018): A_OLD memory.
pub fn micron_512() -> DramModel {
    DramModel {
        name: "Micron-512",
        year: 2018,
        capacity_mib: 512 * 1024,
        active_w_per_gib: 0.38,
        idle_w_per_gib: 0.09,
        embodied_g: 620.0 * 512.0,
    }
}

/// Micron 192 GiB kit (2018): B_OLD memory.
pub fn micron_192() -> DramModel {
    DramModel {
        name: "Micron-192",
        year: 2018,
        capacity_mib: 192 * 1024,
        active_w_per_gib: 0.38,
        idle_w_per_gib: 0.09,
        embodied_g: 620.0 * 192.0,
    }
}

/// Samsung 192 GiB kit (2019): the "new" memory for all pairs and C_OLD's.
pub fn samsung_192() -> DramModel {
    DramModel {
        name: "Samsung-192",
        year: 2019,
        capacity_mib: 192 * 1024,
        active_w_per_gib: 0.34,
        idle_w_per_gib: 0.11,
        embodied_g: 530.0 * 192.0,
    }
}

// ---------------------------------------------------------------------------
// Pairs
// ---------------------------------------------------------------------------

/// Pair A (default evaluation configuration, Sec. V): four-year gap.
pub fn pair_a() -> HardwarePair {
    HardwarePair::new(
        PairId::A,
        HardwareNode::new(NodeId(0), Generation::Old, xeon_e5_2686(), micron_512()),
        HardwareNode::new(
            NodeId(1),
            Generation::New,
            xeon_platinum_8252c(),
            samsung_192(),
        ),
    )
}

/// Pair B: three-year gap.
pub fn pair_b() -> HardwarePair {
    HardwarePair::new(
        PairId::B,
        HardwareNode::new(
            NodeId(0),
            Generation::Old,
            xeon_platinum_8124m(),
            micron_192(),
        ),
        HardwareNode::new(
            NodeId(1),
            Generation::New,
            xeon_platinum_8252c(),
            samsung_192(),
        ),
    )
}

/// Pair C: one-year gap (old and new are closest here; the carbon gap is
/// the smallest and the performance gap nearly vanishes, which is what
/// makes the Graph-BFS example in Fig. 2 interesting).
pub fn pair_c() -> HardwarePair {
    HardwarePair::new(
        PairId::C,
        HardwareNode::new(
            NodeId(0),
            Generation::Old,
            xeon_platinum_8275l(),
            samsung_192(),
        ),
        HardwareNode::new(
            NodeId(1),
            Generation::New,
            xeon_platinum_8252c(),
            samsung_192(),
        ),
    )
}

// ---------------------------------------------------------------------------
// Node SKUs and fleets
// ---------------------------------------------------------------------------

/// A deployable bare-metal node SKU: one Table I (CPU, DRAM) combination,
/// named for the AWS instance class it models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sku {
    /// `i3.metal`-class: Xeon E5-2686 (2016) + Micron-512 — A_OLD.
    I3Metal,
    /// `c5.metal`-class: Xeon Platinum 8124M (2017) + Micron-192 — B_OLD.
    C5Metal,
    /// `m5.metal`-class: Xeon Platinum 8275L (2019) + Samsung-192 — C_OLD,
    /// the mid-generation part.
    M5Metal,
    /// `m5zn.metal`-class: Xeon Platinum 8252C (2020) + Samsung-192 — the
    /// reference "new" node of every pair.
    M5znMetal,
}

impl Sku {
    /// All SKUs, oldest CPU first.
    pub const ALL: [Sku; 4] = [Sku::I3Metal, Sku::C5Metal, Sku::M5Metal, Sku::M5znMetal];

    /// The SKU's CPU model.
    pub fn cpu(self) -> CpuModel {
        match self {
            Sku::I3Metal => xeon_e5_2686(),
            Sku::C5Metal => xeon_platinum_8124m(),
            Sku::M5Metal => xeon_platinum_8275l(),
            Sku::M5znMetal => xeon_platinum_8252c(),
        }
    }

    /// The SKU's DRAM kit.
    pub fn dram(self) -> DramModel {
        match self {
            Sku::I3Metal => micron_512(),
            Sku::C5Metal => micron_192(),
            Sku::M5Metal => samsung_192(),
            Sku::M5znMetal => samsung_192(),
        }
    }

    /// Embodied carbon of one *provisioned* node of this SKU (g CO2e):
    /// the CPU package plus the full DRAM kit. This is the procurement
    /// cost a capacity planner pays per node whether or not the node is
    /// ever used — distinct from the per-use embodied *attribution* the
    /// carbon model charges to individual executions and keep-alives.
    pub fn node_embodied_g(self) -> f64 {
        self.cpu().embodied_g + self.dram().embodied_g
    }

    /// The SKU's CPU release year (fleet-relative era tags and planner
    /// reports key on this).
    pub fn year(self) -> u16 {
        self.cpu().year
    }
}

impl std::fmt::Display for Sku {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sku::I3Metal => write!(f, "i3.metal"),
            Sku::C5Metal => write!(f, "c5.metal"),
            Sku::M5Metal => write!(f, "m5.metal"),
            Sku::M5znMetal => write!(f, "m5zn.metal"),
        }
    }
}

/// The full deployable SKU catalog, oldest CPU first — the default
/// candidate set a capacity planner searches over.
pub fn catalog() -> Vec<Sku> {
    Sku::ALL.to_vec()
}

/// Build a fleet from per-SKU node counts (catalog order preserved;
/// zero-count SKUs contribute no nodes).
///
/// # Panics
/// Panics when every count is zero — a fleet needs at least one node.
pub fn fleet_of_counts(counts: &[(Sku, u32)]) -> Fleet {
    let skus: Vec<Sku> = counts
        .iter()
        .flat_map(|&(sku, n)| std::iter::repeat_n(sku, n as usize))
        .collect();
    assert!(
        !skus.is_empty(),
        "a fleet needs at least one node: every SKU count is zero"
    );
    fleet_of(&skus)
}

/// Build a fleet from a SKU list: node `i` gets `NodeId(i)`.
///
/// Each node's `Generation` era tag is assigned relative to the fleet:
/// the newest CPU year present tags `New`, everything older tags `Old`.
/// Fleet code paths key on `NodeId`; the tag only feeds labels and the
/// two-node compatibility surface.
pub fn fleet_of(skus: &[Sku]) -> Fleet {
    assert!(!skus.is_empty(), "a fleet needs at least one SKU");
    let newest_year = skus
        .iter()
        .map(|s| s.cpu().year)
        .max()
        .expect("non-empty SKU list");
    Fleet::new(
        skus.iter()
            .enumerate()
            .map(|(i, s)| {
                let tag = if s.cpu().year == newest_year {
                    Generation::New
                } else {
                    Generation::Old
                };
                HardwareNode::new(NodeId(i as u32), tag, s.cpu(), s.dram())
            })
            .collect(),
    )
}

/// Pair A as a two-node fleet (the default evaluation configuration).
pub fn fleet_a() -> Fleet {
    Fleet::from(pair_a())
}

/// Pair B as a two-node fleet.
pub fn fleet_b() -> Fleet {
    Fleet::from(pair_b())
}

/// Pair C as a two-node fleet.
pub fn fleet_c() -> Fleet {
    Fleet::from(pair_c())
}

/// The three-generation demo fleet: A_OLD (2016) + the mid-generation
/// 8275L (2019) + the reference 8252C (2020). The smallest configuration
/// where placement is a genuine N-way choice — the mid node trades a mild
/// slowdown for cheaper keep-alive than the new node.
pub fn fleet_three_generations() -> Fleet {
    fleet_of(&[Sku::I3Metal, Sku::M5Metal, Sku::M5znMetal])
}

/// Build a fleet from (SKU, region) pairs: node `i` gets `NodeId(i)` and
/// its region tag. Era tags are assigned relative to the whole fleet,
/// exactly as in [`fleet_of`].
pub fn fleet_of_in_regions(placements: &[(Sku, Region)]) -> Fleet {
    let skus: Vec<Sku> = placements.iter().map(|&(s, _)| s).collect();
    let mut fleet = fleet_of(&skus);
    for (i, &(_, region)) in placements.iter().enumerate() {
        fleet = fleet.with_region(NodeId(i as u32), region);
    }
    fleet
}

/// The multi-region catalog fleet of the Fig. 14 robustness study: one
/// pair-A deployment (`i3.metal` + `m5zn.metal`) in **each** of the five
/// evaluated grid regions, in [`Region::ALL`] order (TEN TEX FLA NY CAL)
/// — ten nodes total, nodes `2r`/`2r+1` being region `r`'s old/new pair.
/// With per-node carbon-intensity resolution this turns the paper's five
/// separate single-region runs into one fleet, and — when a scheduler is
/// free to place across regions — makes the grid mix itself a placement
/// axis.
pub fn fleet_five_regions() -> Fleet {
    let placements: Vec<(Sku, Region)> = Region::ALL
        .iter()
        .flat_map(|&r| [(Sku::I3Metal, r), (Sku::M5znMetal, r)])
        .collect();
    fleet_of_in_regions(&placements)
}

/// Look a pair up by id.
pub fn pair(id: PairId) -> HardwarePair {
    match id {
        PairId::A => pair_a(),
        PairId::B => pair_b(),
        PairId::C => pair_c(),
    }
}

/// All three pairs, in Table I order.
pub fn all_pairs() -> Vec<HardwarePair> {
    vec![pair_a(), pair_b(), pair_c()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_cpu_has_unit_perf_index() {
        assert_eq!(xeon_platinum_8252c().perf_index, 1.0);
    }

    #[test]
    fn older_cpus_are_slower() {
        let new = xeon_platinum_8252c();
        for old in [xeon_e5_2686(), xeon_platinum_8124m(), xeon_platinum_8275l()] {
            assert!(old.perf_index < new.perf_index, "{} not slower", old.name);
        }
    }

    #[test]
    fn older_cpus_have_lower_embodied_carbon() {
        let new = xeon_platinum_8252c();
        for old in [xeon_e5_2686(), xeon_platinum_8124m(), xeon_platinum_8275l()] {
            assert!(old.embodied_g < new.embodied_g, "{} not lower EC", old.name);
        }
    }

    #[test]
    fn older_cpus_have_lower_per_core_idle_power() {
        // The keep-alive advantage of older hardware requires the reserved
        // core to be cheaper to keep powered.
        let new = xeon_platinum_8252c();
        for old in [xeon_e5_2686(), xeon_platinum_8124m(), xeon_platinum_8275l()] {
            assert!(old.idle_core_power_w < new.idle_core_power_w);
        }
    }

    #[test]
    fn newer_hw_is_more_energy_efficient_per_unit_of_work() {
        // Sec. II: newer hardware has lower operational energy for the
        // same work. Energy per unit of work = P_active × slowdown.
        let new = xeon_platinum_8252c();
        let new_energy = new.active_power_w * new.slowdown();
        for old in [xeon_e5_2686(), xeon_platinum_8124m(), xeon_platinum_8275l()] {
            let ratio = old.active_power_w * old.slowdown() / new_energy;
            assert!(
                (1.0..=1.3).contains(&ratio),
                "{}: per-work ratio {ratio:.2} outside (1.0, 1.3]",
                old.name
            );
        }
    }

    #[test]
    fn older_dram_has_higher_embodied_per_gib() {
        // DRAM density improves each generation, so embodied carbon per
        // GiB falls over time — old modules cost more per GiB.
        assert!(micron_512().embodied_per_gib_g() > samsung_192().embodied_per_gib_g());
        assert!(micron_192().embodied_per_gib_g() > samsung_192().embodied_per_gib_g());
    }

    #[test]
    fn pair_year_gaps_match_table1() {
        assert_eq!(pair_a().new.cpu.year - pair_a().old.cpu.year, 4);
        assert_eq!(pair_b().new.cpu.year - pair_b().old.cpu.year, 3);
        assert_eq!(pair_c().new.cpu.year - pair_c().old.cpu.year, 1);
    }

    #[test]
    fn pair_lookup_matches_constructors() {
        assert_eq!(pair(PairId::A), pair_a());
        assert_eq!(pair(PairId::B), pair_b());
        assert_eq!(pair(PairId::C), pair_c());
        assert_eq!(all_pairs().len(), 3);
    }

    #[test]
    fn fleet_of_matches_pair_layouts() {
        // A pair-derived fleet and the SKU-built fleet of the same parts
        // must be indistinguishable: this is what makes the two-node
        // compatibility path exact.
        assert_eq!(fleet_of(&[Sku::I3Metal, Sku::M5znMetal]), fleet_a());
        assert_eq!(fleet_of(&[Sku::C5Metal, Sku::M5znMetal]), fleet_b());
        assert_eq!(fleet_of(&[Sku::M5Metal, Sku::M5znMetal]), fleet_c());
    }

    #[test]
    fn fleet_of_tags_eras_relative_to_the_fleet() {
        let f = fleet_three_generations();
        assert_eq!(f.len(), 3);
        assert_eq!(f.node(NodeId(0)).generation, Generation::Old);
        assert_eq!(f.node(NodeId(1)).generation, Generation::Old);
        assert_eq!(f.node(NodeId(2)).generation, Generation::New);
        // A homogeneous fleet is all-New.
        let twin = fleet_of(&[Sku::M5Metal, Sku::M5Metal]);
        assert!(twin.iter().all(|n| n.generation == Generation::New));
    }

    #[test]
    fn sku_display_and_catalog() {
        assert_eq!(Sku::ALL.len(), 4);
        assert_eq!(catalog(), Sku::ALL.to_vec());
        assert_eq!(Sku::I3Metal.to_string(), "i3.metal");
        assert_eq!(Sku::M5znMetal.cpu().name, "Intel Xeon Platinum 8252C");
        assert_eq!(Sku::C5Metal.dram().name, "Micron-192");
        assert_eq!(Sku::I3Metal.year(), 2016);
    }

    #[test]
    fn node_embodied_sums_cpu_and_dram() {
        for sku in Sku::ALL {
            assert_eq!(
                sku.node_embodied_g(),
                sku.cpu().embodied_g + sku.dram().embodied_g
            );
            assert!(sku.node_embodied_g() > 0.0);
        }
        // The newest SKU's heavy CPU attribution outweighs even the i3's
        // huge 512-GiB DRAM kit: provisioning new silicon is the most
        // embodied-expensive choice — the planner's procurement trade-off.
        assert!(Sku::M5znMetal.node_embodied_g() > Sku::I3Metal.node_embodied_g());
    }

    #[test]
    fn fleet_of_counts_expands_in_catalog_order() {
        let fleet = fleet_of_counts(&[(Sku::I3Metal, 1), (Sku::M5Metal, 0), (Sku::M5znMetal, 2)]);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.node(NodeId(0)).cpu.name, xeon_e5_2686().name);
        assert_eq!(fleet.node(NodeId(1)).cpu.name, xeon_platinum_8252c().name);
        assert_eq!(fleet.node(NodeId(2)).cpu.name, xeon_platinum_8252c().name);
        assert_eq!(
            fleet,
            fleet_of(&[Sku::I3Metal, Sku::M5znMetal, Sku::M5znMetal])
        );
    }

    #[test]
    #[should_panic(expected = "every SKU count is zero")]
    fn fleet_of_counts_rejects_the_empty_fleet() {
        fleet_of_counts(&[(Sku::I3Metal, 0), (Sku::M5znMetal, 0)]);
    }

    #[test]
    fn fleet_five_regions_is_one_pair_per_region() {
        let fleet = fleet_five_regions();
        assert_eq!(fleet.len(), 10);
        assert_eq!(fleet.regions(), Region::ALL.to_vec());
        for (r, &region) in Region::ALL.iter().enumerate() {
            let nodes = fleet.nodes_in_region(region);
            assert_eq!(nodes, vec![NodeId(2 * r as u32), NodeId(2 * r as u32 + 1)]);
            // Each region hosts the pair-A parts.
            assert_eq!(fleet.node(nodes[0]).cpu, xeon_e5_2686());
            assert_eq!(fleet.node(nodes[1]).cpu, xeon_platinum_8252c());
        }
    }

    #[test]
    fn fleet_of_in_regions_tags_positionally() {
        let f = fleet_of_in_regions(&[
            (Sku::I3Metal, Region::Texas),
            (Sku::M5znMetal, Region::NewYork),
        ]);
        assert_eq!(f.node(NodeId(0)).region, Region::Texas);
        assert_eq!(f.node(NodeId(1)).region, Region::NewYork);
        // Apart from regions, it is the pair-A layout.
        assert_eq!(
            f.with_uniform_region(Region::Caiso),
            fleet_of(&[Sku::I3Metal, Sku::M5znMetal])
        );
    }

    #[test]
    fn pair_a_matches_aws_instance_specs() {
        let p = pair_a();
        // i3.metal: 36-core E5-2686, 512 GiB.
        assert_eq!(p.old.cpu.cores, 36);
        assert_eq!(p.old.dram.capacity_mib, 512 * 1024);
        // m5zn.metal: 24-core 8252C, 192 GiB.
        assert_eq!(p.new.cpu.cores, 24);
        assert_eq!(p.new.dram.capacity_mib, 192 * 1024);
    }

    #[test]
    fn keepalive_is_cheaper_per_minute_on_old_for_pair_a() {
        // One warm 512-MiB container for one minute: reserved core power +
        // idle DRAM power + per-core & per-GiB embodied shares. Computed
        // here with raw model pieces; the carbon crate owns the full model.
        let p = pair_a();
        let minute = 60_000u64;
        let per_min = |n: &crate::HardwareNode| {
            let op_kwh = n.cpu.idle_core_energy_kwh(minute) + n.dram.idle_energy_kwh(512, minute);
            let emb = n.cpu.embodied_for_one_core_g(minute, n.lifetime_ms)
                + n.dram.embodied_for_share_g(512, minute, n.lifetime_ms);
            // Assume a mid-range carbon intensity of 300 g/kWh.
            op_kwh * 300.0 + emb
        };
        assert!(per_min(&p.old) < per_min(&p.new));
    }
}

/root/repo/target/debug/deps/ecolife-ae398305e4d82508.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecolife-ae398305e4d82508.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_pso-00e4f77aae4a5278.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/libecolife_pso-00e4f77aae4a5278.rlib: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/libecolife_pso-00e4f77aae4a5278.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

//! Online inter-arrival statistics.
//!
//! EcoLife's keep-alive decisions hinge on two expectations over a
//! function's future arrival behaviour, estimated purely from its history
//! (no future peeking):
//!
//! * `P(warm | k)` — the probability the next invocation arrives within a
//!   keep-alive window `k`;
//! * `E[min(gap, k)]` — the expected duration a container kept alive for
//!   `k` actually stays resident (it is torn down early on reuse).
//!
//! Both come from a bounded ring of recent inter-arrival gaps, which also
//! tracks the paper's ΔF signal (change in invocation counts between
//! observation windows).

/// Bounded history of inter-arrival gaps for one function.
#[derive(Debug, Clone)]
pub struct InterArrivalStats {
    gaps_ms: Vec<u64>,
    /// Write cursor for the ring.
    cursor: usize,
    /// Number of valid entries (≤ capacity).
    filled: usize,
    last_arrival_ms: Option<u64>,
    total_arrivals: u64,
}

impl InterArrivalStats {
    /// `capacity` bounds how much history is retained; the Azure trace's
    /// busiest functions invoke many times per minute, so a small window
    /// adapts quickly while smoothing noise.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        InterArrivalStats {
            gaps_ms: vec![0; capacity],
            cursor: 0,
            filled: 0,
            last_arrival_ms: None,
            total_arrivals: 0,
        }
    }

    /// Default capacity tuned for the evaluation traces.
    pub fn with_default_capacity() -> Self {
        Self::new(32)
    }

    /// Record an arrival at `t_ms` (must be monotonically non-decreasing).
    pub fn record_arrival(&mut self, t_ms: u64) {
        if let Some(last) = self.last_arrival_ms {
            debug_assert!(t_ms >= last, "arrivals must be chronological");
            let gap = t_ms.saturating_sub(last);
            self.gaps_ms[self.cursor] = gap;
            self.cursor = (self.cursor + 1) % self.gaps_ms.len();
            self.filled = (self.filled + 1).min(self.gaps_ms.len());
        }
        self.last_arrival_ms = Some(t_ms);
        self.total_arrivals += 1;
    }

    /// Number of gaps currently in the window.
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.filled
    }

    /// Total arrivals ever recorded.
    #[inline]
    pub fn total_arrivals(&self) -> u64 {
        self.total_arrivals
    }

    /// Last arrival time, if any.
    #[inline]
    pub fn last_arrival_ms(&self) -> Option<u64> {
        self.last_arrival_ms
    }

    fn gaps(&self) -> &[u64] {
        &self.gaps_ms[..self.filled]
    }

    /// Empirical `P(gap ≤ k_ms)`. With no history yet, returns a neutral
    /// 0.5 — the scheduler has no evidence either way.
    pub fn p_within(&self, k_ms: u64) -> f64 {
        if self.filled == 0 {
            return 0.5;
        }
        let hits = self.gaps().iter().filter(|&&g| g <= k_ms).count();
        hits as f64 / self.filled as f64
    }

    /// Empirical `E[min(gap, k_ms)]` — the expected resident time of a
    /// container granted keep-alive `k_ms`. With no history, returns
    /// `k_ms / 2` (uniform prior over the window).
    pub fn expected_resident_ms(&self, k_ms: u64) -> f64 {
        if self.filled == 0 {
            return k_ms as f64 / 2.0;
        }
        let sum: f64 = self.gaps().iter().map(|&g| g.min(k_ms) as f64).sum();
        sum / self.filled as f64
    }

    /// Mean observed gap (ms); `None` until at least one gap exists.
    pub fn mean_gap_ms(&self) -> Option<f64> {
        if self.filled == 0 {
            None
        } else {
            Some(self.gaps().iter().sum::<u64>() as f64 / self.filled as f64)
        }
    }
}

/// Sliding-window invocation counter producing the paper's ΔF signal:
/// the absolute change in a function's invocation count between
/// consecutive observation windows, plus the running maximum used for
/// normalization (`ΔF / ΔF_max`).
#[derive(Debug, Clone)]
pub struct DeltaTracker {
    window_ms: u64,
    current_window: u64,
    current_count: u64,
    previous_count: u64,
    last_delta: f64,
    max_delta: f64,
}

impl DeltaTracker {
    pub fn new(window_ms: u64) -> Self {
        assert!(window_ms > 0);
        DeltaTracker {
            window_ms,
            current_window: 0,
            current_count: 0,
            previous_count: 0,
            last_delta: 0.0,
            max_delta: 0.0,
        }
    }

    /// Record an event at `t_ms`; windows roll over automatically
    /// (empty intermediate windows are accounted for).
    pub fn record(&mut self, t_ms: u64) {
        let w = t_ms / self.window_ms;
        if w != self.current_window {
            // Close the current window.
            self.roll(self.current_count);
            // Any fully empty windows in between contribute a delta too.
            if w > self.current_window + 1 {
                self.roll(0);
            }
            self.current_window = w;
            self.current_count = 0;
        }
        self.current_count += 1;
    }

    fn roll(&mut self, closing_count: u64) {
        self.last_delta = (closing_count as f64 - self.previous_count as f64).abs();
        self.max_delta = self.max_delta.max(self.last_delta);
        self.previous_count = closing_count;
    }

    /// Normalized |ΔF| in `[0, 1]` (0 until any window has closed).
    pub fn normalized_delta(&self) -> f64 {
        if self.max_delta == 0.0 {
            0.0
        } else {
            self.last_delta / self.max_delta
        }
    }

    /// Raw |ΔF| of the last closed window transition.
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Running max |ΔF|.
    pub fn max_delta(&self) -> f64 {
        self.max_delta
    }
}

/// Same normalization machinery for a continuous signal (ΔCI): track the
/// absolute change between consecutive observations and its running max.
#[derive(Debug, Clone, Default)]
pub struct SignalDelta {
    last_value: Option<f64>,
    last_delta: f64,
    max_delta: f64,
}

impl SignalDelta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a new value; returns the normalized delta in `[0, 1]`.
    pub fn observe(&mut self, value: f64) -> f64 {
        if let Some(prev) = self.last_value {
            self.last_delta = (value - prev).abs();
            self.max_delta = self.max_delta.max(self.last_delta);
        }
        self.last_value = Some(value);
        self.normalized_delta()
    }

    /// Normalized |Δ| in `[0, 1]`.
    pub fn normalized_delta(&self) -> f64 {
        if self.max_delta == 0.0 {
            0.0
        } else {
            self.last_delta / self.max_delta
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_within_counts_hits() {
        let mut s = InterArrivalStats::new(8);
        for t in [0u64, 100, 300, 600, 1_000] {
            s.record_arrival(t);
        }
        // Gaps: 100, 200, 300, 400.
        assert_eq!(s.sample_count(), 4);
        assert_eq!(s.p_within(250), 0.5);
        assert_eq!(s.p_within(400), 1.0);
        assert_eq!(s.p_within(50), 0.0);
    }

    #[test]
    fn neutral_prior_with_no_history() {
        let s = InterArrivalStats::new(4);
        assert_eq!(s.p_within(1_000), 0.5);
        assert_eq!(s.expected_resident_ms(1_000), 500.0);
        assert_eq!(s.mean_gap_ms(), None);
    }

    #[test]
    fn expected_resident_clamps_at_k() {
        let mut s = InterArrivalStats::new(8);
        for t in [0u64, 100, 300, 600, 1_000] {
            s.record_arrival(t);
        }
        // min(gap, 250): 100, 200, 250, 250 → mean 200.
        assert_eq!(s.expected_resident_ms(250), 200.0);
        // k larger than all gaps → plain mean gap.
        assert_eq!(s.expected_resident_ms(10_000), s.mean_gap_ms().unwrap());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut s = InterArrivalStats::new(2);
        s.record_arrival(0);
        s.record_arrival(10); // gap 10
        s.record_arrival(110); // gap 100
        s.record_arrival(1_110); // gap 1000, evicts gap 10
        assert_eq!(s.sample_count(), 2);
        assert_eq!(s.p_within(100), 0.5);
        assert_eq!(s.total_arrivals(), 4);
    }

    #[test]
    fn delta_tracker_detects_rate_change() {
        let mut d = DeltaTracker::new(1_000);
        // Window 0: 3 events; window 1: 1 event.
        for t in [0u64, 100, 200] {
            d.record(t);
        }
        d.record(1_500);
        // Window 0 closed with count 3; previous 0 → delta 3.
        assert_eq!(d.last_delta(), 3.0);
        assert_eq!(d.normalized_delta(), 1.0);
        d.record(2_100);
        // Window 1 closed with count 1 → delta |1-3| = 2, normalized 2/3.
        assert_eq!(d.last_delta(), 2.0);
        assert!((d.normalized_delta() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delta_tracker_handles_empty_windows() {
        let mut d = DeltaTracker::new(1_000);
        d.record(0);
        d.record(5_000); // windows 1..4 empty
        assert_eq!(d.last_delta(), 1.0); // |0 - 1| from the empty gap roll
        assert_eq!(d.max_delta(), 1.0);
    }

    #[test]
    fn signal_delta_normalizes_against_running_max() {
        let mut s = SignalDelta::new();
        assert_eq!(s.observe(100.0), 0.0); // first observation: no delta
        assert_eq!(s.observe(150.0), 1.0); // delta 50, max 50
        assert_eq!(s.observe(140.0), 0.2); // delta 10 / max 50
        assert_eq!(s.observe(240.0), 1.0); // delta 100 becomes new max
    }

    #[test]
    fn chronological_requirement_is_saturating_not_panicking_in_release() {
        let mut s = InterArrivalStats::new(4);
        s.record_arrival(100);
        s.record_arrival(100); // zero gap is fine
        assert_eq!(s.sample_count(), 1);
        assert_eq!(s.p_within(0), 1.0);
    }
}

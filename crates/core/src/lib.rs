//! # ecolife-core — the EcoLife scheduler and its baselines
//!
//! The paper's primary contribution (Sec. IV): a carbon-aware serverless
//! scheduler that co-optimizes service time and carbon footprint on
//! heterogeneous hardware by choosing, per function, a **keep-alive
//! location** and **keep-alive period** with a per-function Dynamic PSO.
//! Every component operates over an N-node
//! [`Fleet`](ecolife_hw::Fleet) — the paper's old/new pair is the
//! two-node special case, reachable through the same constructors via
//! `From<HardwarePair>`.
//!
//! Components:
//!
//! * [`objective`] — the Sec. IV-A objective function and its
//!   normalization constants, shared by EcoLife's fitness, the EPDM
//!   score, the warm-pool priority ranking, and the Oracle brute force —
//!   plus [`ObjectiveTables`], the cache layer the decision hot path
//!   reads them through (bit-identical, per-minute CI epochs);
//! * [`predictor`] — the online inter-arrival model giving `P(warm | k)`
//!   and `E[min(gap, k)]` without future knowledge;
//! * [`warmpool`] — the priority-eviction warm-pool adjustment
//!   (Sec. IV-C, Fig. 6) with cheapest-first transfer-target ranking;
//! * [`ecolife`] — the full scheduler: KDM (one Dynamic PSO per
//!   function over the fleet-wide placement space), EPDM,
//!   perception–response wiring, Algorithm 1;
//! * [`baselines`] — every comparison scheme of Sec. V: `Oracle`,
//!   `CO2-Opt`, `Service-Time-Opt`, `Energy-Opt` (per-invocation brute
//!   force with future knowledge, enumerating the whole fleet),
//!   `New-Only` / `Old-Only` (fixed 10-min OpenWhisk policy, plus
//!   `FixedPolicy::pinned` for arbitrary nodes), and the `Eco-Old` /
//!   `Eco-New` single-node variants;
//! * [`runner`] — experiment harness: run a scheme, summarize, compare
//!   against the *-Opt anchors, and fan sweeps out over threads.

pub mod baselines;
pub mod config;
pub mod ecolife;
pub mod objective;
pub mod partition;
pub mod predictor;
pub mod report;
pub mod runner;
pub mod warmpool;

pub use baselines::fixed::FixedPolicy;
pub use baselines::oracle::{BruteForce, OptTarget};
pub use config::EcoLifeConfig;
pub use ecolife::EcoLife;
pub use ecolife_carbon::TransferCost;
pub use objective::{CostModel, ObjectiveTables};
pub use partition::{Partition, PartitionedScheduler};
pub use predictor::FunctionPredictor;
pub use runner::{
    compare, run_scheme, run_scheme_regional, run_scheme_regional_traced, run_scheme_traced,
    Comparison, RunSummary,
};

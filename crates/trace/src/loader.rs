//! Chunked, preallocated trace construction.
//!
//! [`Trace::new`] is fine at test scale, but a 10⁷-invocation build
//! pays twice there: the destination `Vec` regrows (copying hundreds of
//! megabytes) when the producer cannot size it up front, and every
//! invocation is re-validated against the catalog in a second full
//! pass. [`TraceLoader`] is the streaming producer-side fix: reserve
//! from a capacity estimate (exact for Azure expansions, a calibrated
//! rate for the synthetic generator), [`push`](TraceLoader::push)
//! without any per-invocation work beyond a running-maximum update, and
//! validate once against that maximum in [`finish`](TraceLoader::finish).
//! The result is **byte-identical** to the `Trace::new` path — both end
//! in the same stable time sort.

use crate::invocation::{Invocation, Trace};
use crate::workload::WorkloadCatalog;

/// Accumulates invocations ahead of [`Trace`] construction.
#[derive(Debug, Clone, Default)]
pub struct TraceLoader {
    invocations: Vec<Invocation>,
    /// Running maximum function id — `finish` validates the whole batch
    /// against the catalog with this single value.
    max_func: u32,
}

impl TraceLoader {
    pub fn new() -> Self {
        Self::default()
    }

    /// A loader with room for `estimate` invocations. The estimate does
    /// not bound anything — pushes past it regrow normally — it only
    /// sizes the single up-front allocation.
    pub fn with_capacity(estimate: usize) -> Self {
        TraceLoader {
            invocations: Vec::with_capacity(estimate),
            max_func: 0,
        }
    }

    /// Reserve room for `additional` more invocations (chunk boundary
    /// hint for producers that learn sizes incrementally).
    pub fn reserve(&mut self, additional: usize) {
        self.invocations.reserve(additional);
    }

    #[inline]
    pub fn push(&mut self, inv: Invocation) {
        self.max_func = self.max_func.max(inv.func.0);
        self.invocations.push(inv);
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Allocated capacity (for asserting a producer's estimate held).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.invocations.capacity()
    }

    /// Validate against `catalog` and build the [`Trace`] (one stable
    /// time sort, identical to [`Trace::new`]).
    ///
    /// # Panics
    /// Panics when any pushed invocation references a function outside
    /// the catalog — same contract as [`Trace::new`], checked in O(1)
    /// via the running maximum.
    pub fn finish(self, catalog: WorkloadCatalog) -> Trace {
        assert!(
            self.invocations.is_empty() || (self.max_func as usize) < catalog.len(),
            "invocation references function {} outside catalog (len {})",
            self.max_func,
            catalog.len()
        );
        Trace::from_prevalidated(catalog, self.invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FunctionId, FunctionProfile};

    fn catalog2() -> WorkloadCatalog {
        WorkloadCatalog::new(vec![
            FunctionProfile::new("a", 100, 100, 128, 0.5),
            FunctionProfile::new("b", 200, 100, 128, 0.5),
        ])
    }

    fn inv(f: u32, t: u64) -> Invocation {
        Invocation {
            func: FunctionId(f),
            t_ms: t,
        }
    }

    #[test]
    fn loader_matches_trace_new_exactly() {
        // Includes equal timestamps: the stable sort must keep their
        // input order, byte for byte.
        let raw = vec![inv(0, 50), inv(1, 10), inv(0, 10), inv(1, 50), inv(0, 0)];
        let via_new = Trace::new(catalog2(), raw.clone());
        let mut loader = TraceLoader::with_capacity(raw.len());
        for i in raw {
            loader.push(i);
        }
        let via_loader = loader.finish(catalog2());
        assert_eq!(via_new, via_loader);
    }

    #[test]
    fn estimate_only_sizes_the_allocation() {
        let mut loader = TraceLoader::with_capacity(2);
        for t in 0..100 {
            loader.push(inv(0, t));
        }
        assert_eq!(loader.len(), 100);
        assert!(loader.capacity() >= 100);
        assert_eq!(loader.finish(catalog2()).len(), 100);
    }

    #[test]
    fn empty_loader_builds_empty_trace() {
        let t = TraceLoader::new().finish(catalog2());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn finish_rejects_unknown_function() {
        let mut loader = TraceLoader::new();
        loader.push(inv(7, 0));
        loader.finish(catalog2());
    }
}

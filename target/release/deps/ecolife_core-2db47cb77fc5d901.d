/root/repo/target/release/deps/ecolife_core-2db47cb77fc5d901.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs

/root/repo/target/release/deps/libecolife_core-2db47cb77fc5d901.rlib: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs

/root/repo/target/release/deps/libecolife_core-2db47cb77fc5d901.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/fixed.rs:
crates/core/src/baselines/oracle.rs:
crates/core/src/config.rs:
crates/core/src/ecolife.rs:
crates/core/src/objective.rs:
crates/core/src/predictor.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/warmpool.rs:

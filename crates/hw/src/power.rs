//! Power-draw decomposition for the three serverless phases the paper's
//! carbon model distinguishes: execution, cold start, and keep-alive.
//!
//! This is the simulator's stand-in for the Likwid/RAPL measurements the
//! paper takes on bare metal (Sec. V): a calibrated constant-power model
//! per (hardware, phase) that feeds the operational-carbon formula
//! `E × CI` exactly like a RAPL counter would.

use crate::cpu::watts_ms_to_kwh;
use crate::HardwareNode;

/// Instantaneous power attributable to one function on one node (W),
/// split by component so the carbon model can apply the DRAM usage share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDraw {
    /// CPU power attributed to the function (whole package when executing,
    /// one reserved core when warm).
    pub cpu_w: f64,
    /// DRAM power attributed to the function's memory share.
    pub dram_w: f64,
}

impl PowerDraw {
    /// Total attributed power.
    #[inline]
    pub fn total_w(&self) -> f64 {
        self.cpu_w + self.dram_w
    }

    /// Energy over `duration_ms` in kWh.
    #[inline]
    pub fn energy_kwh(&self, duration_ms: u64) -> f64 {
        watts_ms_to_kwh(self.total_w(), duration_ms)
    }

    /// Power while a function executes on `node` (the full CPU is assigned
    /// to the serverless execution per Sec. II, plus the function's DRAM
    /// share at active power).
    pub fn executing(node: &HardwareNode, func_mem_mib: u64) -> PowerDraw {
        PowerDraw {
            cpu_w: node.cpu.active_power_w,
            dram_w: node.dram.active_w_per_gib * (func_mem_mib as f64 / 1024.0),
        }
    }

    /// Power during a cold start on `node`: the package is busy pulling
    /// and initializing the image, and the container memory is being
    /// populated, so both components run at active power.
    pub fn cold_starting(node: &HardwareNode, func_mem_mib: u64) -> PowerDraw {
        Self::executing(node, func_mem_mib)
    }

    /// Power while a function is kept warm on `node`: one reserved core
    /// plus the container's resident memory at idle power.
    pub fn keepalive(node: &HardwareNode, func_mem_mib: u64) -> PowerDraw {
        PowerDraw {
            cpu_w: node.cpu.idle_core_power_w,
            dram_w: node.dram.idle_w_per_gib * (func_mem_mib as f64 / 1024.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skus;

    #[test]
    fn executing_power_uses_full_package() {
        let p = skus::pair_a();
        let d = PowerDraw::executing(&p.new, 1024);
        assert_eq!(d.cpu_w, p.new.cpu.active_power_w);
        assert!((d.dram_w - p.new.dram.active_w_per_gib).abs() < 1e-12);
    }

    #[test]
    fn keepalive_power_uses_one_core() {
        let p = skus::pair_a();
        let d = PowerDraw::keepalive(&p.new, 2048);
        assert_eq!(d.cpu_w, p.new.cpu.idle_core_power_w);
        assert!((d.dram_w - 2.0 * p.new.dram.idle_w_per_gib).abs() < 1e-12);
    }

    #[test]
    fn keepalive_power_is_far_below_executing_power() {
        let p = skus::pair_a();
        for node in [&p.old, &p.new] {
            let exec = PowerDraw::executing(node, 512).total_w();
            let warm = PowerDraw::keepalive(node, 512).total_w();
            assert!(
                warm < exec / 20.0,
                "{}: {} vs {}",
                node.cpu.name,
                warm,
                exec
            );
        }
    }

    #[test]
    fn cold_start_power_equals_executing_power() {
        let p = skus::pair_a();
        assert_eq!(
            PowerDraw::cold_starting(&p.old, 512),
            PowerDraw::executing(&p.old, 512)
        );
    }

    #[test]
    fn energy_scales_linearly() {
        let p = skus::pair_a();
        let d = PowerDraw::executing(&p.new, 512);
        let e1 = d.energy_kwh(1_000);
        let e5 = d.energy_kwh(5_000);
        assert!((e5 - 5.0 * e1).abs() < 1e-15);
    }

    #[test]
    fn total_is_sum() {
        let d = PowerDraw {
            cpu_w: 10.0,
            dram_w: 2.5,
        };
        assert_eq!(d.total_w(), 12.5);
    }
}

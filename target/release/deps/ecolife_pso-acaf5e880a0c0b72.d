/root/repo/target/release/deps/ecolife_pso-acaf5e880a0c0b72.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/ecolife_pso-acaf5e880a0c0b72: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

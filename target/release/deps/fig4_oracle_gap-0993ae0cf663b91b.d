/root/repo/target/release/deps/fig4_oracle_gap-0993ae0cf663b91b.d: crates/bench/benches/fig4_oracle_gap.rs

/root/repo/target/release/deps/fig4_oracle_gap-0993ae0cf663b91b: crates/bench/benches/fig4_oracle_gap.rs

crates/bench/benches/fig4_oracle_gap.rs:

/root/repo/target/release/deps/fig13_hw_pairs-44aad327e04fb3ff.d: crates/bench/benches/fig13_hw_pairs.rs

/root/repo/target/release/deps/fig13_hw_pairs-44aad327e04fb3ff: crates/bench/benches/fig13_hw_pairs.rs

crates/bench/benches/fig13_hw_pairs.rs:

/root/repo/target/debug/deps/ecolife_bench-ec9079b4e7a212a3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ecolife_bench-ec9079b4e7a212a3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

//! # ecolife-trace — serverless workloads and invocation traces
//!
//! Three substrates:
//!
//! * [`workload`] — a catalog of SeBS-style serverless functions
//!   (video-processing, graph-bfs, dna-visualization, …) with the
//!   per-function profile the simulator needs: base execution time on the
//!   reference hardware generation, cold-start overhead, memory footprint,
//!   and CPU sensitivity (how much of the runtime scales with single-thread
//!   speed across generations).
//! * [`azure`] — a parser for the Microsoft Azure Functions 2019 trace
//!   CSV schema ("Serverless in the Wild" [26]) plus the trace → catalog
//!   mapping the paper describes ("EcoLife maps all serverless functions to
//!   the closest match, considering the memory and execution time").
//! * [`synth`] — a seeded synthetic Azure-like trace generator matching the
//!   published marginals (heavy-tailed per-function popularity; a mix of
//!   Poisson, periodic, and bursty arrival classes), used when the real
//!   trace files are not available.
//!
//! [`stats`] adds the inter-arrival bookkeeping EcoLife's online predictor
//! is built on.

pub mod azure;
pub mod invocation;
pub mod stats;
pub mod synth;
pub mod workload;

pub use invocation::{Invocation, Trace};
pub use stats::InterArrivalStats;
pub use synth::{ArrivalClass, SynthTraceConfig};
pub use workload::{FunctionId, FunctionProfile, WorkloadCatalog};

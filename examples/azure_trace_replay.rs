//! Replay a Microsoft-Azure-format invocation trace.
//!
//! The parser accepts the public "Serverless in the Wild" CSV schema
//! (HashOwner, HashApp, HashFunction, Trigger, per-minute counts), plus
//! optional `duration_ms`/`memory_mib` columns; every trace function is
//! mapped onto the closest SeBS profile by (memory, duration) exactly as
//! the paper describes.
//!
//! Run with: `cargo run --release --example azure_trace_replay [file.csv]`

use ecolife::prelude::*;
use ecolife::trace::azure;

/// A small embedded sample in the Azure schema (used when no file is
/// given): three functions with different triggers and rhythms.
const SAMPLE: &str = "\
HashOwner,HashApp,HashFunction,Trigger,duration_ms,memory_mib,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15
o1,app1,video,http,2100,512,1,0,1,1,0,1,1,0,1,1,0,1,1,0,1
o1,app1,bfs,queue,5800,256,2,1,2,2,1,2,2,1,2,2,1,2,2,1,2
o2,app2,dna,timer,11500,4096,1,0,0,0,0,1,0,0,0,0,1,0,0,0,0
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no trace file given — replaying the embedded sample)\n");
            SAMPLE.to_string()
        }
    };

    let catalog = WorkloadCatalog::sebs();
    let rows = azure::parse_invocations_csv(&text).expect("valid Azure-format CSV");
    println!("parsed {} trace functions:", rows.len());
    for row in &rows {
        let mapped = catalog.closest_match(
            row.memory_mib.unwrap_or(170),
            row.duration_ms.unwrap_or(1_000),
        );
        println!(
            "  {:<8} trigger={:<6} {} invocations -> {}",
            row.function,
            row.trigger,
            row.total_invocations(),
            catalog.profile(mapped).name
        );
    }

    let trace = azure::rows_to_trace(&rows, &catalog, 7);
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 7);
    let fleet = skus::fleet_a();

    let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let (summary, metrics) = run_scheme(&trace, &ci, &fleet, &mut ecolife);

    println!(
        "\nreplay: {} invocations, mean service {:.0} ms, P95 {} ms",
        summary.invocations, summary.mean_service_ms, summary.p95_service_ms
    );
    println!(
        "carbon: {:.3} g total ({:.3} g operational, {:.3} g embodied, {:.3} g keep-alive)",
        summary.total_carbon_g,
        summary.operational_g,
        summary.embodied_g,
        summary.keepalive_carbon_g
    );
    println!(
        "warm starts: {}/{} ({:.0}%)",
        metrics.warm_starts(),
        metrics.invocations(),
        100.0 * summary.warm_rate
    );
}

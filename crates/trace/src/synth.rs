//! Synthetic Azure-like invocation trace generator.
//!
//! "Serverless in the Wild" [26] characterizes the Azure 2019 workload:
//! a heavy-tailed popularity distribution (a few functions dominate total
//! invocations), a mix of arrival behaviours (roughly: frequent quasi-
//! Poisson functions, timer-driven periodic functions, and rare bursty
//! functions), and inter-arrival CVs spanning orders of magnitude. The
//! generator reproduces those marginals with a seeded RNG so every
//! experiment is deterministic.

use crate::invocation::{Invocation, Trace};
use crate::loader::TraceLoader;
use crate::workload::{FunctionId, WorkloadCatalog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Arrival behaviour class of one trace function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalClass {
    /// Memoryless arrivals at `rate_per_min`.
    Poisson { rate_per_min: f64 },
    /// Timer-triggered: one invocation every `period_min`, with uniform
    /// jitter of ±`jitter_frac × period`.
    Periodic { period_min: f64, jitter_frac: f64 },
    /// On/off bursts: Poisson at `burst_rate_per_min` during bursts of
    /// exponential mean length `burst_len_min`, silent for exponential
    /// mean `gap_min` between bursts.
    Bursty {
        burst_rate_per_min: f64,
        burst_len_min: f64,
        gap_min: f64,
    },
}

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthTraceConfig {
    /// Number of distinct trace functions (each mapped onto a catalog
    /// profile; many-to-one).
    pub n_functions: usize,
    /// Trace duration in minutes.
    pub duration_min: u64,
    /// RNG seed.
    pub seed: u64,
    /// Class mix (fractions; must sum to ≈1): poisson, periodic, bursty.
    pub class_mix: [f64; 3],
    /// Time-zone phase shift (minutes): every arrival is rotated by this
    /// offset **modulo the trace duration** — the same diurnal rhythm,
    /// started later in the day. Five configs differing only in offset
    /// model five regions' local working hours against one wall clock
    /// (the follow-the-sun workload). `0` (the default) is the identity:
    /// the generated trace is byte-identical to the pre-offset
    /// generator's.
    pub phase_offset_min: u64,
}

impl Default for SynthTraceConfig {
    fn default() -> Self {
        SynthTraceConfig {
            n_functions: 40,
            duration_min: 240,
            seed: 0xEC0_11FE,
            // Azure: most load from frequently invoked apps; timers are a
            // large trigger class; true bursts are the minority.
            class_mix: [0.55, 0.30, 0.15],
            phase_offset_min: 0,
        }
    }
}

impl SynthTraceConfig {
    /// This config with its arrivals rotated `offset_min` minutes into
    /// the trace (modulo the duration) — see
    /// [`SynthTraceConfig::phase_offset_min`].
    pub fn with_phase_offset_min(mut self, offset_min: u64) -> Self {
        self.phase_offset_min = offset_min;
        self
    }

    /// Small config for fast unit tests.
    pub fn small(seed: u64) -> Self {
        SynthTraceConfig {
            n_functions: 8,
            duration_min: 60,
            seed,
            ..Default::default()
        }
    }

    /// Production-scale preset: enough functions and hours that
    /// [`SynthTraceConfig::generate_scaled`] emits **over a million
    /// invocations** — the workload class the sharded simulator exists
    /// for (the default 40-function config tops out in the thousands).
    pub fn million(seed: u64) -> Self {
        SynthTraceConfig {
            n_functions: 6_000,
            duration_min: 600,
            seed,
            ..Default::default()
        }
    }

    /// Order-of-magnitude-up preset: **over ten million invocations**
    /// under [`SynthTraceConfig::generate_scaled`] (24 000 functions ×
    /// 25 hours at the same marginals as [`SynthTraceConfig::million`]).
    /// Per-function seeding makes it reproducible — and stable under
    /// `n_functions` growth at this duration — so 10⁷-scale benchmarks
    /// need no Azure data.
    pub fn ten_million(seed: u64) -> Self {
        SynthTraceConfig {
            n_functions: 24_000,
            duration_min: 1_500,
            seed,
            ..Default::default()
        }
    }

    /// Expected invocation volume, for sizing the loader's one up-front
    /// allocation: the class mix and popularity law land around 0.3
    /// invocations per function-minute (the million preset's 3.6 M
    /// function-minutes produce ≈1.06 M invocations). Slightly generous
    /// so the common case never regrows; an underestimate only costs a
    /// regrowth, never correctness.
    fn estimated_invocations(&self) -> usize {
        let function_minutes = (self.n_functions as u64).saturating_mul(self.duration_min);
        (function_minutes.saturating_mul(8) / 25) as usize + 1_024
    }

    /// Generate the trace against `base_catalog`.
    ///
    /// Each synthetic function becomes a *distinct* catalog entry cloned
    /// from a uniformly chosen base profile (the paper invokes trace
    /// functions "randomly, but uniformly to ensure representativeness")
    /// with a small deterministic perturbation of execution time and
    /// memory, then draws a Pareto popularity weight and an arrival class
    /// from `class_mix`. Distinct entries matter: EcoLife keeps per-
    /// function optimizer state and warm-pool slots, so function identity
    /// drives memory pressure.
    pub fn generate(&self, base_catalog: &WorkloadCatalog) -> Trace {
        assert!(self.n_functions > 0, "need at least one function");
        assert!(!base_catalog.is_empty(), "catalog must not be empty");
        let mix_sum: f64 = self.class_mix.iter().sum();
        assert!(
            (mix_sum - 1.0).abs() < 1e-6,
            "class mix must sum to 1 (got {mix_sum})"
        );

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut loader = TraceLoader::with_capacity(self.estimated_invocations());
        let mut catalog = WorkloadCatalog::default();

        for fid in 0..self.n_functions {
            self.emit_function(&mut rng, fid, base_catalog, &mut catalog, &mut loader);
        }

        loader.finish(catalog)
    }

    /// The scale-up generation path: same marginals as
    /// [`SynthTraceConfig::generate`], but every function draws from its
    /// **own** RNG stream seeded from `(seed, fid)` instead of sharing
    /// one sequential stream. Two consequences matter at the
    /// million-invocation scale this path exists for:
    ///
    /// * a function's profile and arrival stream depend only on `(seed,
    ///   fid)` — growing `n_functions` appends functions without
    ///   perturbing existing streams (`generate` would reshuffle
    ///   everything);
    /// * generation is embarrassingly parallel per function if it ever
    ///   needs to be (the sharded simulator's own partitioning axis).
    ///
    /// Use [`SynthTraceConfig::million`] for a ≥10⁶-invocation preset.
    pub fn generate_scaled(&self, base_catalog: &WorkloadCatalog) -> Trace {
        assert!(self.n_functions > 0, "need at least one function");
        assert!(!base_catalog.is_empty(), "catalog must not be empty");
        let mix_sum: f64 = self.class_mix.iter().sum();
        assert!(
            (mix_sum - 1.0).abs() < 1e-6,
            "class mix must sum to 1 (got {mix_sum})"
        );

        let mut loader = TraceLoader::with_capacity(self.estimated_invocations());
        let mut catalog = WorkloadCatalog::default();
        for fid in 0..self.n_functions {
            // Per-function seed through the shared splitmix64 mixer:
            // nearby (seed, fid) pairs land in unrelated streams.
            let s = self
                .seed
                .wrapping_add((fid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = SmallRng::seed_from_u64(crate::splitmix64(s));
            self.emit_function(&mut rng, fid, base_catalog, &mut catalog, &mut loader);
        }
        loader.finish(catalog)
    }

    /// Emit one synthetic function: a perturbed catalog entry cloned from
    /// a base profile plus its arrival stream. Shared by the sequential
    /// ([`SynthTraceConfig::generate`]) and per-function-seeded
    /// ([`SynthTraceConfig::generate_scaled`]) paths — only the RNG
    /// stream discipline differs.
    fn emit_function(
        &self,
        rng: &mut SmallRng,
        fid: usize,
        base_catalog: &WorkloadCatalog,
        catalog: &mut WorkloadCatalog,
        out: &mut TraceLoader,
    ) {
        let horizon_ms = self.duration_min * 60_000;
        let (_, base) = base_catalog
            .iter()
            .nth(fid % base_catalog.len())
            .expect("non-empty catalog");
        // ±20% runtime and ±25% memory perturbation keeps profiles
        // realistic while making every function distinct.
        let exec_scale = rng.gen_range(0.8..1.2);
        let mem_scale = rng.gen_range(0.75..1.25);
        let func = catalog.push(crate::workload::FunctionProfile::new(
            &format!("synth-{fid}({})", base.name),
            ((base.base_exec_ms as f64 * exec_scale).round() as u64).max(1),
            (base.base_cold_ms as f64 * exec_scale).round() as u64,
            ((base.memory_mib as f64 * mem_scale).round() as u64).max(64),
            base.cpu_sensitivity,
        ));
        debug_assert_eq!(func, FunctionId(fid as u32));

        // Pareto(α=1.2) popularity weight, truncated: heavy tail with
        // a few dominant functions. The cap keeps the head of the
        // distribution at minutes-scale inter-arrivals — the regime
        // where the keep-alive decision is actually contested (the
        // paper replays Azure functions uniformly, which produces the
        // same sparse per-function arrival rhythm).
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let weight = (1.0 / u).powf(1.0 / 1.2).min(15.0);

        let class = self.sample_class(rng, weight);
        self.emit_arrivals(rng, func, class, horizon_ms, out);
    }

    fn sample_class(&self, rng: &mut SmallRng, weight: f64) -> ArrivalClass {
        let x: f64 = rng.gen();
        if x < self.class_mix[0] {
            // Base 0.1/min scaled by popularity: typical functions see
            // minutes-scale gaps, the busiest one or two invocations per
            // minute — matching the Azure head of the distribution.
            ArrivalClass::Poisson {
                rate_per_min: 0.1 * weight,
            }
        } else if x < self.class_mix[0] + self.class_mix[1] {
            // Azure timers cluster at minutes-scale periods.
            let period = *[1.0f64, 5.0, 10.0, 15.0, 30.0, 60.0]
                .get(rng.gen_range(0..6usize))
                .unwrap();
            ArrivalClass::Periodic {
                period_min: period,
                jitter_frac: 0.05,
            }
        } else {
            ArrivalClass::Bursty {
                burst_rate_per_min: 2.0 * weight.min(10.0),
                burst_len_min: 3.0,
                gap_min: 45.0,
            }
        }
    }

    fn emit_arrivals(
        &self,
        rng: &mut SmallRng,
        func: FunctionId,
        class: ArrivalClass,
        horizon_ms: u64,
        out: &mut TraceLoader,
    ) {
        // Time-zone rotation: the RNG draws are untouched (the stream is
        // identical for any offset); only the wall-clock placement moves,
        // wrapping past the horizon back to the start of the trace. With
        // a zero offset this is the identity.
        let offset_ms = self
            .phase_offset_min
            .checked_mul(60_000)
            .expect("phase offset overflows ms")
            % horizon_ms.max(1);
        let shift = |t: u64| -> u64 {
            if offset_ms == 0 {
                t
            } else {
                (t + offset_ms) % horizon_ms
            }
        };
        match class {
            ArrivalClass::Poisson { rate_per_min } => {
                if rate_per_min <= 0.0 {
                    return;
                }
                let mean_gap_ms = 60_000.0 / rate_per_min;
                let mut t = exp_sample(rng, mean_gap_ms);
                while (t as u64) < horizon_ms {
                    out.push(Invocation {
                        func,
                        t_ms: shift(t as u64),
                    });
                    t += exp_sample(rng, mean_gap_ms);
                }
            }
            ArrivalClass::Periodic {
                period_min,
                jitter_frac,
            } => {
                let period_ms = period_min * 60_000.0;
                let mut t = rng.gen_range(0.0..period_ms);
                while (t as u64) < horizon_ms {
                    let jitter = rng.gen_range(-jitter_frac..jitter_frac) * period_ms;
                    let at = (t + jitter).max(0.0) as u64;
                    if at < horizon_ms {
                        out.push(Invocation {
                            func,
                            t_ms: shift(at),
                        });
                    }
                    t += period_ms;
                }
            }
            ArrivalClass::Bursty {
                burst_rate_per_min,
                burst_len_min,
                gap_min,
            } => {
                let mut t = exp_sample(rng, gap_min * 60_000.0);
                while (t as u64) < horizon_ms {
                    let burst_end = t + exp_sample(rng, burst_len_min * 60_000.0);
                    let mean_gap_ms = 60_000.0 / burst_rate_per_min;
                    let mut bt = t;
                    while bt < burst_end && (bt as u64) < horizon_ms {
                        out.push(Invocation {
                            func,
                            t_ms: shift(bt as u64),
                        });
                        bt += exp_sample(rng, mean_gap_ms);
                    }
                    t = burst_end + exp_sample(rng, gap_min * 60_000.0);
                }
            }
        }
    }
}

/// Exponential sample with the given mean (inverse-CDF method).
fn exp_sample(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0f64);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> WorkloadCatalog {
        WorkloadCatalog::sebs()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthTraceConfig::small(11);
        let a = cfg.generate(&catalog());
        let b = cfg.generate(&catalog());
        assert_eq!(a, b);
        let c = SynthTraceConfig::small(12).generate(&catalog());
        assert_ne!(a, c);
    }

    #[test]
    fn trace_respects_horizon() {
        let cfg = SynthTraceConfig {
            duration_min: 30,
            ..SynthTraceConfig::small(5)
        };
        let t = cfg.generate(&catalog());
        assert!(t.horizon_ms() < 30 * 60_000);
        assert!(!t.is_empty());
    }

    #[test]
    fn default_config_produces_substantial_load() {
        let t = SynthTraceConfig::default().generate(&catalog());
        // 40 functions over 4 hours must produce hundreds of invocations.
        assert!(t.len() > 500, "only {} invocations", t.len());
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let t = SynthTraceConfig {
            n_functions: 60,
            duration_min: 480,
            ..Default::default()
        }
        .generate(&catalog());
        let mut counts: Vec<usize> = (0..t.catalog().len())
            .map(|i| t.count_for(FunctionId(i as u32)))
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_quarter: usize = counts[..counts.len() / 4].iter().sum();
        // The busiest quarter of functions carries the majority of load.
        assert!(
            top_quarter as f64 > 0.5 * total as f64,
            "top quarter {top_quarter} of {total}"
        );
    }

    #[test]
    fn periodic_functions_have_low_gap_variance() {
        let cfg = SynthTraceConfig {
            n_functions: 1,
            duration_min: 600,
            seed: 3,
            class_mix: [0.0, 1.0, 0.0],
            phase_offset_min: 0,
        };
        let t = cfg.generate(&catalog());
        let times: Vec<u64> = t.invocations().iter().map(|i| i.t_ms).collect();
        assert!(times.len() >= 9);
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let cv = (gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64)
            .sqrt()
            / mean;
        assert!(cv < 0.5, "periodic CV {cv:.2} too high");
    }

    #[test]
    fn scaled_generation_is_deterministic_and_distinct_from_sequential() {
        let cfg = SynthTraceConfig::small(19);
        let a = cfg.generate_scaled(&catalog());
        let b = cfg.generate_scaled(&catalog());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Different RNG discipline, different (deterministic) trace.
        assert_ne!(a, cfg.generate(&catalog()));
    }

    #[test]
    fn scaled_streams_are_stable_under_function_count_growth() {
        // Growing the workload appends functions; the first k functions'
        // profiles and arrival streams must not move.
        let small = SynthTraceConfig {
            n_functions: 6,
            ..SynthTraceConfig::small(23)
        }
        .generate_scaled(&catalog());
        let grown = SynthTraceConfig {
            n_functions: 11,
            ..SynthTraceConfig::small(23)
        }
        .generate_scaled(&catalog());
        for fid in 0..6u32 {
            let f = FunctionId(fid);
            assert_eq!(
                small.catalog().profile(f),
                grown.catalog().profile(f),
                "profile of {f} moved"
            );
            let arrivals = |t: &Trace| -> Vec<u64> {
                t.invocations()
                    .iter()
                    .filter(|i| i.func == f)
                    .map(|i| i.t_ms)
                    .collect()
            };
            assert_eq!(arrivals(&small), arrivals(&grown), "stream of {f} moved");
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "million-invocation generation; run under --release"
    )]
    fn million_preset_tops_a_million_invocations() {
        let t = SynthTraceConfig::million(7).generate_scaled(&catalog());
        assert!(
            t.len() >= 1_000_000,
            "million preset produced only {} invocations",
            t.len()
        );
        assert_eq!(t.catalog().len(), 6_000);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "ten-million-invocation generation; run under --release"
    )]
    fn ten_million_preset_tops_ten_million_invocations() {
        let cfg = SynthTraceConfig::ten_million(41);
        let t = cfg.generate_scaled(&catalog());
        assert!(
            t.len() >= 10_000_000,
            "ten-million preset produced only {} invocations",
            t.len()
        );
        assert_eq!(t.catalog().len(), 24_000);
        // Regenerating is bit-identical (per-function seeding).
        assert_eq!(t, cfg.generate_scaled(&catalog()));
    }

    #[test]
    fn loader_estimate_covers_small_configs_without_regrowth_bugs() {
        // The estimate is advisory; correctness must hold whether it
        // over- or under-shoots. A tiny config undershoots per-function
        // bursts; the trace must still come out identical to a fresh
        // generation.
        let cfg = SynthTraceConfig {
            n_functions: 3,
            duration_min: 200,
            ..SynthTraceConfig::small(29)
        };
        assert_eq!(cfg.generate(&catalog()), cfg.generate(&catalog()));
        assert_eq!(
            cfg.generate_scaled(&catalog()),
            cfg.generate_scaled(&catalog())
        );
    }

    #[test]
    fn phase_offset_rotates_arrivals_modulo_duration() {
        let base = SynthTraceConfig::small(31); // 60-minute duration
        let a = base.clone().generate(&catalog());
        let b = base.clone().with_phase_offset_min(20).generate(&catalog());
        assert_eq!(a.len(), b.len(), "rotation must not add or drop arrivals");
        let key = |func: u32, t: u64| (func, t);
        let mut rotated: Vec<(u32, u64)> = a
            .invocations()
            .iter()
            .map(|i| key(i.func.0, (i.t_ms + 20 * 60_000) % (60 * 60_000)))
            .collect();
        rotated.sort_unstable();
        let mut got: Vec<(u32, u64)> = b
            .invocations()
            .iter()
            .map(|i| key(i.func.0, i.t_ms))
            .collect();
        got.sort_unstable();
        assert_eq!(rotated, got);
        // Zero offset is the identity.
        assert_eq!(a, base.with_phase_offset_min(0).generate(&catalog()));
    }

    #[test]
    #[should_panic(expected = "class mix")]
    fn rejects_bad_mix() {
        let cfg = SynthTraceConfig {
            class_mix: [0.5, 0.5, 0.5],
            ..SynthTraceConfig::small(0)
        };
        cfg.generate(&catalog());
    }
}

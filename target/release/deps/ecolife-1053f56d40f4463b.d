/root/repo/target/release/deps/ecolife-1053f56d40f4463b.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libecolife-1053f56d40f4463b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Experiment harness: run schemes, summarize, and compare — the
//! machinery every figure reproduction is built from.

use ecolife_carbon::{CarbonIntensityTrace, CiBundle, CiError};
use ecolife_hw::Fleet;
use ecolife_sim::metrics::percent_increase;
use ecolife_sim::{EventSink, RunMetrics, Scheduler, SimConfig, Simulation};
use ecolife_trace::Trace;

/// Headline numbers of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub name: String,
    pub invocations: usize,
    pub total_service_ms: u64,
    pub mean_service_ms: f64,
    pub p95_service_ms: u64,
    pub total_carbon_g: f64,
    pub operational_g: f64,
    pub embodied_g: f64,
    pub keepalive_carbon_g: f64,
    pub total_energy_kwh: f64,
    pub warm_rate: f64,
    pub evicted_functions: u64,
    pub transfers: u64,
    pub decision_overhead_fraction: f64,
}

impl RunSummary {
    pub fn from_metrics(name: &str, m: &RunMetrics) -> Self {
        let split = m.carbon_split();
        RunSummary {
            name: name.to_string(),
            invocations: m.invocations(),
            total_service_ms: m.total_service_ms(),
            mean_service_ms: m.mean_service_ms(),
            p95_service_ms: m.service_percentile_ms(0.95),
            total_carbon_g: m.total_carbon_g(),
            operational_g: split.operational_g,
            embodied_g: split.embodied_g,
            keepalive_carbon_g: m.total_keepalive_carbon_g(),
            total_energy_kwh: m.total_energy_kwh(),
            warm_rate: m.warm_rate(),
            evicted_functions: m.evicted_functions,
            transfers: m.transfers,
            decision_overhead_fraction: m.decision_overhead_fraction(),
        }
    }
}

/// Run one scheduler over (trace, CI, fleet) with default engine config.
pub fn run_scheme<S: Scheduler>(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    scheduler: &mut S,
) -> (RunSummary, RunMetrics) {
    run_scheme_with(trace, ci, fleet, scheduler, SimConfig::default())
}

/// Run one scheduler over a multi-region fleet: each node reads the CI
/// series of its own region from `bundle`.
pub fn run_scheme_regional<S: Scheduler>(
    trace: &Trace,
    bundle: &CiBundle,
    fleet: &Fleet,
    scheduler: &mut S,
) -> Result<(RunSummary, RunMetrics), CiError> {
    let metrics = Simulation::try_new_regional(trace, bundle, fleet.clone())?.run(scheduler);
    Ok((
        RunSummary::from_metrics(scheduler.name(), &metrics),
        metrics,
    ))
}

/// Run with an explicit engine config (robustness studies use non-default
/// carbon models).
pub fn run_scheme_with<S: Scheduler>(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    scheduler: &mut S,
    config: SimConfig,
) -> (RunSummary, RunMetrics) {
    let metrics = Simulation::new(trace, ci, fleet.clone())
        .with_config(config)
        .run(scheduler);
    (
        RunSummary::from_metrics(scheduler.name(), &metrics),
        metrics,
    )
}

/// [`run_scheme`] with a telemetry sink: the engine additionally emits
/// its hash-chained golden-trace event stream into `sink` (see
/// `ecolife-telemetry`). With
/// [`NullSink`](ecolife_sim::NullSink) this is exactly [`run_scheme`].
pub fn run_scheme_traced<S: Scheduler, K: EventSink>(
    trace: &Trace,
    ci: &CarbonIntensityTrace,
    fleet: &Fleet,
    scheduler: &mut S,
    sink: &mut K,
) -> (RunSummary, RunMetrics) {
    let metrics = Simulation::new(trace, ci, fleet.clone()).run_with_sink(scheduler, sink);
    (
        RunSummary::from_metrics(scheduler.name(), &metrics),
        metrics,
    )
}

/// [`run_scheme_regional`] with a telemetry sink.
pub fn run_scheme_regional_traced<S: Scheduler, K: EventSink>(
    trace: &Trace,
    bundle: &CiBundle,
    fleet: &Fleet,
    scheduler: &mut S,
    sink: &mut K,
) -> Result<(RunSummary, RunMetrics), CiError> {
    let metrics =
        Simulation::try_new_regional(trace, bundle, fleet.clone())?.run_with_sink(scheduler, sink);
    Ok((
        RunSummary::from_metrics(scheduler.name(), &metrics),
        metrics,
    ))
}

/// A scheme's position relative to the two *-Opt anchors — the axes of
/// Figs. 4, 7, 9: "% increase w.r.t. Service-Time-Opt" and "% increase
/// w.r.t. CO2-Opt".
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub name: String,
    /// Service-time increase (%) w.r.t. the service anchor.
    pub service_increase_pct: f64,
    /// Carbon increase (%) w.r.t. the carbon anchor.
    pub carbon_increase_pct: f64,
}

/// Place `scheme` against the service-time and carbon anchors.
pub fn compare(
    scheme: &RunSummary,
    service_anchor: &RunSummary,
    carbon_anchor: &RunSummary,
) -> Comparison {
    Comparison {
        name: scheme.name.clone(),
        service_increase_pct: percent_increase(
            scheme.total_service_ms as f64,
            service_anchor.total_service_ms as f64,
        ),
        carbon_increase_pct: percent_increase(scheme.total_carbon_g, carbon_anchor.total_carbon_g),
    }
}

/// Fan independent jobs out over scoped worker threads and collect
/// results in input order. Simulations are deterministic; sweeps
/// (fleets, regions, memory budgets) are embarrassingly parallel.
///
/// The implementation lives in [`ecolife_sim::parallel`] (the sharded
/// replay engine shares it, one dependency level down); this re-export
/// keeps the historical `ecolife_core::runner::parallel_map` path.
/// [`parallel_map_threads`] is the explicit-thread-count override tests
/// use to force worker counts instead of inheriting
/// `available_parallelism`.
pub use ecolife_sim::parallel::{parallel_map, parallel_map_threads};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::fixed::FixedPolicy;
    use crate::baselines::oracle::BruteForce;
    use ecolife_hw::skus;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    fn setup() -> (Trace, CarbonIntensityTrace, Fleet) {
        let trace = SynthTraceConfig::small(9).generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(250.0, 120);
        (trace, ci, skus::fleet_a())
    }

    #[test]
    fn summary_captures_metrics() {
        let (trace, ci, fleet) = setup();
        let (summary, metrics) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
        assert_eq!(summary.name, "New-Only");
        assert_eq!(summary.invocations, metrics.invocations());
        assert_eq!(summary.total_service_ms, metrics.total_service_ms());
        assert!((summary.total_carbon_g - metrics.total_carbon_g()).abs() < 1e-9);
        assert!(summary.p95_service_ms >= summary.mean_service_ms as u64 / 2);
        assert!((summary.operational_g + summary.embodied_g - summary.total_carbon_g).abs() < 1e-9);
    }

    #[test]
    fn comparison_is_zero_against_self() {
        let (trace, ci, fleet) = setup();
        let (summary, _) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
        let c = compare(&summary, &summary, &summary);
        assert_eq!(c.service_increase_pct, 0.0);
        assert_eq!(c.carbon_increase_pct, 0.0);
    }

    #[test]
    fn anchors_give_nonnegative_increases() {
        let (trace, ci, fleet) = setup();
        let (st, _) = run_scheme(
            &trace,
            &ci,
            &fleet,
            &mut BruteForce::service_time_opt(fleet.clone(), ci.clone()),
        );
        let (co2, _) = run_scheme(
            &trace,
            &ci,
            &fleet,
            &mut BruteForce::co2_opt(fleet.clone(), ci.clone()),
        );
        let (oracle, _) = run_scheme(
            &trace,
            &ci,
            &fleet,
            &mut BruteForce::oracle(fleet.clone(), ci.clone()),
        );
        let c = compare(&oracle, &st, &co2);
        assert!(c.service_increase_pct >= -1e-9, "{c:?}");
        assert!(c.carbon_increase_pct >= -0.1, "{c:?}");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect(), |i: i32| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_oversized_batches() {
        assert_eq!(parallel_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        // Far more jobs than cores: with one-thread-per-job this would
        // spawn 2048 OS threads; chunking bounds it at the worker count.
        let n = 2048u64;
        let out = parallel_map((0..n).collect(), |i: u64| i + 1);
        assert_eq!(out.len(), n as usize);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn parallel_sweep_matches_sequential_runs() {
        let (trace, ci, fleet) = setup();
        // Wall-clock decision overhead is inherently non-deterministic;
        // blank it before comparing.
        let normalize = |mut s: RunSummary| {
            s.decision_overhead_fraction = 0.0;
            s
        };
        let seq: Vec<RunSummary> = (0..3)
            .map(|k| {
                let mut s = FixedPolicy::new(ecolife_hw::Generation::New, k * 5);
                normalize(run_scheme(&trace, &ci, &fleet, &mut s).0)
            })
            .collect();
        let par = parallel_map((0..3).collect(), |k: u64| {
            let mut s = FixedPolicy::new(ecolife_hw::Generation::New, k * 5);
            normalize(run_scheme(&trace, &ci, &fleet, &mut s).0)
        });
        assert_eq!(seq, par);
    }
}

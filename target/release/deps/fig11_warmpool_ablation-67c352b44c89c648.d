/root/repo/target/release/deps/fig11_warmpool_ablation-67c352b44c89c648.d: crates/bench/benches/fig11_warmpool_ablation.rs Cargo.toml

/root/repo/target/release/deps/libfig11_warmpool_ablation-67c352b44c89c648.rmeta: crates/bench/benches/fig11_warmpool_ablation.rs Cargo.toml

crates/bench/benches/fig11_warmpool_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

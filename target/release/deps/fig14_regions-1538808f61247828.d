/root/repo/target/release/deps/fig14_regions-1538808f61247828.d: crates/bench/benches/fig14_regions.rs Cargo.toml

/root/repo/target/release/deps/libfig14_regions-1538808f61247828.rmeta: crates/bench/benches/fig14_regions.rs Cargo.toml

crates/bench/benches/fig14_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Fig. 8 — cumulative distribution of per-invocation service time and
//! carbon footprint: EcoLife tracks the Oracle percentile by percentile.
//!
//! Also reports the paper's companion statistics: P95 latency within 15%
//! of the Oracle's service time, and decision-making overhead below 0.4%
//! of service time.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_core::run_scheme;
use std::hint::black_box;

fn print_fig8() {
    let setup = EvalSetup::standard();
    let (eco_sum, eco) = run_scheme(&setup.trace, &setup.ci, &setup.fleet, &mut setup.ecolife());
    let (_, oracle) = run_scheme(&setup.trace, &setup.ci, &setup.fleet, &mut setup.oracle());

    println!("\n=== Fig. 8: per-invocation CDFs, EcoLife vs Oracle ===");
    println!(
        "{:>11} {:>14} {:>14} {:>13} {:>13}",
        "percentile", "eco svc ms", "orc svc ms", "eco CO2 g", "orc CO2 g"
    );
    let es = eco.service_cdf();
    let os = oracle.service_cdf();
    let ec = eco.carbon_cdf();
    let oc = oracle.carbon_cdf();
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00] {
        let idx = |len: usize| ((q * len as f64).ceil() as usize).clamp(1, len) - 1;
        println!(
            "{:>10.0}% {:>14} {:>14} {:>13.5} {:>13.5}",
            q * 100.0,
            es[idx(es.len())],
            os[idx(os.len())],
            ec[idx(ec.len())],
            oc[idx(oc.len())]
        );
    }
    let p95_gap = 100.0
        * (eco.service_percentile_ms(0.95) as f64 / oracle.service_percentile_ms(0.95) as f64
            - 1.0);
    println!("\nP95 service gap vs Oracle: {p95_gap:+.1}% (paper bound: within 15%)");
    println!(
        "EcoLife decision overhead: {:.4}% of service time (paper bound: < 0.4%)\n",
        100.0 * eco_sum.decision_overhead_fraction
    );
}

fn bench(c: &mut Criterion) {
    print_fig8();
    let setup = EvalSetup::quick();
    let (_, m) = run_scheme(&setup.trace, &setup.ci, &setup.fleet, &mut setup.ecolife());
    c.bench_function("fig8/cdf_extraction", |b| {
        b.iter(|| (black_box(m.service_cdf()), black_box(m.carbon_cdf())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Cluster state: an N-node fleet plus one warm pool per node.

use crate::executor::{ExecutorConfig, NodeExecutors};
use crate::pool::{ExpiryMode, WarmPool};
use ecolife_hw::{Fleet, HardwareNode, NodeId};
use ecolife_trace::FunctionId;

/// Cluster state during a simulation run: every fleet node hosts one
/// memory-bounded warm pool (Sec. VI-C: "generalizes to multiple pairs by
/// maintaining multiple warm pools").
///
/// In a sharded run ([`Simulation::run_sharded`](crate::Simulation::run_sharded))
/// each shard owns a whole `Cluster` — its private slice of every node's
/// pool — and the other shards' bytes press on admission through each
/// pool's `external_used_mib` ledger snapshot. A function's containers
/// only ever live in its own shard's cluster, so `warm_location` stays a
/// shard-local question.
#[derive(Debug, Clone)]
pub struct Cluster {
    fleet: Fleet,
    pools: Vec<WarmPool>,
    /// Node ids in warm-serving preference order (fastest first), fixed
    /// at construction so the per-invocation lookup does not re-rank.
    warm_order: Vec<NodeId>,
    /// Fleet membership: inactive nodes (left for maintenance /
    /// autoscale-down) accept no keep-alives and no transfers. Execution
    /// routing is unaffected — a leave is a warm-pool drain, not a
    /// capacity change for running invocations.
    active: Vec<bool>,
    /// Bounded per-node executors ([`crate::executor`]), present only
    /// when the run's [`SimConfig`](crate::SimConfig) enables them. In a
    /// sharded run each shard's cluster carries its own copy (executors
    /// see shard-local load only).
    executors: Option<NodeExecutors>,
}

impl Cluster {
    /// Build a cluster; pool budgets come from each node's
    /// `keepalive_mem_mib`. Pools run the default expiry timeline.
    pub fn new(fleet: impl Into<Fleet>) -> Self {
        Self::with_expiry(fleet, ExpiryMode::default())
    }

    /// Build a cluster whose pools use an explicit expiry implementation
    /// (the engine threads [`SimConfig::expiry`](crate::SimConfig) here).
    pub fn with_expiry(fleet: impl Into<Fleet>, mode: ExpiryMode) -> Self {
        let fleet = fleet.into();
        let pools = fleet
            .iter()
            .map(|n| WarmPool::with_mode(n.keepalive_mem_mib, mode))
            .collect();
        let warm_order = fleet.warm_preference();
        let active = vec![true; fleet.len()];
        Cluster {
            fleet,
            pools,
            warm_order,
            active,
            executors: None,
        }
    }

    /// Attach bounded per-node executors (the engine calls this when
    /// [`SimConfig::bounded_executors`](crate::SimConfig) is set).
    /// Concurrency limits derive from each node's core count.
    pub fn enable_executors(&mut self, config: ExecutorConfig) {
        self.executors = Some(NodeExecutors::new(&self.fleet, config));
    }

    /// Whether this cluster bounds per-node concurrency.
    #[inline]
    pub fn executors_enabled(&self) -> bool {
        self.executors.is_some()
    }

    /// The queueing delay an arrival at `t_ms` would measure on `id`'s
    /// executor right now — `0` when executors are disabled or a slot is
    /// free. Exact during [`Scheduler::decide`](crate::Scheduler)
    /// (the engine advances executor clocks to the arrival instant
    /// before deciding), which is how queue-aware placement reads load
    /// without `&mut` access.
    #[inline]
    pub fn queue_wait_ms(&self, id: impl Into<NodeId>, t_ms: u64) -> u64 {
        match &self.executors {
            Some(x) => x.queue_wait_ms(id.into(), t_ms),
            None => 0,
        }
    }

    /// Queue depth (admitted, not yet started) on `id` as of the last
    /// executor advance; `0` when executors are disabled.
    #[inline]
    pub fn queue_depth(&self, id: impl Into<NodeId>) -> usize {
        match &self.executors {
            Some(x) => x.queue_depth(id.into()),
            None => 0,
        }
    }

    /// Mutable executor access for the engine's admission step.
    #[inline]
    pub(crate) fn executors_mut(&mut self) -> Option<&mut NodeExecutors> {
        self.executors.as_mut()
    }

    /// Per-node peak executor occupancy, when executors are enabled.
    pub fn executor_peaks(&self) -> Option<Vec<u32>> {
        self.executors.as_ref().map(|x| x.peaks())
    }

    #[inline]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    #[inline]
    pub fn node(&self, id: impl Into<NodeId>) -> &HardwareNode {
        self.fleet.node(id)
    }

    #[inline]
    pub fn pool(&self, id: impl Into<NodeId>) -> &WarmPool {
        &self.pools[id.into().index()]
    }

    #[inline]
    pub fn pool_mut(&mut self, id: impl Into<NodeId>) -> &mut WarmPool {
        &mut self.pools[id.into().index()]
    }

    /// Where `func` is currently warm at time `t_ms`, if anywhere.
    /// If warm on several nodes (possible after a cross-pool transfer
    /// races a fresh keep-alive), the highest warm-preference node wins —
    /// it serves the fastest warm start (the two-node case: "the newer
    /// generation wins").
    pub fn warm_location(&self, func: FunctionId, t_ms: u64) -> Option<NodeId> {
        for &id in &self.warm_order {
            if let Some(c) = self.pool(id).get(func) {
                if c.is_warm_at(t_ms) {
                    return Some(id);
                }
            }
        }
        None
    }

    /// Total warm containers across all pools.
    pub fn total_warm(&self) -> usize {
        self.pools.iter().map(|p| p.len()).sum()
    }

    /// Whether `id` is currently a fleet member (keep-alives and
    /// transfers may land there).
    #[inline]
    pub fn is_active(&self, id: impl Into<NodeId>) -> bool {
        self.active[id.into().index()]
    }

    /// Flip a node's membership (the engine's membership timeline calls
    /// this; a leave drains the pool first).
    pub fn set_active(&mut self, id: impl Into<NodeId>, active: bool) {
        self.active[id.into().index()] = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::WarmContainer;
    use ecolife_hw::{skus, Generation};

    fn warm(f: u32, since: u64, expiry: u64) -> WarmContainer {
        WarmContainer {
            func: FunctionId(f),
            memory_mib: 128,
            warm_since_ms: since,
            expiry_ms: expiry,
            origin_record: 0,
            transfer_latency_ms: 0,
        }
    }

    #[test]
    fn pools_take_budgets_from_nodes() {
        let pair = skus::pair_a().with_keepalive_budgets_mib(1_000, 2_000);
        let c = Cluster::new(pair);
        assert_eq!(c.pool(NodeId(0)).capacity_mib(), 1_000);
        assert_eq!(c.pool(NodeId(1)).capacity_mib(), 2_000);
        // Generation aliases still address the same pools.
        assert_eq!(c.pool(Generation::Old).capacity_mib(), 1_000);
        assert_eq!(c.pool(Generation::New).capacity_mib(), 2_000);
    }

    #[test]
    fn warm_location_finds_container() {
        let mut c = Cluster::new(skus::fleet_a());
        c.pool_mut(NodeId(0)).insert(warm(3, 0, 100)).unwrap();
        assert_eq!(c.warm_location(FunctionId(3), 50), Some(NodeId(0)));
        assert_eq!(c.warm_location(FunctionId(3), 100), None); // expired
        assert_eq!(c.warm_location(FunctionId(4), 50), None);
    }

    #[test]
    fn warm_on_several_prefers_fastest() {
        let mut c = Cluster::new(skus::fleet_a());
        c.pool_mut(NodeId(0)).insert(warm(1, 0, 100)).unwrap();
        c.pool_mut(NodeId(1)).insert(warm(1, 0, 100)).unwrap();
        assert_eq!(c.warm_location(FunctionId(1), 10), Some(NodeId(1)));
        assert_eq!(c.total_warm(), 2);
    }

    #[test]
    fn warm_preference_spans_a_three_node_fleet() {
        let mut c = Cluster::new(skus::fleet_three_generations());
        c.pool_mut(NodeId(0)).insert(warm(1, 0, 100)).unwrap();
        c.pool_mut(NodeId(1)).insert(warm(1, 0, 100)).unwrap();
        // The mid-generation node beats the oldest…
        assert_eq!(c.warm_location(FunctionId(1), 10), Some(NodeId(1)));
        // …and the newest beats both.
        c.pool_mut(NodeId(2)).insert(warm(1, 0, 100)).unwrap();
        assert_eq!(c.warm_location(FunctionId(1), 10), Some(NodeId(2)));
    }

    #[test]
    fn future_container_is_not_warm_yet() {
        let mut c = Cluster::new(skus::fleet_a());
        c.pool_mut(NodeId(1)).insert(warm(2, 500, 900)).unwrap();
        assert_eq!(c.warm_location(FunctionId(2), 100), None);
        assert_eq!(c.warm_location(FunctionId(2), 600), Some(NodeId(1)));
    }
}

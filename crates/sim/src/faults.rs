//! Deterministic fault injection: crashes, stale CI feeds, partitions.
//!
//! A [`FaultPlan`] is the chaos sibling of
//! [`MembershipPlan`](crate::MembershipPlan): a validated, time-sorted
//! timeline of typed faults that the engine replays *deterministically* —
//! a chaos run is as replayable and bit-pinnable as a clean one, on any
//! shard/thread layout. Three fault types are modeled:
//!
//! * [`Fault::NodeCrash`] — ungraceful node loss: the warm pool is
//!   settled and dropped at the crash instant (`lost_warm_mib`), the
//!   executor queue is cleared, and invocations routed to the node while
//!   it is down become zero-carbon `CrashRejected` records. Recovery is
//!   passive — the node simply accepts placements again.
//! * [`Fault::CiOutage`] — a region's carbon-intensity feed goes stale:
//!   the provider serves last-known-good data for the span
//!   ([`CiProvider::apply_outages`](ecolife_carbon::CiProvider)); past
//!   the [`StalenessPolicy`](ecolife_carbon::StalenessPolicy) bound the
//!   engine falls back to carbon-agnostic placement
//!   (`degraded_decisions`).
//! * [`Fault::Partition`] — the listed regions are isolated from the
//!   rest of the fleet: cross-partition keep-alive transfers fail and
//!   are retried with a bounded, deterministic virtual-clock backoff
//!   ([`FaultPlan::backoff_ms`], `transfer_retries`).
//!
//! Everything defaults off: an empty plan injects nothing and the
//! engine's output is byte-identical to a run without the fault layer.
//! Zero-duration faults (`recover_at == at`, empty spans) are normalized
//! away at construction, so they are no-ops *structurally*, not by
//! run-time luck.

use ecolife_hw::{NodeId, Region};
use std::fmt;

/// One injected fault. Spans are half-open `[from, to)` milliseconds of
/// virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `node` crashes ungracefully at `at_ms` and recovers (empty) at
    /// `recover_at_ms`.
    NodeCrash {
        node: NodeId,
        at_ms: u64,
        recover_at_ms: u64,
    },
    /// `region`'s carbon-intensity feed serves stale data over the span.
    CiOutage {
        region: Region,
        from_ms: u64,
        to_ms: u64,
    },
    /// `regions` are network-partitioned from the rest of the fleet over
    /// the span (links *within* each side keep working).
    Partition {
        regions: Vec<Region>,
        from_ms: u64,
        to_ms: u64,
    },
}

impl Fault {
    /// The instant the fault takes effect (sort key).
    fn start_ms(&self) -> u64 {
        match *self {
            Fault::NodeCrash { at_ms, .. } => at_ms,
            Fault::CiOutage { from_ms, .. } | Fault::Partition { from_ms, .. } => from_ms,
        }
    }

    /// Whether the fault covers no time at all (normalized away).
    fn is_zero_duration(&self) -> bool {
        match *self {
            Fault::NodeCrash {
                at_ms,
                recover_at_ms,
                ..
            } => recover_at_ms == at_ms,
            Fault::CiOutage { from_ms, to_ms, .. } | Fault::Partition { from_ms, to_ms, .. } => {
                to_ms == from_ms
            }
        }
    }
}

/// Why a [`FaultPlan`] refused construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A fault ends before it starts.
    InvertedSpan { from_ms: u64, to_ms: u64 },
    /// Two crash spans for the same node overlap — the node would crash
    /// while already down, making the drain accounting ambiguous.
    OverlappingCrash { node: NodeId },
    /// A partition lists no regions; it would isolate nothing.
    EmptyPartition,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvertedSpan { from_ms, to_ms } => {
                write!(
                    f,
                    "fault span ends at {to_ms} ms before it starts at {from_ms} ms"
                )
            }
            FaultError::OverlappingCrash { node } => {
                write!(f, "node {node} has overlapping crash spans")
            }
            FaultError::EmptyPartition => write!(f, "partition lists no regions"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Bounded deterministic retry for transfers that hit a partition or a
/// crashed target. The schedule is a pure function of
/// `(plan seed, seq, attempt)` — see [`FaultPlan::backoff_ms`] — so it
/// is bit-identical at any shard/thread layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base backoff; attempt `k` waits `base << (k-1)` plus a
    /// deterministic jitter below `base`.
    pub base_ms: u64,
    /// How many probes before the transfer gives up and evicts.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 250,
            max_attempts: 3,
        }
    }
}

/// A validated, time-sorted timeline of injected faults plus the
/// degradation knobs (seed, retry policy) a chaos run derives its
/// deterministic choices from.
///
/// Attach to a run with
/// [`Simulation::with_faults`](crate::Simulation::with_faults) (or
/// `Service::with_faults`). The default (empty) plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Normalized faults: zero-duration ones dropped, sorted by start
    /// time (stable, so same-instant faults keep insertion order). The
    /// index into this vec is the fault's identity in event keys.
    faults: Vec<Fault>,
    /// Crash instants `(at_ms, node, fault_idx)` in time order — the
    /// points where the engine timeline drains a pool.
    crashes: Vec<(u64, NodeId, u32)>,
    seed: u64,
    retry: RetryPolicy,
}

impl FaultPlan {
    /// Build a plan from faults, validating spans and crash overlaps.
    /// Zero-duration faults are dropped (structural no-ops).
    pub fn try_new(faults: Vec<Fault>) -> Result<Self, FaultError> {
        for fault in &faults {
            match fault {
                Fault::NodeCrash {
                    at_ms,
                    recover_at_ms,
                    ..
                } if recover_at_ms < at_ms => {
                    return Err(FaultError::InvertedSpan {
                        from_ms: *at_ms,
                        to_ms: *recover_at_ms,
                    });
                }
                Fault::CiOutage { from_ms, to_ms, .. }
                | Fault::Partition { from_ms, to_ms, .. }
                    if to_ms < from_ms =>
                {
                    return Err(FaultError::InvertedSpan {
                        from_ms: *from_ms,
                        to_ms: *to_ms,
                    });
                }
                Fault::Partition { regions, .. } if regions.is_empty() => {
                    return Err(FaultError::EmptyPartition);
                }
                _ => {}
            }
        }
        let mut faults: Vec<Fault> = faults
            .into_iter()
            .filter(|f| !f.is_zero_duration())
            .collect();
        faults.sort_by_key(Fault::start_ms);
        let mut crashes: Vec<(u64, NodeId, u32)> = Vec::new();
        for (idx, fault) in faults.iter().enumerate() {
            if let Fault::NodeCrash {
                node,
                at_ms,
                recover_at_ms,
            } = *fault
            {
                for other in &faults {
                    if let Fault::NodeCrash {
                        node: n2,
                        at_ms: a2,
                        recover_at_ms: r2,
                    } = *other
                    {
                        if n2 == node && a2 != at_ms && a2 < recover_at_ms && at_ms < r2 {
                            return Err(FaultError::OverlappingCrash { node });
                        }
                        if n2 == node && a2 == at_ms && r2 != recover_at_ms {
                            return Err(FaultError::OverlappingCrash { node });
                        }
                    }
                }
                crashes.push((at_ms, node, idx as u32));
            }
        }
        crashes.sort_unstable_by_key(|&(t, node, _)| (t, node.0));
        Ok(FaultPlan {
            faults,
            crashes,
            seed: 0,
            retry: RetryPolicy::default(),
        })
    }

    /// Append a node crash. Panics on an invalid plan (builder sugar
    /// mirroring [`MembershipPlan`](crate::MembershipPlan); use
    /// [`FaultPlan::try_new`] for fallible construction).
    pub fn crash(self, node: NodeId, at_ms: u64, recover_at_ms: u64) -> Self {
        self.push(Fault::NodeCrash {
            node,
            at_ms,
            recover_at_ms,
        })
    }

    /// Append a CI-feed outage. Panics on an invalid plan.
    pub fn ci_outage(self, region: Region, from_ms: u64, to_ms: u64) -> Self {
        self.push(Fault::CiOutage {
            region,
            from_ms,
            to_ms,
        })
    }

    /// Append a partition isolating `regions` from the rest of the
    /// fleet. Panics on an invalid plan.
    pub fn partition(self, regions: Vec<Region>, from_ms: u64, to_ms: u64) -> Self {
        self.push(Fault::Partition {
            regions,
            from_ms,
            to_ms,
        })
    }

    fn push(self, fault: Fault) -> Self {
        let seed = self.seed;
        let retry = self.retry;
        let mut faults = self.faults;
        faults.push(fault);
        let plan = Self::try_new(faults).expect("invalid fault");
        plan.with_seed(seed).with_retry(retry)
    }

    /// Seed the deterministic jitter of the retry backoff.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the transfer retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// No faults at all — the engine skips the fault layer entirely.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of (normalized) faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The normalized faults in start-time order; the index is the
    /// fault's identity in telemetry event keys.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The retry policy transfers use under partitions/crashes.
    #[inline]
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Crash instants `(at_ms, node, fault_idx)` in time order — the
    /// engine timeline's pool-drain points.
    pub(crate) fn crash_changes(&self) -> &[(u64, NodeId, u32)] {
        &self.crashes
    }

    /// Is `node` down at `t_ms`? Pure in `t` — no cursor, so sharded
    /// and sequential replays agree by construction.
    #[inline]
    pub fn is_crashed(&self, node: NodeId, t_ms: u64) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        self.faults.iter().any(|f| {
            matches!(*f, Fault::NodeCrash { node: n, at_ms, recover_at_ms }
                if n == node && at_ms <= t_ms && t_ms < recover_at_ms)
        })
    }

    /// Can a transfer cross from region `a` to region `b` at `t_ms`?
    /// Same-region moves always can; a cross-region move fails while any
    /// active partition puts `a` and `b` on opposite sides.
    pub fn link_ok(&self, a: Region, b: Region, t_ms: u64) -> bool {
        if a == b || self.faults.is_empty() {
            return true;
        }
        !self.faults.iter().any(|f| match f {
            Fault::Partition {
                regions,
                from_ms,
                to_ms,
            } if *from_ms <= t_ms && t_ms < *to_ms => regions.contains(&a) != regions.contains(&b),
            _ => false,
        })
    }

    /// Regions whose CI feed is *blacked out* at `t_ms`: stale past
    /// `max_stale_ms`. Yields in fault order (may repeat a region under
    /// overlapping outages — callers treat this as "any").
    pub fn blackout_regions(
        &self,
        t_ms: u64,
        max_stale_ms: u64,
    ) -> impl Iterator<Item = Region> + '_ {
        self.faults.iter().filter_map(move |f| match *f {
            Fault::CiOutage {
                region,
                from_ms,
                to_ms,
            } if t_ms < to_ms && t_ms >= from_ms.saturating_add(max_stale_ms) => Some(region),
            _ => None,
        })
    }

    /// CI outage spans `(region, from_ms, to_ms)` for
    /// [`CiProvider::apply_outages`](ecolife_carbon::CiProvider).
    pub fn outage_spans(&self) -> Vec<(Region, u64, u64)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CiOutage {
                    region,
                    from_ms,
                    to_ms,
                } => Some((region, from_ms, to_ms)),
                _ => None,
            })
            .collect()
    }

    /// Total stale-feed minutes over `[0, horizon_ms)` for outages whose
    /// region is served to some fleet node (`covered` decides). Input
    /// derived — identical however the run is sharded.
    pub fn stale_ci_minutes(&self, horizon_ms: u64, covered: impl Fn(Region) -> bool) -> u64 {
        self.faults
            .iter()
            .map(|f| match *f {
                Fault::CiOutage {
                    region,
                    from_ms,
                    to_ms,
                } if covered(region) && from_ms < horizon_ms => to_ms
                    .min(horizon_ms)
                    .saturating_sub(from_ms)
                    .div_ceil(60_000),
                _ => 0,
            })
            .sum()
    }

    /// Deterministic backoff before retry `attempt` (counted from 1) of
    /// transfer `seq`: exponential in the attempt with a seeded
    /// splitmix64 jitter below `base_ms`. Pure in its inputs — the whole
    /// retry schedule is bit-identical at any shard/thread layout.
    pub fn backoff_ms(&self, seq: u64, attempt: u32) -> u64 {
        let base = self.retry.base_ms.max(1);
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(attempt as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (base << (attempt.saturating_sub(1)).min(16)) + (x % base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_drops_zero_duration_faults() {
        let plan = FaultPlan::default()
            .partition(vec![Region::Texas], 500, 900)
            .crash(NodeId(1), 300, 300) // zero-duration: dropped
            .ci_outage(Region::Caiso, 100, 100) // dropped
            .crash(NodeId(0), 200, 400);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.faults()[0].start_ms(), 200);
        assert_eq!(plan.crash_changes(), &[(200, NodeId(0), 0)]);
        assert!(FaultPlan::default().crash(NodeId(1), 300, 300).is_empty());
    }

    #[test]
    fn plan_rejects_inverted_and_overlapping_spans() {
        assert_eq!(
            FaultPlan::try_new(vec![Fault::CiOutage {
                region: Region::Texas,
                from_ms: 100,
                to_ms: 50,
            }]),
            Err(FaultError::InvertedSpan {
                from_ms: 100,
                to_ms: 50
            })
        );
        assert_eq!(
            FaultPlan::try_new(vec![
                Fault::NodeCrash {
                    node: NodeId(2),
                    at_ms: 100,
                    recover_at_ms: 300,
                },
                Fault::NodeCrash {
                    node: NodeId(2),
                    at_ms: 200,
                    recover_at_ms: 400,
                },
            ]),
            Err(FaultError::OverlappingCrash { node: NodeId(2) })
        );
        assert_eq!(
            FaultPlan::try_new(vec![Fault::Partition {
                regions: vec![],
                from_ms: 0,
                to_ms: 10,
            }]),
            Err(FaultError::EmptyPartition)
        );
        // Back-to-back crash spans for one node are fine.
        assert!(FaultPlan::try_new(vec![
            Fault::NodeCrash {
                node: NodeId(2),
                at_ms: 100,
                recover_at_ms: 300,
            },
            Fault::NodeCrash {
                node: NodeId(2),
                at_ms: 300,
                recover_at_ms: 400,
            },
        ])
        .is_ok());
    }

    #[test]
    fn crash_and_link_queries_are_pure_in_time() {
        let plan = FaultPlan::default().crash(NodeId(0), 100, 200).partition(
            vec![Region::Texas, Region::Florida],
            50,
            150,
        );
        assert!(!plan.is_crashed(NodeId(0), 99));
        assert!(plan.is_crashed(NodeId(0), 100));
        assert!(plan.is_crashed(NodeId(0), 199));
        assert!(!plan.is_crashed(NodeId(0), 200)); // half-open
        assert!(!plan.is_crashed(NodeId(1), 150));
        // Partition splits {TEX, FLA} from the rest.
        assert!(!plan.link_ok(Region::Texas, Region::Caiso, 100));
        assert!(!plan.link_ok(Region::NewYork, Region::Florida, 100));
        assert!(plan.link_ok(Region::Texas, Region::Florida, 100)); // same side
        assert!(plan.link_ok(Region::Caiso, Region::NewYork, 100)); // same side
        assert!(plan.link_ok(Region::Texas, Region::Texas, 100)); // same region
        assert!(plan.link_ok(Region::Texas, Region::Caiso, 150)); // healed
    }

    #[test]
    fn blackout_respects_the_staleness_bound() {
        let plan = FaultPlan::default().ci_outage(Region::Caiso, 60_000, 600_000);
        let stale_bound = 120_000; // 2 minutes
        assert_eq!(plan.blackout_regions(60_000, stale_bound).count(), 0);
        assert_eq!(plan.blackout_regions(179_999, stale_bound).count(), 0);
        assert_eq!(
            plan.blackout_regions(180_000, stale_bound)
                .collect::<Vec<_>>(),
            vec![Region::Caiso]
        );
        assert_eq!(plan.blackout_regions(600_000, stale_bound).count(), 0);
        assert_eq!(plan.stale_ci_minutes(600_000, |_| true), 9);
        assert_eq!(plan.stale_ci_minutes(600_000, |_| false), 0);
        assert_eq!(plan.stale_ci_minutes(120_000, |r| r == Region::Caiso), 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_seeded() {
        let plan = FaultPlan::default().crash(NodeId(0), 0, 1);
        for seq in [0u64, 7, 123_456] {
            for attempt in 1..=3u32 {
                let b = plan.backoff_ms(seq, attempt);
                assert_eq!(b, plan.backoff_ms(seq, attempt), "pure function");
                let floor = 250u64 << (attempt - 1);
                assert!(b >= floor && b < floor + 250, "bounded jitter: {b}");
            }
        }
        let reseeded = plan.clone().with_seed(42);
        assert_ne!(
            (1..=8).map(|a| plan.backoff_ms(9, a)).collect::<Vec<_>>(),
            (1..=8)
                .map(|a| reseeded.backoff_ms(9, a))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fault_error_displays_and_is_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(FaultError::InvertedSpan {
                from_ms: 9,
                to_ms: 3,
            }),
            Box::new(FaultError::OverlappingCrash { node: NodeId(4) }),
            Box::new(FaultError::EmptyPartition),
        ];
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("ends at 3 ms"));
        assert!(rendered[1].contains("overlapping crash"));
        assert!(rendered[2].contains("no regions"));
    }
}

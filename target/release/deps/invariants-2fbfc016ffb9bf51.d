/root/repo/target/release/deps/invariants-2fbfc016ffb9bf51.d: tests/invariants.rs Cargo.toml

/root/repo/target/release/deps/libinvariants-2fbfc016ffb9bf51.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

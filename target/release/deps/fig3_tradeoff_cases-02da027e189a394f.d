/root/repo/target/release/deps/fig3_tradeoff_cases-02da027e189a394f.d: crates/bench/benches/fig3_tradeoff_cases.rs Cargo.toml

/root/repo/target/release/deps/libfig3_tradeoff_cases-02da027e189a394f.rmeta: crates/bench/benches/fig3_tradeoff_cases.rs Cargo.toml

crates/bench/benches/fig3_tradeoff_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! EcoLife decision hot-path throughput: cached `ObjectiveTables` vs the
//! uncached reference loop, on the million-invocation trace.
//!
//! The KDM/DPSO decision loop — not the replay engine — dominates
//! EcoLife's wall-clock (BENCH_sim.json: the bare engine replays the
//! 1.06M-invocation trace in seconds while EcoLife took ~100 s), so this
//! bench tracks the number the hot-path tentpole exists for: sequential
//! EcoLife wall-clock over the same trace, before (uncached, the seed's
//! per-particle fleet scans) and after (cached tables + scratch
//! buffers + slot-map state). Both paths make bit-identical decisions
//! (`tests/hotpath.rs`); headline numbers land in `BENCH_ecolife.json`.
//!
//! Smoke mode (`ECOLIFE_BENCH_SMOKE=1`, the CI `bench-smoke` job): a
//! tiny-trace run of both paths that *asserts* record-for-record
//! equality and prints timings — bench drift fails the build — without
//! the multi-minute full measurement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecolife_bench::report::BenchJson;
use ecolife_carbon::{CarbonIntensityTrace, Region};
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::{skus, Fleet};
use ecolife_sim::{next_arrival_gaps_strategy, ShardOptions, Simulation};
use ecolife_trace::{SynthTraceConfig, Trace, WorkloadCatalog};
use std::time::Instant;

const SHARDS: usize = 8;

/// The workload seed of the million-invocation setup.
const SEED: u64 = 41;

fn cached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(fleet.clone(), EcoLifeConfig::default())
}

fn uncached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().without_cached_tables(),
    )
}

fn wall_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Tiny-trace smoke: both paths, bit-identity asserted, sub-second.
fn smoke() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 60,
        ..SynthTraceConfig::small(7)
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 7);
    // Squeezed pools so the overflow/transfer-ranking path runs too.
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(4 * 1024);
    let sim = Simulation::new(&trace, &ci, fleet.clone());

    let mut fast_metrics = None;
    let cached_ms = wall_ms(|| fast_metrics = Some(sim.run(&mut cached(&fleet))));
    let mut ref_metrics = None;
    let uncached_ms = wall_ms(|| ref_metrics = Some(sim.run(&mut uncached(&fleet))));
    let (fast, reference) = (fast_metrics.unwrap(), ref_metrics.unwrap());
    assert_eq!(
        fast.records, reference.records,
        "smoke: cached tables changed a decision"
    );
    assert_eq!(fast.transfers, reference.transfers);
    assert_eq!(fast.evicted_functions, reference.evicted_functions);
    // Force the bucketed path: the automatic entry point would take the
    // sequential fallback on a smoke-sized trace.
    assert_eq!(
        ecolife_sim::next_arrival_gaps_bucketed(&trace, 4),
        trace.next_arrival_gaps(),
        "smoke: sharded gap precompute diverged"
    );
    println!(
        "smoke ok: {} invocations, cached {cached_ms:.0} ms vs uncached {uncached_ms:.0} ms, \
         decisions bit-identical",
        trace.len()
    );
}

fn million_setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig::million(SEED).generate_scaled(&WorkloadCatalog::sebs());
    assert!(trace.len() >= 1_000_000, "only {} invocations", trace.len());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, SEED);
    // Pools sized so the run never overflows: this measures decision
    // throughput, not eviction churn.
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(32_000_000);
    (trace, ci, fleet)
}

fn write_json() {
    let (trace, ci, fleet) = million_setup();
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = SHARDS.min(host_cpus);

    // Before: the seed's uncached decision loop (fleet-wide scans per
    // particle evaluation).
    let uncached_ms = wall_ms(|| {
        let mut s = uncached(&fleet);
        black_box(sim.run(&mut s));
    });
    // After: the cached hot path, sequential (the ≥3× acceptance number).
    let cached_ms = wall_ms(|| {
        let mut s = cached(&fleet);
        black_box(sim.run(&mut s));
    });
    // And sharded over the persistent worker pool (wall-clock only moves
    // with real cores; decisions are the same either way).
    let sharded_ms = wall_ms(|| {
        black_box(sim.run_sharded(
            |_| cached(&fleet),
            &ShardOptions::new(SHARDS).with_threads(threads),
        ));
    });
    // The oracle's future-knowledge precompute at the same scale, three
    // ways: the sequential reference, the forced bucketed fan-out (kept
    // for multi-core comparison), and — the number the production entry
    // point actually pays — the automatic strategy, which falls back to
    // the sequential pass whenever only one effective worker thread
    // exists (on a 1-CPU host the forced fan-out is pure bucketing
    // overhead: it measured ~3× slower than sequential here).
    let gaps_seq_ms = wall_ms(|| {
        black_box(trace.next_arrival_gaps());
    });
    let gaps_bucketed_ms = wall_ms(|| {
        black_box(ecolife_sim::next_arrival_gaps_bucketed(&trace, SHARDS));
    });
    let gaps_auto_path = next_arrival_gaps_strategy(&trace).label();
    let gaps_auto_ms = wall_ms(|| {
        black_box(ecolife_sim::next_arrival_gaps_parallel(&trace));
    });

    BenchJson::new("ecolife_hotpath", SEED, trace.len())
        .int("trace_functions", trace.catalog().len() as u64)
        .int("fleet_nodes", fleet.len() as u64)
        .float("ecolife_uncached_sequential_ms", uncached_ms, 0)
        .float("ecolife_cached_sequential_ms", cached_ms, 0)
        .float("hotpath_speedup", uncached_ms / cached_ms.max(1.0), 2)
        .float("ecolife_cached_sharded_ms", sharded_ms, 0)
        .int("shards", SHARDS as u64)
        .int("threads", threads as u64)
        .float("oracle_gaps_sequential_ms", gaps_seq_ms, 0)
        .float("oracle_gaps_bucketed_ms", gaps_bucketed_ms, 0)
        .float("oracle_gaps_auto_ms", gaps_auto_ms, 0)
        .text("oracle_gaps_auto_path", gaps_auto_path)
        .text(
            "note",
            "uncached = the pre-tables decision loop (fleet-wide objective scans per DPSO \
             particle evaluation); cached = ObjectiveTables + scratch-buffer hot path. Decisions \
             are bit-identical (tests/hotpath.rs). hotpath_speedup is sequential/sequential on \
             this host and core-count independent; the sharded number and the bucketed gap \
             precompute (forced here even on 1 CPU) additionally need a multi-core host. \
             oracle_gaps_auto_* records the production entry point: it picks the sequential pass \
             when only one effective thread exists, so a 1-CPU host no longer pays the bucketing \
             overhead.",
        )
        .write("BENCH_ecolife.json");
}

fn bench(c: &mut Criterion) {
    let smoke_flag = std::env::var("ECOLIFE_BENCH_SMOKE").unwrap_or_default();
    if !smoke_flag.is_empty() && smoke_flag != "0" {
        smoke();
        return;
    }

    write_json();

    // Interactive loops on a ~100k-invocation slice of the same
    // distribution (and a smaller one for the slow uncached path).
    let trace = SynthTraceConfig {
        n_functions: 600,
        duration_min: 600,
        seed: SEED,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, SEED);
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(512 * 1024);
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    c.bench_function("ecolife/cached_sequential_100k", |b| {
        b.iter(|| {
            let mut s = cached(&fleet);
            black_box(sim.run(&mut s))
        })
    });

    let small = SynthTraceConfig {
        n_functions: 120,
        duration_min: 600,
        seed: SEED,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let sim_small = Simulation::new(&small, &ci, fleet.clone());
    c.bench_function("ecolife/uncached_sequential_20k", |b| {
        b.iter(|| {
            let mut s = uncached(&fleet);
            black_box(sim_small.run(&mut s))
        })
    });
    c.bench_function("ecolife/cached_sequential_20k", |b| {
        b.iter(|| {
            let mut s = cached(&fleet);
            black_box(sim_small.run(&mut s))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/pool_properties-a244fea09d3cb841.d: crates/sim/tests/pool_properties.rs Cargo.toml

/root/repo/target/release/deps/libpool_properties-a244fea09d3cb841.rmeta: crates/sim/tests/pool_properties.rs Cargo.toml

crates/sim/tests/pool_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/rand-6b864db553fe1014.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-6b864db553fe1014: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

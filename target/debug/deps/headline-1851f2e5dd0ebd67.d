/root/repo/target/debug/deps/headline-1851f2e5dd0ebd67.d: crates/bench/src/bin/headline.rs

/root/repo/target/debug/deps/headline-1851f2e5dd0ebd67: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:

/root/repo/target/release/deps/fig8_cdf-471ee2bc1409bda7.d: crates/bench/benches/fig8_cdf.rs

/root/repo/target/release/deps/fig8_cdf-471ee2bc1409bda7: crates/bench/benches/fig8_cdf.rs

crates/bench/benches/fig8_cdf.rs:

//! # ecolife-hw — heterogeneous hardware substrate
//!
//! This crate models the datacenter hardware that EcoLife schedules over:
//! CPUs and DRAM modules of different generations, their embodied carbon
//! footprints, their power draw, their relative performance — and the
//! **fleet** abstraction that composes them into a schedulable cluster.
//!
//! ## The fleet model
//!
//! The unit of deployment is a [`Fleet`]: an ordered, non-empty set of
//! [`HardwareNode`]s (CPU package + DRAM kit) addressed by [`NodeId`].
//! Every layer above — the simulator's cluster state, the scheduler's
//! decision space, the optimizer's search box — is keyed by `NodeId`, so
//! the fleet size is a free parameter: two nodes reproduce the paper,
//! larger fleets model multi-SKU clusters (see [`skus::fleet_of`] and
//! [`skus::fleet_three_generations`]). Each node additionally carries a
//! grid [`Region`]: a fleet may span several grids (e.g.
//! [`skus::fleet_five_regions`], one pair per Fig. 14 region), and the
//! simulator charges every execution and keep-alive at the acting
//! node's own grid intensity.
//!
//! ## The paper's two-node special case
//!
//! The paper (Sec. II, Table I) evaluates three old/new hardware pairs:
//!
//! | Pair | Old CPU (year)              | New CPU (year)                | Old DRAM          | New DRAM           |
//! |------|-----------------------------|-------------------------------|-------------------|--------------------|
//! | A    | Xeon E5-2686 (2016)         | Xeon Platinum 8252C (2020)    | Micron-512 (2018) | Samsung-192 (2019) |
//! | B    | Xeon Platinum 8124M (2017)  | Xeon Platinum 8252C (2020)    | Micron-192 (2018) | Samsung-192 (2019) |
//! | C    | Xeon Platinum 8275L (2019)  | Xeon Platinum 8252C (2020)    | Samsung-192 (2019)| Samsung-192 (2019) |
//!
//! [`HardwarePair`] survives as a thin two-node constructor for these
//! configurations, and [`Generation`] as the compatibility alias into the
//! canonical pair layout (`Old` → node 0, `New` → node 1 via
//! `From<Generation> for NodeId`), so paper figures keep their Old/New
//! semantics while everything else speaks fleet.
//!
//! ## The physical trade-off
//!
//! The key trade-off EcoLife exploits is encoded here:
//!
//! * **older hardware** → lower embodied carbon (smaller dies, older
//!   lithography, already amortized designs) and lower *per-core* idle
//!   power (more cores per package), but slower execution and worse
//!   energy efficiency per unit of work;
//! * **newer hardware** → higher embodied carbon but faster execution and
//!   lower operational energy per unit of work.
//!
//! All carbon quantities are in **grams of CO2e**, power in **watts**,
//! memory in **MiB**, and time in **milliseconds** unless a name says
//! otherwise.

pub mod cpu;
pub mod dram;
pub mod fleet;
pub mod node;
pub mod pair;
pub mod perf;
pub mod power;
pub mod region;
pub mod skus;

pub use cpu::CpuModel;
pub use dram::DramModel;
pub use fleet::Fleet;
pub use node::{Generation, HardwareNode, NodeId};
pub use pair::{HardwarePair, PairId};
pub use perf::PerfModel;
pub use power::PowerDraw;
pub use region::{Region, RegionProfile};
pub use skus::Sku;

/// Default hardware lifetime used to amortize embodied carbon:
/// four years, per the paper (Sec. V, "a typical four-year lifetime
/// [35], [36] for DRAM and CPU").
pub const DEFAULT_LIFETIME_MS: u64 = 4 * 365 * 24 * 3600 * 1000;

/// Milliseconds per hour, used when converting power x time to kWh.
pub const MS_PER_HOUR: f64 = 3_600_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_is_four_years() {
        assert_eq!(DEFAULT_LIFETIME_MS, 126_144_000_000);
    }

    #[test]
    fn ms_per_hour_consistent() {
        assert_eq!(MS_PER_HOUR, 3600.0 * 1000.0);
    }
}

//! Grid carbon-intensity time series.
//!
//! The paper feeds EcoLife minute-resolution carbon intensity from
//! Electricity Maps [37], primarily CISO (California ISO), plus Tennessee,
//! Texas, Florida, and New York for the Fig. 14 robustness study. We
//! reproduce those feeds with a seeded synthetic generator whose per-region
//! parameters match the published statistics: CISO has a pronounced solar
//! "duck curve" (large diurnal swing, ~6.75% mean hourly fluctuation,
//! σ≈59), the south-eastern grids are flat and carbon-heavy, and NY sits
//! low with moderate swing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// The region *type* (and its generation profile) lives in `ecolife-hw`
// since nodes carry their deployment region; this crate owns the series
// generation and re-exports the type for compatibility.
pub use ecolife_hw::{Region, RegionProfile};

/// Minutes per day, the fundamental period of the diurnal cycle.
const MIN_PER_DAY: f64 = 24.0 * 60.0;

/// A minute-resolution carbon-intensity series (gCO2/kWh).
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonIntensityTrace {
    /// One sample per minute, starting at simulation time 0.
    samples: Vec<f64>,
}

impl CarbonIntensityTrace {
    /// Wrap an explicit series. Panics on an empty series — a scheduler
    /// with no CI signal is meaningless.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(
            !samples.is_empty(),
            "carbon-intensity trace must be non-empty"
        );
        assert!(
            samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "carbon intensity must be finite and non-negative"
        );
        CarbonIntensityTrace { samples }
    }

    /// A constant-intensity trace (used by the Fig. 3 CI=50/CI=300 cases).
    pub fn constant(ci: f64, minutes: usize) -> Self {
        Self::from_samples(vec![ci; minutes.max(1)])
    }

    /// Generate `minutes` of synthetic intensity for `region`,
    /// deterministically from `seed`.
    pub fn synthetic(region: Region, minutes: usize, seed: u64) -> Self {
        let p = region.profile();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_c1a0);
        let mut noise = 0.0f64;
        // AR(1) with coefficient 0.92: slow-moving grid-mix drift.
        let rho = 0.92f64;
        let innov_sd = p.noise_sd * (1.0 - rho * rho).sqrt();
        let samples = (0..minutes.max(1))
            .map(|m| {
                let t = m as f64;
                let w = 2.0 * std::f64::consts::PI * (t - p.phase_min) / MIN_PER_DAY;
                // Box-Muller normal innovation.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                noise = rho * noise + innov_sd * z;
                let ci = p.mean_g_per_kwh
                    + p.diurnal_amplitude * w.sin()
                    + p.secondary_amplitude * (2.0 * w).sin()
                    + noise;
                ci.max(20.0)
            })
            .collect();
        CarbonIntensityTrace { samples }
    }

    /// Parse an Electricity Maps-style CSV export: one `minute,ci` pair per
    /// line; a header line and blank lines are skipped.
    ///
    /// Every accepted value is validated — the intensity must be finite
    /// and non-negative, and the minute column must count up from 0 in
    /// steps of one (a shuffled, duplicated, or gapped export would
    /// silently misalign every downstream carbon charge) — so malformed
    /// input is a line-numbered `Err`, never a corrupted series.
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let first = parts.next().unwrap_or("").trim();
            if ln == 0 && first.parse::<f64>().is_err() {
                continue; // header
            }
            let minute: u64 = first
                .parse()
                .map_err(|e| format!("line {}: bad minute {first:?}: {e}", ln + 1))?;
            if minute != samples.len() as u64 {
                return Err(format!(
                    "line {}: minute {minute} out of order (expected {})",
                    ln + 1,
                    samples.len()
                ));
            }
            let ci_field = parts
                .next()
                .ok_or_else(|| format!("line {}: missing intensity column", ln + 1))?
                .trim();
            let ci: f64 = ci_field
                .parse()
                .map_err(|e| format!("line {}: bad intensity {ci_field:?}: {e}", ln + 1))?;
            if !ci.is_finite() || ci < 0.0 {
                return Err(format!("line {}: intensity out of range: {ci}", ln + 1));
            }
            samples.push(ci);
        }
        if samples.is_empty() {
            return Err("no samples in CSV".into());
        }
        Ok(CarbonIntensityTrace { samples })
    }

    /// Tile the series cyclically until it covers at least `minutes`
    /// minutes — the explicit opt-in for replaying a workload longer
    /// than the recorded feed (e.g. extending one recorded day into a
    /// week of identical diurnal cycles). A series already long enough
    /// is returned unchanged. This is deliberately a *new* trace, not a
    /// lookup mode: simulation construction rejects a too-short series
    /// outright, so extending coverage is always a visible decision at
    /// the call site.
    pub fn extend_cyclic(&self, minutes: usize) -> Self {
        if self.samples.len() >= minutes {
            return self.clone();
        }
        let samples = self.samples.iter().cycle().take(minutes).copied().collect();
        CarbonIntensityTrace { samples }
    }

    /// Number of minutes covered.
    #[inline]
    pub fn len_minutes(&self) -> usize {
        self.samples.len()
    }

    /// Duration covered in milliseconds.
    #[inline]
    pub fn len_ms(&self) -> u64 {
        self.samples.len() as u64 * 60_000
    }

    /// Intensity at time `t_ms` (clamped to the last sample beyond the
    /// end, matching how a scheduler would hold the latest reading over a
    /// short tail — e.g. a keep-alive outliving the last arrival).
    /// Simulation construction validates that the series covers the whole
    /// workload span, so this clamp can only engage on such tails, never
    /// silently freeze the intensity for the bulk of a run; use
    /// [`CarbonIntensityTrace::extend_cyclic`] to cover longer horizons
    /// explicitly.
    #[inline]
    pub fn at(&self, t_ms: u64) -> f64 {
        let idx = (t_ms / 60_000) as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Time-weighted average intensity over `[t0_ms, t1_ms)`. This is the
    /// quantity multiplied into the operational-carbon formula for a phase
    /// spanning that interval.
    pub fn average_over(&self, t0_ms: u64, t1_ms: u64) -> f64 {
        if t1_ms <= t0_ms {
            return self.at(t0_ms);
        }
        let mut acc = 0.0f64;
        let mut t = t0_ms;
        while t < t1_ms {
            let minute_end = (t / 60_000 + 1) * 60_000;
            let seg_end = minute_end.min(t1_ms);
            acc += self.at(t) * (seg_end - t) as f64;
            t = seg_end;
        }
        acc / (t1_ms - t0_ms) as f64
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation of all samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Mean absolute hour-over-hour fluctuation, as a percentage — the
    /// statistic the paper quotes for CISO (≈6.75%).
    pub fn mean_hourly_fluctuation_pct(&self) -> f64 {
        let hours: Vec<f64> = self
            .samples
            .chunks(60)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        if hours.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in hours.windows(2) {
            acc += ((w[1] - w[0]) / w[0]).abs();
        }
        100.0 * acc / (hours.len() - 1) as f64
    }

    /// Raw samples (read-only).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let t = CarbonIntensityTrace::constant(300.0, 100);
        assert_eq!(t.at(0), 300.0);
        assert_eq!(t.at(99 * 60_000), 300.0);
        assert_eq!(t.average_over(0, 50 * 60_000 + 123), 300.0);
        assert_eq!(t.std_dev(), 0.0);
    }

    #[test]
    fn at_clamps_past_the_end() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 200.0]);
        assert_eq!(t.at(10_000_000), 200.0);
    }

    #[test]
    fn average_over_weights_by_time() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 300.0]);
        // 30 s at 100 + 60 s at 300 over [30s, 120s) → (100*30 + 300*60)/90.
        let avg = t.average_over(30_000, 120_000);
        assert!((avg - (100.0 * 30.0 + 300.0 * 60.0) / 90.0).abs() < 1e-9);
    }

    #[test]
    fn average_over_degenerate_interval_returns_point_value() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 300.0]);
        assert_eq!(t.average_over(70_000, 70_000), 300.0);
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 7);
        let b = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 7);
        let c = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_respects_region_means() {
        for region in Region::ALL {
            let t = CarbonIntensityTrace::synthetic(region, 3 * 1440, 42);
            let mean = t.mean();
            let target = region.profile().mean_g_per_kwh;
            assert!(
                (mean - target).abs() < target * 0.10,
                "{region}: mean {mean:.1} vs target {target:.1}"
            );
        }
    }

    #[test]
    fn caiso_fluctuates_more_than_florida() {
        let cal = CarbonIntensityTrace::synthetic(Region::Caiso, 3 * 1440, 1);
        let fla = CarbonIntensityTrace::synthetic(Region::Florida, 3 * 1440, 1);
        assert!(cal.std_dev() > 2.0 * fla.std_dev());
        assert!(cal.mean_hourly_fluctuation_pct() > fla.mean_hourly_fluctuation_pct());
    }

    #[test]
    fn caiso_hourly_fluctuation_near_paper_statistic() {
        // Paper: CISO carbon intensity fluctuates by an average of 6.75%
        // hourly with σ ≈ 59. Accept a generous band — this is calibration,
        // not a bit-exact target.
        let cal = CarbonIntensityTrace::synthetic(Region::Caiso, 7 * 1440, 3);
        let fluct = cal.mean_hourly_fluctuation_pct();
        assert!(
            (2.0..=14.0).contains(&fluct),
            "hourly fluctuation {fluct:.2}% outside band"
        );
        let sd = cal.std_dev();
        assert!((30.0..=110.0).contains(&sd), "σ = {sd:.1} outside band");
    }

    #[test]
    fn intensities_never_negative() {
        for region in Region::ALL {
            let t = CarbonIntensityTrace::synthetic(region, 1440, 99);
            assert!(t.samples().iter().all(|&s| s >= 20.0));
        }
    }

    #[test]
    fn parse_csv_with_header() {
        let t = CarbonIntensityTrace::parse_csv("minute,ci\n0,120.5\n1,130.0\n").unwrap();
        assert_eq!(t.len_minutes(), 2);
        assert_eq!(t.at(0), 120.5);
        assert_eq!(t.at(60_000), 130.0);
    }

    #[test]
    fn parse_csv_without_header() {
        let t = CarbonIntensityTrace::parse_csv("0,100\n1,200\n\n2,300\n").unwrap();
        assert_eq!(t.len_minutes(), 3);
    }

    #[test]
    fn parse_csv_rejects_garbage() {
        assert!(CarbonIntensityTrace::parse_csv("0,abc").is_err());
        assert!(CarbonIntensityTrace::parse_csv("").is_err());
        assert!(CarbonIntensityTrace::parse_csv("0,-5").is_err());
        assert!(CarbonIntensityTrace::parse_csv("0").is_err());
    }

    #[test]
    fn parse_csv_rejects_non_finite_intensities_with_line_numbers() {
        // NaN/±inf parse as valid f64 literals; they must still be
        // rejected — they would otherwise poison every carbon total.
        for bad in ["NaN", "nan", "inf", "-inf", "1e999"] {
            let err = CarbonIntensityTrace::parse_csv(&format!("minute,ci\n0,100\n1,{bad}\n"))
                .unwrap_err();
            assert!(err.starts_with("line 3:"), "{bad}: {err}");
        }
    }

    #[test]
    fn parse_csv_rejects_misordered_minutes() {
        // Duplicated, gapped, or shuffled minute columns would silently
        // misalign the series against simulated time.
        for (bad, line) in [
            ("0,100\n0,200", 2),
            ("0,100\n2,200", 2),
            ("minute,ci\n1,100", 2),
            ("0,100\nx,200", 2),
        ] {
            let err = CarbonIntensityTrace::parse_csv(bad).unwrap_err();
            assert!(err.starts_with(&format!("line {line}:")), "{bad:?}: {err}");
        }
    }

    #[test]
    fn extend_cyclic_tiles_the_series() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 200.0, 300.0]);
        let week = t.extend_cyclic(8);
        assert_eq!(week.len_minutes(), 8);
        assert_eq!(
            week.samples(),
            &[100.0, 200.0, 300.0, 100.0, 200.0, 300.0, 100.0, 200.0]
        );
        // Already-covering series are returned unchanged.
        assert_eq!(t.extend_cyclic(2), t);
        assert_eq!(t.extend_cyclic(3), t);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_samples_panic() {
        CarbonIntensityTrace::from_samples(vec![]);
    }

    #[test]
    fn region_labels_match_fig14() {
        let labels: Vec<_> = Region::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["TEN", "TEX", "FLA", "NY", "CAL"]);
    }

    #[test]
    fn len_ms_is_minutes_times_60k() {
        let t = CarbonIntensityTrace::constant(100.0, 5);
        assert_eq!(t.len_ms(), 300_000);
    }
}

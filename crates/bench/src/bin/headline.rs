//! Quick headline check: Fig. 7 placements of every scheme.
use ecolife_bench::{fmt_placement, EvalSetup};

fn main() {
    let setup = EvalSetup::standard();
    let names = [
        "Oracle",
        "EcoLife",
        "Energy-Opt",
        "New-Only",
        "Old-Only",
        "CO2-Opt",
        "Service-Time-Opt",
    ];
    let summaries = vec![
        setup.run(&mut setup.oracle()),
        setup.run(&mut setup.ecolife()),
        setup.run(&mut setup.energy_opt()),
        setup.run(&mut setup.new_only()),
        setup.run(&mut setup.old_only()),
        setup.run(&mut setup.co2_opt()),
        setup.run(&mut setup.service_time_opt()),
    ];
    for (n, s) in names.iter().zip(&summaries) {
        println!(
            "{:<18} service {:>10} ms  carbon {:>8.2} g  warm {:.2}  ka_carbon {:>7.2} g",
            n, s.total_service_ms, s.total_carbon_g, s.warm_rate, s.keepalive_carbon_g
        );
    }
    println!();
    for c in setup.placements(&summaries) {
        println!("{}", fmt_placement(&c));
    }
}

/root/repo/target/release/deps/tune-706785025b741818.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/release/deps/libtune-706785025b741818.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/criterion-9816e8f07b8d1e5a.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9816e8f07b8d1e5a.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9816e8f07b8d1e5a.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

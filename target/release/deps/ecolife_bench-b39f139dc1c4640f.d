/root/repo/target/release/deps/ecolife_bench-b39f139dc1c4640f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libecolife_bench-b39f139dc1c4640f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

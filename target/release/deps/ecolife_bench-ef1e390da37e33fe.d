/root/repo/target/release/deps/ecolife_bench-ef1e390da37e33fe.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ecolife_bench-ef1e390da37e33fe: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

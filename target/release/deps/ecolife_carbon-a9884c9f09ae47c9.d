/root/repo/target/release/deps/ecolife_carbon-a9884c9f09ae47c9.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

/root/repo/target/release/deps/libecolife_carbon-a9884c9f09ae47c9.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

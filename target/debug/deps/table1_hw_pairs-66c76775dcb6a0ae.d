/root/repo/target/debug/deps/table1_hw_pairs-66c76775dcb6a0ae.d: crates/bench/benches/table1_hw_pairs.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_hw_pairs-66c76775dcb6a0ae.rmeta: crates/bench/benches/table1_hw_pairs.rs Cargo.toml

crates/bench/benches/table1_hw_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/examples/capacity_planning-a4ff64d5dc2d36a5.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-a4ff64d5dc2d36a5: examples/capacity_planning.rs

examples/capacity_planning.rs:

//! Sharded replay engine throughput: expiry timeline vs the scan
//! reference, 1 vs N shards, on million- and ten-million-invocation
//! synthetic traces.
//!
//! The simulator is the inner loop of everything above it (every planner
//! fitness evaluation is a replay), so this bench tracks the numbers the
//! replay-core tentpoles exist for:
//!
//! * **expiry timeline** — engine wall-clock over the ≥10⁶-invocation
//!   workload with the min-heap expiry timeline (the default) against
//!   the original full-pool scan (`ExpiryMode::Scan`). The scan is
//!   O(pool) per invocation, the timeline a heap-top peek, so this
//!   speedup is *core-count independent* — the headline on a 1-CPU host;
//! * **sharding** — sequential vs `Simulation::run_sharded` at 8 shards,
//!   bare engine and full EcoLife. Shards only buy wall-clock on real
//!   cores; the recorded `host_cpus` is what any speedup claim must be
//!   read against (a 1-CPU container measures parity);
//! * **10⁷ scale** — the bare engine over `SynthTraceConfig::
//!   ten_million`, the first entry at that scale: period-batched shard
//!   cursors and the chunk-preallocated trace loader are what make the
//!   run build and finish without per-invocation allocation.
//!
//! Headline numbers land in `BENCH_sim.json` at the repo root.
//!
//! Smoke mode (`SIM_BENCH_SMOKE=1`, the CI `bench-smoke` job): a
//! pressured tiny-trace run that *asserts* the timeline and the scan
//! produce record-identical runs — sequentially and sharded — and
//! prints timings, without the multi-minute full measurement.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecolife_bench::report::BenchJson;
use ecolife_carbon::{CarbonIntensityTrace, Region};
use ecolife_core::{EcoLife, EcoLifeConfig, FixedPolicy};
use ecolife_hw::{skus, Fleet};
use ecolife_sim::{ExpiryMode, ShardOptions, SimConfig, Simulation};
use ecolife_trace::{SynthTraceConfig, Trace, WorkloadCatalog};
use std::time::Instant;

/// The benchmark's shard fan-out width (and target worker count).
const SHARDS: usize = 8;

/// The workload seed every trace and CI series below derives from.
const SEED: u64 = 41;

fn million_setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig::million(SEED).generate_scaled(&WorkloadCatalog::sebs());
    assert!(trace.len() >= 1_000_000, "only {} invocations", trace.len());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, SEED);
    // Pools sized so the million-invocation run never overflows: the
    // bench measures replay throughput, not eviction churn (the
    // contention path has its own adversarial + property tests).
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(32_000_000);
    (trace, ci, fleet)
}

fn wall_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn scan_config() -> SimConfig {
    SimConfig::default().with_expiry(ExpiryMode::Scan)
}

/// Pressured tiny-trace smoke: timeline ≡ scan asserted, sub-second.
fn smoke() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 60,
        ..SynthTraceConfig::small(7)
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 7);
    // Squeezed pools so expiry interleaves with overflow and transfers.
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(4 * 1024);
    let timeline_sim = Simulation::new(&trace, &ci, fleet.clone());
    let scan_sim = Simulation::new(&trace, &ci, fleet.clone()).with_config(scan_config());

    let mut timeline_metrics = None;
    let timeline_ms = wall_ms(|| {
        timeline_metrics = Some(timeline_sim.run(&mut FixedPolicy::pinned(fleet.newest(), 10)));
    });
    let mut scan_metrics = None;
    let scan_ms = wall_ms(|| {
        scan_metrics = Some(scan_sim.run(&mut FixedPolicy::pinned(fleet.newest(), 10)));
    });
    let (timeline, scan) = (timeline_metrics.unwrap(), scan_metrics.unwrap());
    assert_eq!(
        timeline.records, scan.records,
        "smoke: expiry timeline changed a record"
    );
    assert_eq!(timeline.transfers, scan.transfers);
    assert_eq!(timeline.expiry.expired, scan.expiry.expired);
    assert!(
        scan.expiry.expired > 0,
        "smoke trace never expires anything"
    );

    // Sharded too: the period-batched path must agree mode for mode.
    let sharded_timeline = timeline_sim.run_sharded(
        |_| FixedPolicy::pinned(fleet.newest(), 10),
        &ShardOptions::new(4),
    );
    let sharded_scan = scan_sim.run_sharded(
        |_| FixedPolicy::pinned(fleet.newest(), 10),
        &ShardOptions::new(4),
    );
    assert_eq!(
        sharded_timeline.records, sharded_scan.records,
        "smoke: sharded expiry timeline changed a record"
    );
    println!(
        "smoke ok: {} invocations, {} expiries, timeline {timeline_ms:.0} ms vs scan \
         {scan_ms:.0} ms, records bit-identical (sequential and 4-shard)",
        trace.len(),
        scan.expiry.expired,
    );
}

fn write_json() {
    let (trace, ci, fleet) = million_setup();
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let sim_scan = Simulation::new(&trace, &ci, fleet.clone()).with_config(scan_config());
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = SHARDS.min(host_cpus);

    // Bare engine (fixed 10-minute policy): replay overhead only. The
    // scan number is the seed's expiry path, kept as the baseline the
    // timeline speedup is quoted against.
    let engine_scan_ms = wall_ms(|| {
        let mut s = FixedPolicy::pinned(fleet.newest(), 10);
        black_box(sim_scan.run(&mut s));
    });
    let engine_seq_ms = wall_ms(|| {
        let mut s = FixedPolicy::pinned(fleet.newest(), 10);
        black_box(sim.run(&mut s));
    });
    let engine_sharded_ms = wall_ms(|| {
        black_box(sim.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(SHARDS).with_threads(threads),
        ));
    });

    // Full EcoLife (per-function DPSO per decision): the realistic
    // scheduler-bound hot path the planner's inner loop pays for.
    let eco = || EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let eco_seq_ms = wall_ms(|| {
        let mut s = eco();
        black_box(sim.run(&mut s));
    });
    let eco_sharded_ms = wall_ms(|| {
        black_box(sim.run_sharded(|_| eco(), &ShardOptions::new(SHARDS).with_threads(threads)));
    });

    // The 10⁷ row: bare engine over the ten_million preset — first
    // build the trace through the preallocating loader, then replay.
    let catalog = WorkloadCatalog::sebs();
    let big_config = SynthTraceConfig::ten_million(SEED);
    let mut big = None;
    let ten_m_build_ms = wall_ms(|| big = Some(big_config.generate_scaled(&catalog)));
    let big = big.unwrap();
    assert!(big.len() >= 10_000_000, "only {} invocations", big.len());
    let ci_big = CarbonIntensityTrace::synthetic(Region::Caiso, 1_560, SEED);
    let sim_big = Simulation::new(&big, &ci_big, fleet.clone());
    let ten_m_seq_ms = wall_ms(|| {
        let mut s = FixedPolicy::pinned(fleet.newest(), 10);
        black_box(sim_big.run(&mut s));
    });
    let ten_m_sharded_ms = wall_ms(|| {
        black_box(sim_big.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(SHARDS).with_threads(threads),
        ));
    });

    BenchJson::new("sim_sharded", SEED, trace.len())
        .int("trace_functions", trace.catalog().len() as u64)
        .int("fleet_nodes", fleet.len() as u64)
        .int("shards", SHARDS as u64)
        .int("threads", threads as u64)
        .float("engine_sequential_scan_ms", engine_scan_ms, 0)
        .float("engine_sequential_ms", engine_seq_ms, 0)
        .float(
            "expiry_timeline_speedup",
            engine_scan_ms / engine_seq_ms.max(1.0),
            2,
        )
        .float("engine_sharded_ms", engine_sharded_ms, 0)
        .float(
            "engine_speedup",
            engine_seq_ms / engine_sharded_ms.max(1.0),
            2,
        )
        .float("ecolife_sequential_ms", eco_seq_ms, 0)
        .float("ecolife_sharded_ms", eco_sharded_ms, 0)
        .float("ecolife_speedup", eco_seq_ms / eco_sharded_ms.max(1.0), 2)
        .int("ten_million_invocations", big.len() as u64)
        .float("ten_million_build_ms", ten_m_build_ms, 0)
        .float("engine_ten_million_sequential_ms", ten_m_seq_ms, 0)
        .float("engine_ten_million_sharded_ms", ten_m_sharded_ms, 0)
        .text(
            "note",
            "engine_sequential_scan_ms replays with ExpiryMode::Scan (the seed's O(pool) expiry \
             sweep); engine_sequential_ms is the default min-heap expiry timeline — bit-identical \
             runs (tests/expiry_timeline.rs), so expiry_timeline_speedup is pure mechanism and \
             core-count independent. Shard speedups approach min(shards, cores) and record parity \
             by construction on a 1-CPU host. The ten_million rows replay \
             SynthTraceConfig::ten_million through the preallocating trace loader. All engine rows \
             run with the telemetry NullSink (the default `run` entry points), i.e. they double as \
             the zero-overhead check for the event-stream instrumentation.",
        )
        .write("BENCH_sim.json");
}

fn bench(c: &mut Criterion) {
    let smoke_flag = std::env::var("SIM_BENCH_SMOKE").unwrap_or_default();
    if !smoke_flag.is_empty() && smoke_flag != "0" {
        smoke();
        return;
    }

    write_json();

    // Timed loop on a ~100k-invocation slice of the same distribution so
    // `cargo bench sim_sharded` stays interactive.
    let trace = SynthTraceConfig {
        n_functions: 600,
        duration_min: 600,
        seed: SEED,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, SEED);
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(512 * 1024);
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let sim_scan = Simulation::new(&trace, &ci, fleet.clone()).with_config(scan_config());

    c.bench_function("sim/engine_sequential_100k", |b| {
        b.iter(|| {
            let mut s = FixedPolicy::pinned(fleet.newest(), 10);
            black_box(sim.run(&mut s))
        })
    });
    c.bench_function("sim/engine_sequential_scan_100k", |b| {
        b.iter(|| {
            let mut s = FixedPolicy::pinned(fleet.newest(), 10);
            black_box(sim_scan.run(&mut s))
        })
    });
    c.bench_function("sim/engine_sharded8_100k", |b| {
        b.iter(|| {
            black_box(sim.run_sharded(
                |_| FixedPolicy::pinned(fleet.newest(), 10),
                &ShardOptions::new(SHARDS),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/headline-d30514c96088805b.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-d30514c96088805b: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:

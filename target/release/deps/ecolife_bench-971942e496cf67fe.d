/root/repo/target/release/deps/ecolife_bench-971942e496cf67fe.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ecolife_bench-971942e496cf67fe: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/invariants-928e1acefbd268dc.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-928e1acefbd268dc.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

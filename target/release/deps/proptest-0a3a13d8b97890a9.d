/root/repo/target/release/deps/proptest-0a3a13d8b97890a9.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-0a3a13d8b97890a9.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Genetic Algorithm comparator (Sec. IV-C: "the Genetic Algorithm …
//! with crossover probability of 0.6, mutation probability of 0.01, and
//! population size of 15").
//!
//! Real-valued GA: tournament selection (k=2), uniform crossover with the
//! configured probability, per-gene Gaussian mutation, and elitism of one.

use crate::space::SearchSpace;
use crate::{BatchOptimizer, Optimizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// GA hyper-parameters; defaults match the paper's comparison setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    pub population: usize,
    pub crossover_prob: f64,
    pub mutation_prob: f64,
    /// Gaussian mutation σ as a fraction of each dimension's extent.
    pub mutation_sigma_frac: f64,
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 15,
            crossover_prob: 0.6,
            mutation_prob: 0.01,
            mutation_sigma_frac: 0.1,
            seed: 0x6a_5eed,
        }
    }
}

/// The GA population.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    space: SearchSpace,
    config: GaConfig,
    population: Vec<Vec<f64>>,
    fitnesses: Vec<f64>,
    best_position: Vec<f64>,
    best_fitness: f64,
    rng: SmallRng,
    generations: u64,
}

impl GeneticAlgorithm {
    pub fn new(space: SearchSpace, config: GaConfig) -> Self {
        assert!(config.population >= 2, "population must be ≥2");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let population: Vec<Vec<f64>> = (0..config.population)
            .map(|_| space.sample(&mut rng))
            .collect();
        let best_position = population[0].clone();
        GeneticAlgorithm {
            fitnesses: vec![f64::INFINITY; config.population],
            space,
            config,
            population,
            best_position,
            best_fitness: f64::INFINITY,
            rng,
            generations: 0,
        }
    }

    pub fn generations(&self) -> u64 {
        self.generations
    }

    fn tournament(&mut self) -> usize {
        let a = self.rng.gen_range(0..self.population.len());
        let b = self.rng.gen_range(0..self.population.len());
        if self.fitnesses[a] <= self.fitnesses[b] {
            a
        } else {
            b
        }
    }

    /// Breed the next generation from the recorded fitnesses, keeping the
    /// elite — the movement half of one generation.
    fn breed(&mut self) {
        let dims = self.space.dims();
        let mut next = Vec::with_capacity(self.population.len());
        next.push(self.best_position.clone());
        while next.len() < self.population.len() {
            let pa = self.tournament();
            let pb = self.tournament();
            let mut child = self.population[pa].clone();
            if self.rng.gen::<f64>() < self.config.crossover_prob {
                for (d, gene) in child.iter_mut().enumerate().take(dims) {
                    if self.rng.gen::<bool>() {
                        *gene = self.population[pb][d];
                    }
                }
            }
            for (d, gene) in child.iter_mut().enumerate().take(dims) {
                if self.rng.gen::<f64>() < self.config.mutation_prob {
                    let sigma = self.space.extent(d) * self.config.mutation_sigma_frac;
                    // Box-Muller.
                    let u1: f64 = self.rng.gen_range(1e-12..1.0);
                    let u2: f64 = self.rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    *gene += sigma * z;
                }
            }
            self.space.clamp(&mut child);
            next.push(child);
        }
        self.population = next;
        self.generations += 1;
    }
}

impl BatchOptimizer for GeneticAlgorithm {
    fn ask(&self) -> Vec<Vec<f64>> {
        self.population.clone()
    }

    fn tell(&mut self, fitnesses: &[f64]) {
        assert_eq!(
            fitnesses.len(),
            self.population.len(),
            "tell: got {} fitness values for a population of {}",
            fitnesses.len(),
            self.population.len()
        );
        for (i, &f) in fitnesses.iter().enumerate() {
            self.fitnesses[i] = f;
            if f < self.best_fitness {
                self.best_fitness = f;
                self.best_position.clone_from(&self.population[i]);
            }
        }
        self.breed();
    }
}

impl Optimizer for GeneticAlgorithm {
    fn step<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        // Evaluate.
        for (i, ind) in self.population.iter().enumerate() {
            let f = fitness(ind);
            self.fitnesses[i] = f;
            if f < self.best_fitness {
                self.best_fitness = f;
                self.best_position.clone_from(ind);
            }
        }
        self.breed();
    }

    fn best_position(&self) -> &[f64] {
        &self.best_position
    }

    fn best_fitness(&self) -> f64 {
        self.best_fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn improves_on_sphere() {
        let space = SearchSpace::new(vec![(-10.0, 10.0); 3]);
        let mut ga = GeneticAlgorithm::new(space, GaConfig::default());
        ga.step(&sphere);
        let initial = ga.best_fitness();
        ga.run(&sphere, 100);
        assert!(ga.best_fitness() < initial, "no improvement");
        assert!(ga.best_fitness() < 5.0, "fitness {}", ga.best_fitness());
    }

    #[test]
    fn monotone_best() {
        let space = SearchSpace::new(vec![(-5.0, 5.0); 2]);
        let mut ga = GeneticAlgorithm::new(space, GaConfig::default());
        let mut last = f64::INFINITY;
        for _ in 0..40 {
            ga.step(&sphere);
            assert!(ga.best_fitness() <= last);
            last = ga.best_fitness();
        }
        assert_eq!(ga.generations(), 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = SearchSpace::new(vec![(-5.0, 5.0); 2]);
        let run = |seed| {
            let mut ga = GeneticAlgorithm::new(
                space.clone(),
                GaConfig {
                    seed,
                    ..Default::default()
                },
            );
            ga.run(&sphere, 25)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn children_stay_in_space() {
        let space = SearchSpace::new(vec![(0.0, 1.0), (0.0, 10.0)]);
        let mut ga = GeneticAlgorithm::new(
            space.clone(),
            GaConfig {
                mutation_prob: 0.9, // stress the mutation path
                ..Default::default()
            },
        );
        for _ in 0..30 {
            ga.step(&sphere);
            for ind in &ga.population {
                assert!(space.contains(ind));
            }
        }
    }

    #[test]
    fn ask_tell_is_equivalent_to_step() {
        let space = SearchSpace::new(vec![(-5.0, 5.0); 2]);
        let mut stepped = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let mut batched = GeneticAlgorithm::new(space, GaConfig::default());
        for _ in 0..15 {
            stepped.step(&sphere);
            let batch = batched.ask();
            let fitnesses: Vec<f64> = batch.iter().map(|x| sphere(x)).collect();
            batched.tell(&fitnesses);
        }
        assert_eq!(stepped.best_position(), batched.best_position());
        assert_eq!(stepped.best_fitness(), batched.best_fitness());
        assert_eq!(stepped.generations(), batched.generations());
    }

    #[test]
    fn paper_defaults() {
        let c = GaConfig::default();
        assert_eq!(c.population, 15);
        assert_eq!(c.crossover_prob, 0.6);
        assert_eq!(c.mutation_prob, 0.01);
    }
}

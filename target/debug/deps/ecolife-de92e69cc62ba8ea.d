/root/repo/target/debug/deps/ecolife-de92e69cc62ba8ea.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecolife-de92e69cc62ba8ea.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

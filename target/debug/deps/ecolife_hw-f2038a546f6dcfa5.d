/root/repo/target/debug/deps/ecolife_hw-f2038a546f6dcfa5.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/debug/deps/libecolife_hw-f2038a546f6dcfa5.rlib: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/debug/deps/libecolife_hw-f2038a546f6dcfa5.rmeta: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:

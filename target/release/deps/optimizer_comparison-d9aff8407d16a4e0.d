/root/repo/target/release/deps/optimizer_comparison-d9aff8407d16a4e0.d: crates/bench/benches/optimizer_comparison.rs

/root/repo/target/release/deps/optimizer_comparison-d9aff8407d16a4e0: crates/bench/benches/optimizer_comparison.rs

crates/bench/benches/optimizer_comparison.rs:

//! Capacity planning: which fleet should you buy for this workload?
//!
//! The paper fixes the hardware and optimizes keep-alive; this example
//! runs the question one level up with `ecolife-planner`: search SKU
//! mixes (which SKUs, how many of each) and per-node warm-pool budgets
//! against a workload, with the EcoLife scheduler + simulator as the
//! inner evaluator. A PSO outer search is checked against exhaustive
//! enumeration (riding the same memo cache), then the cached scores are
//! re-weighted across P95 SLO targets to print the exact carbon/latency
//! Pareto frontier: tight SLOs buy newer silicon, relaxed SLOs shrink
//! the fleet onto older, embodied-cheap nodes.
//!
//! Run with: `cargo run --release --example capacity_planning`

use ecolife::prelude::*;

fn main() {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 77,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77);
    println!(
        "workload: {} functions, {} invocations over 2 hours (CISO intensity)",
        trace.catalog().len(),
        trace.len()
    );

    // Shop from the full Table I catalog: up to 2 nodes per SKU, 4 nodes
    // total, warm pools of 4/8/16 GiB per node.
    let space = PlanSpace::new(skus::catalog(), 2, 4, vec![4 * 1024, 8 * 1024, 16 * 1024]);
    let slo_ms = 15_000u64;
    println!(
        "plan space: {} SKUs, ≤2 each, ≤4 nodes, 3 budget choices → {} feasible plans\n",
        space.catalog().len(),
        space.plan_count()
    );

    let planner = Planner::new(
        space.clone(),
        &trace,
        &ci,
        PlannerConfig {
            slo_p95_ms: slo_ms,
            ..PlannerConfig::default()
        },
    );

    // Heuristic search first, then the exact answer over the same memo
    // cache — the exhaustive pass only simulates plans the swarm never
    // visited.
    let pso = planner.search(SearchAlgorithm::Pso, 25);
    println!("{}", pso.describe(&space));
    let exact = planner.search(SearchAlgorithm::Exhaustive, 0);
    println!("{}", exact.describe(&space));
    println!(
        "PSO {} the exhaustive optimum; verification only had to simulate the {} \
         plans the swarm never visited\n",
        if pso.best_plan == exact.best_plan {
            "matches"
        } else {
            "missed"
        },
        exact.simulations - pso.simulations,
    );

    // Every plan is now scored and cached; P95 and carbon are
    // SLO-independent physics, so the whole Pareto frontier falls out of
    // a re-weighting — no further simulation.
    println!("Pareto sweep over the P95 SLO (re-weighted from cached scores):\n");
    println!(
        "{:<10} {:<40} {:>9} {:>9} {:>9} {:>8} {:>6}",
        "SLO ms", "best fleet", "fit g", "carbon g", "slo g", "p95 ms", "warm"
    );
    let scored: Vec<(FleetPlan, PlanScore)> = space
        .enumerate()
        .into_iter()
        .map(|p| {
            let s = planner.evaluator().score(&p);
            (p, s)
        })
        .collect();
    let penalty_g = planner.evaluator().config().slo_penalty_g;
    for slo in [15_000u64, 15_500, 30_000] {
        let (plan, score) = scored
            .iter()
            .map(|(p, s)| (p, s.with_slo(slo, penalty_g)))
            .min_by(|a, b| a.1.fitness_g.partial_cmp(&b.1.fitness_g).unwrap())
            .expect("non-empty space");
        println!(
            "{:<10} {:<40} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>6.2}",
            slo,
            space.describe_plan(plan),
            score.fitness_g,
            score.sim_carbon_g + score.provisioned_embodied_g,
            score.slo_penalty_g,
            score.p95_service_ms,
            score.warm_rate,
        );
    }

    println!(
        "\nReading the sweep: fitness is carbon the plan pays — the simulated\n\
         run, the workload-span slice of each provisioned node's manufacturing\n\
         footprint, and the SLO penalty. The tight SLO forces a newer\n\
         (embodied-expensive) node into the mix; relaxing it lets the planner\n\
         shrink the fleet onto older silicon. The memo cache is what makes the\n\
         swarm affordable: repeat candidates cost a hash lookup, not a\n\
         simulation."
    );
}

/root/repo/target/release/deps/ecolife_hw-6d921a1f0f566d84.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/release/deps/ecolife_hw-6d921a1f0f566d84: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:

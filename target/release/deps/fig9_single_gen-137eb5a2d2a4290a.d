/root/repo/target/release/deps/fig9_single_gen-137eb5a2d2a4290a.d: crates/bench/benches/fig9_single_gen.rs Cargo.toml

/root/repo/target/release/deps/libfig9_single_gen-137eb5a2d2a4290a.rmeta: crates/bench/benches/fig9_single_gen.rs Cargo.toml

crates/bench/benches/fig9_single_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Plan fitness: materialize → replay → score, memoized and parallel.
//!
//! This is the planner's hot path. One fitness evaluation is a full
//! simulation of the workload over the candidate fleet under the
//! existing EcoLife keep-alive policy, so the evaluator
//!
//! * **memoizes** by integer genome — optimizers revisit the same plan
//!   constantly once a swarm contracts, and a revisit must cost a hash
//!   lookup, not a simulation;
//! * **fans batches out** over [`parallel_map`] — one swarm generation
//!   is 15 independent simulations;
//! * stays **deterministic regardless of thread count** — each
//!   candidate's scheduler RNG is seeded from the genome itself (not
//!   from any shared, thread-order-dependent state), and the simulation
//!   is a pure function of (trace, CI, fleet, seed).

use crate::plan::FleetPlan;
use crate::space::PlanSpace;
use ecolife_carbon::{CarbonIntensityTrace, CiBundle};
use ecolife_core::runner::parallel_map;
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::DEFAULT_LIFETIME_MS;
use ecolife_trace::Trace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where candidate simulations read carbon intensity from: one shared
/// series (single-region planning) or a region-keyed bundle resolved per
/// node (multi-region planning over [`PlanSpace::with_regions`]).
enum CiSource<'a> {
    Shared(&'a CarbonIntensityTrace),
    Bundle(&'a CiBundle),
}

/// Fitness of any infeasible plan starts here and grows with the size of
/// the violation, so optimizers roaming outside the caps are graded back
/// toward feasibility instead of hitting a cliff.
pub const INFEASIBLE_PENALTY_G: f64 = 1e12;

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Service-time SLO: the P95 service time (ms) the fleet must hold.
    pub slo_p95_ms: u64,
    /// Grams of CO2e charged per unit of *relative* P95 violation (a
    /// plan at 2× the SLO pays `slo_penalty_g`, at 3× pays twice that).
    pub slo_penalty_g: f64,
    /// Base RNG seed; each candidate derives its own from the genome.
    pub seed: u64,
    /// Independent restarts for the heuristic searches (PSO/GA/SA), best
    /// result wins. Fitness is piecewise-constant over genome cells, so
    /// a single swarm can collapse early; restarts are the standard
    /// fix and nearly free here — every revisited plan is a cache hit.
    pub restarts: u32,
    /// Fan batch evaluations out over threads. Results are identical
    /// either way; serial evaluation exists to prove exactly that (and
    /// for debugging).
    pub parallel: bool,
    /// Shard count for the *inner* simulation of each candidate
    /// (`1` = the sequential engine). Planning against
    /// million-invocation workloads wants `> 1` so every fitness
    /// evaluation fans out over `Simulation::run_sharded`; swarm-sized
    /// plan spaces usually keep `1` and parallelize across candidates
    /// instead (nesting both oversubscribes the cores).
    pub sim_shards: usize,
    /// The inner keep-alive scheduler evaluated on every candidate
    /// fleet (its `seed` field is overridden per candidate).
    pub scheduler: EcoLifeConfig,
    /// Engine knobs for the inner replay of every candidate — the
    /// default keeps the expiry-timeline fast path
    /// ([`ecolife_sim::ExpiryMode::Timeline`]); scores are bit-identical
    /// under the reference scan, only slower.
    pub sim: ecolife_sim::SimConfig,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            slo_p95_ms: 5_000,
            slo_penalty_g: 1_000.0,
            seed: 0x91a_17e5,
            restarts: 4,
            parallel: true,
            sim_shards: 1,
            scheduler: EcoLifeConfig::default(),
            sim: ecolife_sim::SimConfig::default(),
        }
    }
}

/// The scored outcome of simulating one feasible plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanScore {
    /// The scalar the search minimizes:
    /// `sim_carbon_g + provisioned_embodied_g + slo_penalty_g`.
    pub fitness_g: f64,
    /// Total carbon of the simulated run (operational + per-use embodied
    /// attribution, service + keep-alive).
    pub sim_carbon_g: f64,
    /// The workload-span slice of the fleet's full manufacturing
    /// footprint — the cost of *owning* the nodes, paid whether or not
    /// traffic lands on them. This is what keeps the planner from buying
    /// one node per function.
    pub provisioned_embodied_g: f64,
    /// SLO-violation penalty (g); zero when P95 meets the SLO.
    pub slo_penalty_g: f64,
    /// Achieved P95 service time (ms).
    pub p95_service_ms: u64,
    /// Achieved mean service time (ms).
    pub mean_service_ms: f64,
    /// Achieved warm-start rate.
    pub warm_rate: f64,
    /// Provisioned node count.
    pub total_nodes: u32,
    /// Invocations the simulated run actually completed. Zero means the
    /// percentile/mean fields are vacuous (an empty metric set reports
    /// `p95 == 0`), and scoring treats the plan as an SLO violation
    /// instead of SLO-perfect.
    pub invocations: usize,
}

impl PlanScore {
    /// Re-score against a different SLO. P95 and carbon are
    /// SLO-independent physics, so the whole Pareto frontier of a scored
    /// space falls out of this re-weighting without further simulation —
    /// and because [`PlanEvaluator`] itself scores through this method,
    /// a re-weighted score is exactly what an evaluator configured with
    /// `(slo_p95_ms, slo_penalty_g)` would have produced.
    pub fn with_slo(&self, slo_p95_ms: u64, slo_penalty_g: f64) -> PlanScore {
        let slo = if self.invocations == 0 {
            // A starved plan completed nothing: its `p95 == 0` comes
            // from an *empty* metric set, not a fast one. Pretending
            // that meets the SLO would make the do-nothing plan
            // SLO-perfect, so it pays the infeasibility band instead.
            INFEASIBLE_PENALTY_G
        } else {
            slo_penalty_g * (self.p95_service_ms as f64 / slo_p95_ms as f64 - 1.0).max(0.0)
        };
        PlanScore {
            fitness_g: self.sim_carbon_g + self.provisioned_embodied_g + slo,
            slo_penalty_g: slo,
            ..*self
        }
    }
}

/// Memoized, parallel plan evaluator over one (workload, CI) pair.
pub struct PlanEvaluator<'a> {
    space: PlanSpace,
    trace: &'a Trace,
    ci: CiSource<'a>,
    config: PlannerConfig,
    cache: Mutex<HashMap<u64, (FleetPlan, PlanScore)>>,
    simulations: AtomicU64,
    cache_hits: AtomicU64,
}

impl<'a> PlanEvaluator<'a> {
    pub fn new(
        space: PlanSpace,
        trace: &'a Trace,
        ci: &'a CarbonIntensityTrace,
        config: PlannerConfig,
    ) -> Self {
        Self::with_source(space, trace, CiSource::Shared(ci), config)
    }

    /// Multi-region evaluator: candidate fleets deploy nodes into the
    /// space's regions, and each node's simulation reads its own
    /// region's series from `bundle`.
    ///
    /// # Panics
    /// Panics when `bundle` lacks a series for one of the space's
    /// regions or does not cover the workload span — every candidate
    /// simulation would fail identically, so it is a configuration
    /// error, caught up front.
    pub fn new_regional(
        space: PlanSpace,
        trace: &'a Trace,
        bundle: &'a CiBundle,
        config: PlannerConfig,
    ) -> Self {
        for &region in space.regions() {
            assert!(
                bundle.get(region).is_some(),
                "plan space deploys into {region}, which has no CI series in the bundle"
            );
        }
        assert!(
            trace.is_empty() || bundle.len_ms() > trace.horizon_ms(),
            "CI bundle covers {} ms but the workload spans {} ms",
            bundle.len_ms(),
            trace.horizon_ms() + 1
        );
        Self::with_source(space, trace, CiSource::Bundle(bundle), config)
    }

    fn with_source(
        space: PlanSpace,
        trace: &'a Trace,
        ci: CiSource<'a>,
        config: PlannerConfig,
    ) -> Self {
        assert!(config.slo_p95_ms > 0, "SLO must be positive");
        assert!(config.slo_penalty_g >= 0.0);
        PlanEvaluator {
            space,
            trace,
            ci,
            config,
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    pub fn space(&self) -> &PlanSpace {
        &self.space
    }

    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Simulations actually run so far (memo misses).
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Evaluations answered from the memo cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Simulate one feasible plan (no cache involvement). Deterministic:
    /// the inner scheduler's seed is derived from the genome.
    fn simulate(&self, plan: &FleetPlan) -> PlanScore {
        let fleet = self
            .space
            .materialize(plan)
            .expect("simulate() requires a non-empty plan");
        let scheduler_config = EcoLifeConfig {
            seed: self.config.seed ^ plan.genome_key(),
            ..self.config.scheduler.clone()
        };
        // Build the simulation directly (not through the `evaluate*`
        // helpers) so the planner's engine knobs — expiry timeline,
        // setup delay, carbon model — reach every inner replay. Bundle
        // coverage was validated at evaluator construction, so the
        // regional paths cannot fail per candidate.
        let metrics = match (&self.ci, self.config.sim_shards > 1) {
            // Million-invocation workloads: fan the replay itself out
            // over function-hash shards (one EcoLife per shard — its
            // state is per-function, so the shard split is exact; see
            // the determinism suite).
            (CiSource::Shared(ci), true) => {
                ecolife_sim::Simulation::new(self.trace, ci, fleet.clone())
                    .with_config(self.config.sim)
                    .run_sharded(
                        |_| EcoLife::new(fleet.clone(), scheduler_config.clone()),
                        &ecolife_sim::ShardOptions::new(self.config.sim_shards),
                    )
            }
            (CiSource::Shared(ci), false) => {
                let mut scheduler = EcoLife::new(fleet.clone(), scheduler_config);
                ecolife_sim::Simulation::new(self.trace, ci, fleet)
                    .with_config(self.config.sim)
                    .run(&mut scheduler)
            }
            (CiSource::Bundle(bundle), true) => {
                ecolife_sim::Simulation::try_new_regional(self.trace, bundle, fleet.clone())
                    .expect("bundle validated at construction")
                    .with_config(self.config.sim)
                    .run_sharded(
                        |_| EcoLife::new(fleet.clone(), scheduler_config.clone()),
                        &ecolife_sim::ShardOptions::new(self.config.sim_shards),
                    )
            }
            (CiSource::Bundle(bundle), false) => {
                let mut scheduler = EcoLife::new(fleet.clone(), scheduler_config);
                ecolife_sim::Simulation::try_new_regional(self.trace, bundle, fleet)
                    .expect("bundle validated at construction")
                    .with_config(self.config.sim)
                    .run(&mut scheduler)
            }
        };
        self.simulations.fetch_add(1, Ordering::Relaxed);

        let sim_carbon_g = metrics.total_carbon_g();
        let span_ms = self.trace.horizon_ms().max(1);
        let provisioned_embodied_g =
            self.space.provisioned_embodied_g(plan) * (span_ms as f64 / DEFAULT_LIFETIME_MS as f64);
        let physics = PlanScore {
            fitness_g: 0.0, // set by with_slo
            sim_carbon_g,
            provisioned_embodied_g,
            slo_penalty_g: 0.0,
            p95_service_ms: metrics.service_percentile_ms(0.95),
            mean_service_ms: metrics.mean_service_ms(),
            warm_rate: metrics.warm_rate(),
            total_nodes: plan.total_nodes(),
            invocations: metrics.invocations(),
        };
        physics.with_slo(self.config.slo_p95_ms, self.config.slo_penalty_g)
    }

    /// Score a feasible plan, through the cache.
    ///
    /// # Panics
    /// Panics on an infeasible plan; use [`PlanEvaluator::fitness`] when
    /// feasibility is not known.
    pub fn score(&self, plan: &FleetPlan) -> PlanScore {
        assert!(
            self.space.is_feasible(plan),
            "score() requires a feasible plan; got {plan:?}"
        );
        let key = plan.genome_key();
        {
            let cache = self.cache.lock().expect("cache lock");
            if let Some((cached_plan, score)) = cache.get(&key) {
                if cached_plan == plan {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return *score;
                }
            }
        }
        let score = self.simulate(plan);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, (plan.clone(), score));
        score
    }

    /// Fitness of any plan: the score's total for feasible plans, a
    /// graded [`INFEASIBLE_PENALTY_G`] otherwise.
    pub fn fitness(&self, plan: &FleetPlan) -> f64 {
        match self.space.violation(plan) {
            0 => self.score(plan).fitness_g,
            v => INFEASIBLE_PENALTY_G * (1.0 + v as f64),
        }
    }

    /// Fitness of a whole generation. Uncached feasible candidates are
    /// deduplicated and (when `config.parallel`) fanned out over
    /// [`parallel_map`]; the returned vector is aligned with `plans`.
    /// Because each simulation is a pure function of the genome, the
    /// result is byte-identical to the serial path at any thread count.
    pub fn fitness_batch(&self, plans: &[FleetPlan]) -> Vec<f64> {
        if self.config.parallel {
            // Collect the distinct feasible plans the cache cannot answer.
            let mut fresh: Vec<FleetPlan> = Vec::new();
            {
                let cache = self.cache.lock().expect("cache lock");
                let mut seen: Vec<u64> = Vec::new();
                for plan in plans {
                    if self.space.violation(plan) != 0 {
                        continue;
                    }
                    let key = plan.genome_key();
                    if cache.contains_key(&key) || seen.contains(&key) {
                        continue;
                    }
                    seen.push(key);
                    fresh.push(plan.clone());
                }
            }
            let scored = parallel_map(fresh, |plan| {
                let score = self.simulate(&plan);
                (plan, score)
            });
            let mut cache = self.cache.lock().expect("cache lock");
            for (plan, score) in scored {
                cache.insert(plan.genome_key(), (plan, score));
            }
        }
        plans.iter().map(|p| self.fitness(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::Sku;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    fn setup() -> (Trace, CarbonIntensityTrace) {
        let trace = SynthTraceConfig {
            n_functions: 6,
            duration_min: 30,
            ..SynthTraceConfig::small(11)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(300.0, 60);
        (trace, ci)
    }

    fn space() -> PlanSpace {
        PlanSpace::new(vec![Sku::I3Metal, Sku::M5znMetal], 2, 3, vec![4_096])
    }

    fn quick_config() -> PlannerConfig {
        PlannerConfig {
            scheduler: EcoLifeConfig {
                pso_iters: 2,
                ..EcoLifeConfig::default()
            },
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn score_is_deterministic_and_cached() {
        let (trace, ci) = setup();
        let eval = PlanEvaluator::new(space(), &trace, &ci, quick_config());
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 4_096,
        };
        let a = eval.score(&plan);
        let b = eval.score(&plan);
        assert_eq!(a, b);
        assert_eq!(eval.simulations(), 1);
        assert_eq!(eval.cache_hits(), 1);
        assert!(a.fitness_g > 0.0);
        assert!(a.sim_carbon_g > 0.0);
        assert!(a.provisioned_embodied_g > 0.0);
        assert_eq!(a.total_nodes, 2);
    }

    #[test]
    fn fitness_penalizes_infeasible_plans_gradedly() {
        let (trace, ci) = setup();
        let eval = PlanEvaluator::new(space(), &trace, &ci, quick_config());
        let empty = FleetPlan {
            counts: vec![0, 0],
            mem_budget_mib: 4_096,
        };
        let over = FleetPlan {
            counts: vec![2, 2],
            mem_budget_mib: 4_096,
        };
        let way_over = FleetPlan {
            counts: vec![2, 2],
            mem_budget_mib: 4_096,
        };
        assert!(eval.fitness(&empty) >= INFEASIBLE_PENALTY_G);
        assert!(eval.fitness(&over) >= INFEASIBLE_PENALTY_G);
        // One node over the cap penalizes less than the same plan judged
        // against a tighter space (graded, not a cliff).
        let tight = PlanEvaluator::new(
            PlanSpace::new(vec![Sku::I3Metal, Sku::M5znMetal], 2, 2, vec![4_096]),
            &trace,
            &ci,
            quick_config(),
        );
        assert!(tight.fitness(&way_over) > eval.fitness(&over));
        // No simulation was wasted on any of them.
        assert_eq!(eval.simulations(), 0);
    }

    #[test]
    fn batch_matches_serial_and_dedups() {
        let (trace, ci) = setup();
        let plans: Vec<FleetPlan> = space().enumerate();
        let mut doubled = plans.clone();
        doubled.extend(plans.iter().cloned());

        let par = PlanEvaluator::new(space(), &trace, &ci, quick_config());
        let par_f = par.fitness_batch(&doubled);
        // Each distinct plan simulated exactly once despite duplicates.
        assert_eq!(par.simulations(), plans.len() as u64);

        let ser = PlanEvaluator::new(
            space(),
            &trace,
            &ci,
            PlannerConfig {
                parallel: false,
                ..quick_config()
            },
        );
        let ser_f = ser.fitness_batch(&doubled);
        assert_eq!(par_f, ser_f, "parallel and serial fitness diverged");
        assert_eq!(&par_f[..plans.len()], &par_f[plans.len()..]);
    }

    #[test]
    fn sharded_inner_simulation_scores_identically() {
        // Budgets generous enough that warm pools never overflow: the
        // sharded replay is then record-for-record identical to the
        // sequential engine, so the PlanScore — a pure function of the
        // records — must match to the last bit.
        let (trace, ci) = setup();
        let roomy = PlanSpace::new(vec![Sku::I3Metal, Sku::M5znMetal], 2, 3, vec![16 * 1024]);
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 16 * 1024,
        };
        let sequential = PlanEvaluator::new(roomy.clone(), &trace, &ci, quick_config());
        let sharded = PlanEvaluator::new(
            roomy,
            &trace,
            &ci,
            PlannerConfig {
                sim_shards: 2,
                ..quick_config()
            },
        );
        assert_eq!(sequential.score(&plan), sharded.score(&plan));
        assert_eq!(sharded.simulations(), 1);
    }

    #[test]
    fn expiry_timeline_scores_identically_to_the_reference_scan() {
        // The planner's inner loop rides the timeline fast path; a plan's
        // score — a pure function of the replay records — must match the
        // scan reference to the last bit, sequential and sharded.
        let (trace, ci) = setup();
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 4_096,
        };
        for shards in [1usize, 2] {
            let with_expiry = |mode| PlannerConfig {
                sim: ecolife_sim::SimConfig::default().with_expiry(mode),
                sim_shards: shards,
                ..quick_config()
            };
            let timeline = PlanEvaluator::new(
                space(),
                &trace,
                &ci,
                with_expiry(ecolife_sim::ExpiryMode::Timeline),
            );
            let scan = PlanEvaluator::new(
                space(),
                &trace,
                &ci,
                with_expiry(ecolife_sim::ExpiryMode::Scan),
            );
            assert_eq!(
                timeline.score(&plan),
                scan.score(&plan),
                "expiry modes diverged at {shards} inner shards"
            );
        }
    }

    #[test]
    fn malformed_plans_get_penalties_not_panics() {
        let (trace, ci) = setup();
        let eval = PlanEvaluator::new(space(), &trace, &ci, quick_config());
        // Budget off the grid and a counts vector of the wrong length
        // must both land in the penalty band — fitness() is documented
        // to grade *any* plan.
        let off_grid = FleetPlan {
            counts: vec![1, 0],
            mem_budget_mib: 5_000,
        };
        let wrong_len = FleetPlan {
            counts: vec![1],
            mem_budget_mib: 4_096,
        };
        for plan in [&off_grid, &wrong_len] {
            assert!(eval.fitness(plan) >= INFEASIBLE_PENALTY_G, "{plan:?}");
        }
        assert_eq!(eval.fitness_batch(&[off_grid, wrong_len]).len(), 2);
        assert_eq!(eval.simulations(), 0, "malformed plans must not simulate");
    }

    #[test]
    fn starved_metrics_are_an_slo_violation_not_slo_perfection() {
        // Regression: `percentile(&mut [], q)` returns 0, so a plan
        // whose run completes zero invocations used to report
        // `p95_service_ms == 0` and look SLO-perfect. It must pay the
        // infeasibility band instead.
        let empty = Trace::new(WorkloadCatalog::sebs(), vec![]);
        let ci = CarbonIntensityTrace::constant(300.0, 60);
        let eval = PlanEvaluator::new(space(), &empty, &ci, quick_config());
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 4_096,
        };
        let score = eval.score(&plan);
        assert_eq!(score.invocations, 0);
        assert_eq!(score.p95_service_ms, 0, "vacuous p95 (empty metrics)");
        assert!(
            score.slo_penalty_g >= INFEASIBLE_PENALTY_G,
            "starved plan scored as SLO-perfect: {score:?}"
        );
        assert!(eval.fitness(&plan) >= INFEASIBLE_PENALTY_G);
        // A plan that actually serves traffic still beats it trivially.
        let (trace, ci2) = setup();
        let served = PlanEvaluator::new(space(), &trace, &ci2, quick_config());
        assert!(served.fitness(&plan) < eval.fitness(&plan));
    }

    #[test]
    fn regional_planning_prefers_the_cleaner_grid() {
        use ecolife_carbon::{CiBundle, Region};
        // One SKU, one node, two candidate regions with flat synthetic
        // feeds: Florida (~430 g/kWh) vs New York (~215 g/kWh). The
        // embodied cost is identical, so the planner must deploy the
        // node into the cleaner grid.
        let (trace, _) = setup();
        let bundle = CiBundle::synthetic(&[Region::Florida, Region::NewYork], 60, 3).unwrap();
        let space = PlanSpace::new(vec![Sku::M5znMetal], 1, 1, vec![16 * 1024])
            .with_regions(vec![Region::Florida, Region::NewYork]);
        assert_eq!(space.genome_len(), 2);
        let eval = PlanEvaluator::new_regional(space, &trace, &bundle, quick_config());
        let in_florida = FleetPlan {
            counts: vec![1, 0],
            mem_budget_mib: 16 * 1024,
        };
        let in_ny = FleetPlan {
            counts: vec![0, 1],
            mem_budget_mib: 16 * 1024,
        };
        let fla = eval.score(&in_florida);
        let ny = eval.score(&in_ny);
        assert_eq!(fla.provisioned_embodied_g, ny.provisioned_embodied_g);
        assert_eq!(fla.p95_service_ms, ny.p95_service_ms, "same hardware");
        assert!(
            ny.sim_carbon_g < fla.sim_carbon_g,
            "NY {ny:?} not cleaner than FLA {fla:?}"
        );
        assert!(ny.fitness_g < fla.fitness_g);
    }

    #[test]
    #[should_panic(expected = "no CI series in the bundle")]
    fn regional_evaluator_rejects_uncovered_regions() {
        use ecolife_carbon::{CiBundle, Region};
        let (trace, _) = setup();
        let bundle = CiBundle::synthetic(&[Region::Florida], 60, 3).unwrap();
        let space = PlanSpace::new(vec![Sku::M5znMetal], 1, 1, vec![16 * 1024])
            .with_regions(vec![Region::Florida, Region::NewYork]);
        PlanEvaluator::new_regional(space, &trace, &bundle, quick_config());
    }

    #[test]
    fn with_slo_reproduces_the_evaluator_scoring() {
        let (trace, ci) = setup();
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 4_096,
        };
        let base = PlanEvaluator::new(space(), &trace, &ci, quick_config());
        let base_score = base.score(&plan);
        // Re-weighting the base score must equal scoring under an
        // evaluator configured with that SLO directly.
        let strict_cfg = PlannerConfig {
            slo_p95_ms: 1_000,
            slo_penalty_g: 500.0,
            ..quick_config()
        };
        let strict = PlanEvaluator::new(space(), &trace, &ci, strict_cfg);
        assert_eq!(base_score.with_slo(1_000, 500.0), strict.score(&plan));
        // Identity: re-weighting with the evaluator's own SLO is a no-op.
        assert_eq!(
            base_score.with_slo(base.config().slo_p95_ms, base.config().slo_penalty_g),
            base_score
        );
    }

    #[test]
    fn slo_penalty_engages_when_p95_misses() {
        let (trace, ci) = setup();
        let plan = FleetPlan {
            counts: vec![1, 1],
            mem_budget_mib: 4_096,
        };
        let relaxed = PlanEvaluator::new(
            space(),
            &trace,
            &ci,
            PlannerConfig {
                slo_p95_ms: 60_000,
                ..quick_config()
            },
        );
        let relaxed_score = relaxed.score(&plan);
        // An SLO of 1 ms is unmeetable: the penalty must engage and grow
        // the fitness.
        let strict = PlanEvaluator::new(
            space(),
            &trace,
            &ci,
            PlannerConfig {
                slo_p95_ms: 1,
                ..quick_config()
            },
        );
        let strict_score = strict.score(&plan);
        assert_eq!(relaxed_score.slo_penalty_g, 0.0);
        assert!(strict_score.slo_penalty_g > 0.0);
        assert!(strict_score.fitness_g > relaxed_score.fitness_g);
        // The simulated physics are identical; only the scoring differs.
        assert_eq!(strict_score.p95_service_ms, relaxed_score.p95_service_ms);
        assert_eq!(strict_score.sim_carbon_g, relaxed_score.sim_carbon_g);
    }
}

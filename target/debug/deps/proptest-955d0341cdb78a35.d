/root/repo/target/debug/deps/proptest-955d0341cdb78a35.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-955d0341cdb78a35: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

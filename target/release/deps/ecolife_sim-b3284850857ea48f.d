/root/repo/target/release/deps/ecolife_sim-b3284850857ea48f.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/ecolife_sim-b3284850857ea48f: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

/root/repo/target/debug/deps/ecolife-e4b6fc2b8f47d745.d: src/lib.rs

/root/repo/target/debug/deps/ecolife-e4b6fc2b8f47d745: src/lib.rs

src/lib.rs:

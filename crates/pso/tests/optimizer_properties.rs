//! Property tests shared by all three optimizers: respect the search
//! space, never regress the best-so-far, and stay deterministic.

use ecolife_pso::{
    DpsoConfig, DynamicPso, GaConfig, GeneticAlgorithm, Optimizer, Pso, PsoConfig, SaConfig,
    SearchSpace, SimulatedAnnealing,
};
use proptest::prelude::*;

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec((-100.0f64..100.0, 0.1f64..200.0), 1..4)
        .prop_map(|dims| SearchSpace::new(dims.into_iter().map(|(lo, w)| (lo, lo + w)).collect()))
}

fn check_optimizer<O: Optimizer>(opt: &mut O, space: &SearchSpace) -> Result<(), TestCaseError> {
    // A shifted quadratic with its optimum at 30% along each dimension.
    let target: Vec<f64> = space
        .bounds()
        .iter()
        .map(|(lo, hi)| lo + 0.3 * (hi - lo))
        .collect();
    let f = move |x: &[f64]| -> f64 {
        x.iter()
            .zip(&target)
            .map(|(xi, ti)| (xi - ti) * (xi - ti))
            .sum()
    };
    let mut last = f64::INFINITY;
    for _ in 0..25 {
        opt.step(&f);
        prop_assert!(opt.best_fitness() <= last, "best fitness regressed");
        prop_assert!(
            space.contains(opt.best_position()),
            "best position escaped the space"
        );
        last = opt.best_fitness();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pso_respects_space_and_monotonicity(space in space_strategy(), seed in 0u64..1_000) {
        let mut pso = Pso::new(space.clone(), PsoConfig { seed, ..Default::default() });
        check_optimizer(&mut pso, &space)?;
    }

    #[test]
    fn dpso_respects_space_even_with_perception(space in space_strategy(), seed in 0u64..1_000, df in 0.0f64..1.0, dci in 0.0f64..1.0) {
        let cfg = DpsoConfig {
            base: PsoConfig { seed, ..Default::default() },
            ..Default::default()
        };
        let mut dpso = DynamicPso::new(space.clone(), cfg);
        check_optimizer(&mut dpso, &space)?;
        dpso.perceive(df, dci);
        let (w, c) = dpso.weights();
        prop_assert!((0.5..=1.0).contains(&w), "ω out of range: {w}");
        prop_assert!((0.3..=1.0).contains(&c), "c out of range: {c}");
        check_optimizer(&mut dpso, &space)?;
    }

    #[test]
    fn ga_respects_space_and_monotonicity(space in space_strategy(), seed in 0u64..1_000) {
        let mut ga = GeneticAlgorithm::new(space.clone(), GaConfig { seed, ..Default::default() });
        check_optimizer(&mut ga, &space)?;
    }

    #[test]
    fn sa_respects_space_and_monotonicity(space in space_strategy(), seed in 0u64..1_000) {
        let mut sa = SimulatedAnnealing::new(space.clone(), SaConfig { seed, ..Default::default() });
        check_optimizer(&mut sa, &space)?;
    }
}

/root/repo/target/release/deps/ecolife_hw-137d10b48389e787.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/release/deps/libecolife_hw-137d10b48389e787.rlib: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/release/deps/libecolife_hw-137d10b48389e787.rmeta: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:

/root/repo/target/debug/deps/criterion-0e3bc941ede003c8.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0e3bc941ede003c8.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0e3bc941ede003c8.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

/root/repo/target/release/deps/headline-0f573ad84cb8afe1.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/release/deps/libheadline-0f573ad84cb8afe1.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

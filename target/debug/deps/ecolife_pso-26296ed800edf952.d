/root/repo/target/debug/deps/ecolife_pso-26296ed800edf952.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/debug/deps/libecolife_pso-26296ed800edf952.rlib: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/debug/deps/libecolife_pso-26296ed800edf952.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

/root/repo/target/release/deps/fig4_oracle_gap-75fdbb2ab8d7c9f5.d: crates/bench/benches/fig4_oracle_gap.rs

/root/repo/target/release/deps/fig4_oracle_gap-75fdbb2ab8d7c9f5: crates/bench/benches/fig4_oracle_gap.rs

crates/bench/benches/fig4_oracle_gap.rs:

//! A schedulable hardware node: one CPU package plus its DRAM, tagged with
//! the generation it belongs to.

use crate::{CpuModel, DramModel, Region};

/// Which side of a two-generation pair a node belongs to.
///
/// The paper's decision space is two-valued in this dimension
/// (Sec. IV-A: "keep-alive locations l (older-generation hardware or
/// newer-generation hardware)"). The simulator and schedulers have since
/// been generalized to N-node [`Fleet`](crate::Fleet)s keyed by
/// [`NodeId`]; `Generation` remains as (a) the era tag carried by each
/// node for paper-figure labelling and (b) a compatibility alias into the
/// canonical two-node fleet layout, where `Old` is node 0 and `New` is
/// node 1 (see the `From<Generation> for NodeId` impl).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Generation {
    /// Older-generation hardware: lower embodied carbon, slower.
    Old,
    /// Newer-generation hardware: faster, lower operational carbon per
    /// unit of work, higher embodied carbon.
    New,
}

impl Generation {
    /// The other generation of the pair.
    #[inline]
    pub fn other(self) -> Generation {
        match self {
            Generation::Old => Generation::New,
            Generation::New => Generation::Old,
        }
    }

    /// Both generations, old first (indexing matches `HardwarePair`).
    pub const ALL: [Generation; 2] = [Generation::Old, Generation::New];

    /// Stable index for array-backed per-generation state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Generation::Old => 0,
            Generation::New => 1,
        }
    }
}

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Generation::Old => write!(f, "old"),
            Generation::New => write!(f, "new"),
        }
    }
}

/// Identifier of a node inside a fleet: equal to the node's position in
/// [`Fleet`](crate::Fleet) order, so it doubles as an index for
/// array-backed per-node state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Stable index for array-backed per-node state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The compatibility bridge from the paper's two-generation vocabulary
/// into the canonical two-node fleet layout produced by
/// `Fleet::from(HardwarePair)`: `Old` is node 0, `New` is node 1.
///
/// The conversion is positional, so it is only meaningful on fleets
/// that follow the canonical layout; on other fleets, compare against
/// the node's own `generation` tag instead. No `PartialEq<Generation>`
/// sugar is provided for exactly that reason — an equality that ignored
/// a fleet's actual tags would silently match the wrong node.
impl From<Generation> for NodeId {
    #[inline]
    fn from(generation: Generation) -> NodeId {
        NodeId(generation.index() as u32)
    }
}

/// One bare-metal node (CPU + DRAM) from a given generation.
///
/// `keepalive_mem_mib` bounds the warm pool hosted on this node — the paper
/// varies this independently of the physical DRAM size in the Fig. 11
/// memory-pressure study ("old/new" GiB combinations), so it is a separate
/// knob rather than `dram.capacity_mib`.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareNode {
    pub id: NodeId,
    pub generation: Generation,
    pub cpu: CpuModel,
    pub dram: DramModel,
    /// The grid region this node is deployed in: its executions and
    /// keep-alives burn that grid's carbon intensity. Defaults to the
    /// paper's CISO region; multi-region fleets tag nodes via
    /// [`HardwareNode::with_region`].
    pub region: Region,
    /// Memory budget available for keeping functions warm (MiB).
    pub keepalive_mem_mib: u64,
    /// Embodied-carbon amortization horizon (ms); defaults to 4 years.
    pub lifetime_ms: u64,
}

impl HardwareNode {
    /// Build a node with the default four-year lifetime and the full DRAM
    /// capacity available for keep-alive.
    pub fn new(id: NodeId, generation: Generation, cpu: CpuModel, dram: DramModel) -> Self {
        let keepalive_mem_mib = dram.capacity_mib;
        HardwareNode {
            id,
            generation,
            cpu,
            dram,
            region: Region::Caiso,
            keepalive_mem_mib,
            lifetime_ms: crate::DEFAULT_LIFETIME_MS,
        }
    }

    /// Restrict the warm-pool budget (used by the Fig. 11 sweep).
    pub fn with_keepalive_budget_mib(mut self, mib: u64) -> Self {
        self.keepalive_mem_mib = mib;
        self
    }

    /// Deploy the node in `region` (its CI series is resolved per node
    /// at simulation time).
    pub fn with_region(mut self, region: Region) -> Self {
        self.region = region;
        self
    }

    /// Override the amortization lifetime (used by sensitivity studies).
    pub fn with_lifetime_ms(mut self, lifetime_ms: u64) -> Self {
        self.lifetime_ms = lifetime_ms;
        self
    }

    /// Hardware age gap in years relative to another node.
    pub fn year_gap(&self, other: &HardwareNode) -> i32 {
        self.cpu.year as i32 - other.cpu.year as i32
    }

    /// Concurrency limit of this node's bounded executor (see
    /// [`CpuModel::executor_slots`]): invocations beyond this many
    /// simultaneous executions queue.
    #[inline]
    pub fn executor_slots(&self) -> usize {
        self.cpu.executor_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skus;

    #[test]
    fn generation_other_is_involutive() {
        assert_eq!(Generation::Old.other(), Generation::New);
        assert_eq!(Generation::New.other(), Generation::Old);
        for g in Generation::ALL {
            assert_eq!(g.other().other(), g);
        }
    }

    #[test]
    fn generation_indices_are_distinct_and_stable() {
        assert_eq!(Generation::Old.index(), 0);
        assert_eq!(Generation::New.index(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Generation::Old.to_string(), "old");
        assert_eq!(Generation::New.to_string(), "new");
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn generation_maps_to_canonical_pair_slots() {
        assert_eq!(NodeId::from(Generation::Old), NodeId(0));
        assert_eq!(NodeId::from(Generation::New), NodeId(1));
        assert_eq!(NodeId(0).index(), 0);
    }

    #[test]
    fn new_node_defaults_keepalive_budget_to_dram_capacity() {
        let n = HardwareNode::new(
            NodeId(0),
            Generation::Old,
            skus::xeon_e5_2686(),
            skus::micron_512(),
        );
        assert_eq!(n.keepalive_mem_mib, n.dram.capacity_mib);
        assert_eq!(n.lifetime_ms, crate::DEFAULT_LIFETIME_MS);
        // The paper's default deployment region.
        assert_eq!(n.region, Region::Caiso);
    }

    #[test]
    fn with_region_tags_the_node() {
        let n = HardwareNode::new(
            NodeId(0),
            Generation::Old,
            skus::xeon_e5_2686(),
            skus::micron_512(),
        )
        .with_region(Region::Texas);
        assert_eq!(n.region, Region::Texas);
    }

    #[test]
    fn budget_and_lifetime_builders() {
        let n = HardwareNode::new(
            NodeId(1),
            Generation::New,
            skus::xeon_platinum_8252c(),
            skus::samsung_192(),
        )
        .with_keepalive_budget_mib(15 * 1024)
        .with_lifetime_ms(1_000);
        assert_eq!(n.keepalive_mem_mib, 15 * 1024);
        assert_eq!(n.lifetime_ms, 1_000);
    }

    #[test]
    fn year_gap_signed() {
        let old = HardwareNode::new(
            NodeId(0),
            Generation::Old,
            skus::xeon_e5_2686(),
            skus::micron_512(),
        );
        let new = HardwareNode::new(
            NodeId(1),
            Generation::New,
            skus::xeon_platinum_8252c(),
            skus::samsung_192(),
        );
        assert_eq!(new.year_gap(&old), 4);
        assert_eq!(old.year_gap(&new), -4);
    }
}

//! Hand-rolled flat JSON for event lines: a writer that serializes every
//! event the same way on every platform, and a field extractor for the
//! controlled format the writer emits.
//!
//! Floats are written with Rust's shortest-roundtrip `Display` — the
//! minimal decimal string that parses back to the identical bits — so a
//! line (and therefore the hash chain over it) is a bit-exact encoding
//! of the run, stable across platforms. Scientific notation never
//! appears (`Display` for `f64` does not produce it), and non-finite
//! values are a bug upstream (debug-asserted).

use crate::event::Event;

/// Append `"key":value` (with a leading comma) for a u64.
fn push_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_i64(out: &mut String, key: &str, v: i64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_bool(out: &mut String, key: &str, v: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
}

/// Append a float in shortest-roundtrip form: `v.to_string()` produces
/// the fewest digits that parse back bit-exactly (and never scientific
/// notation), which is what makes hash chains platform-stable.
fn push_f64(out: &mut String, key: &str, v: f64) {
    debug_assert!(v.is_finite(), "non-finite {key} in event stream: {v}");
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

/// Append a string value. Event strings (region labels, causes, type
/// names) are controlled ASCII, but escape defensively anyway.
fn push_str(out: &mut String, key: &str, v: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the event's payload fields (everything after the `"type"`
/// tag) onto `out`, each with its leading comma.
pub fn write_payload(event: &Event, out: &mut String) {
    match event {
        Event::RunStarted {
            invocations,
            functions,
            nodes,
            horizon_ms,
        } => {
            push_u64(out, "invocations", *invocations);
            push_u64(out, "functions", *functions);
            push_u64(out, "nodes", *nodes);
            push_u64(out, "horizon_ms", *horizon_ms);
        }
        Event::PeriodStarted { minute } | Event::PeriodEnded { minute } => {
            push_u64(out, "minute", *minute);
        }
        Event::CiObserved {
            region,
            t_ms,
            gco2_per_kwh,
        } => {
            push_str(out, "region", region);
            push_u64(out, "t_ms", *t_ms);
            push_f64(out, "gco2_per_kwh", *gco2_per_kwh);
        }
        Event::DecisionMade {
            index,
            func,
            t_ms,
            exec_node,
            warm,
            ka_node,
            ka_ms,
        } => {
            push_u64(out, "index", *index);
            push_u64(out, "func", *func as u64);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "exec_node", *exec_node as u64);
            push_bool(out, "warm", *warm);
            push_i64(out, "ka_node", *ka_node);
            push_u64(out, "ka_ms", *ka_ms);
        }
        Event::ColdStarted {
            index,
            func,
            node,
            t_ms,
            service_ms,
            service_g,
            energy_kwh,
        }
        | Event::WarmHit {
            index,
            func,
            node,
            t_ms,
            service_ms,
            service_g,
            energy_kwh,
        } => {
            push_u64(out, "index", *index);
            push_u64(out, "func", *func as u64);
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "service_ms", *service_ms);
            push_f64(out, "service_g", *service_g);
            push_f64(out, "energy_kwh", *energy_kwh);
        }
        Event::Expired {
            node,
            func,
            since_ms,
            expiry_ms,
            keepalive_g,
            energy_kwh,
        } => {
            push_u64(out, "node", *node as u64);
            push_u64(out, "func", *func as u64);
            push_u64(out, "since_ms", *since_ms);
            push_u64(out, "expiry_ms", *expiry_ms);
            push_f64(out, "keepalive_g", *keepalive_g);
            push_f64(out, "energy_kwh", *energy_kwh);
        }
        Event::Released {
            cause,
            node,
            func,
            since_ms,
            end_ms,
            keepalive_g,
            energy_kwh,
        } => {
            push_str(out, "cause", cause.as_str());
            push_u64(out, "node", *node as u64);
            push_u64(out, "func", *func as u64);
            push_u64(out, "since_ms", *since_ms);
            push_u64(out, "end_ms", *end_ms);
            push_f64(out, "keepalive_g", *keepalive_g);
            push_f64(out, "energy_kwh", *energy_kwh);
        }
        Event::Transferred {
            func,
            from,
            to,
            t_ms,
            egress_g,
            latency_ms,
        } => {
            push_u64(out, "func", *func as u64);
            push_u64(out, "from", *from as u64);
            push_u64(out, "to", *to as u64);
            push_u64(out, "t_ms", *t_ms);
            push_f64(out, "egress_g", *egress_g);
            push_u64(out, "latency_ms", *latency_ms);
        }
        Event::MembershipChanged { node, t_ms, joined } => {
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
            push_bool(out, "joined", *joined);
        }
        Event::Revoked {
            node,
            func,
            t_ms,
            keepalive_g,
            energy_kwh,
        } => {
            push_u64(out, "node", *node as u64);
            push_u64(out, "func", *func as u64);
            push_u64(out, "t_ms", *t_ms);
            push_f64(out, "keepalive_g", *keepalive_g);
            push_f64(out, "energy_kwh", *energy_kwh);
        }
        Event::Enqueued {
            index,
            func,
            node,
            t_ms,
            depth,
        }
        | Event::AdmissionRejected {
            index,
            func,
            node,
            t_ms,
            depth,
        } => {
            push_u64(out, "index", *index);
            push_u64(out, "func", *func as u64);
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "depth", *depth as u64);
        }
        Event::Dequeued {
            index,
            func,
            node,
            start_ms,
            queue_ms,
        } => {
            push_u64(out, "index", *index);
            push_u64(out, "func", *func as u64);
            push_u64(out, "node", *node as u64);
            push_u64(out, "start_ms", *start_ms);
            push_u64(out, "queue_ms", *queue_ms);
        }
        Event::NodeCrashed {
            node,
            t_ms,
            recover_ms,
        } => {
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "recover_ms", *recover_ms);
        }
        Event::NodeRecovered { node, t_ms } => {
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
        }
        Event::CiStale {
            region,
            t_ms,
            until_ms,
        } => {
            push_str(out, "region", region);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "until_ms", *until_ms);
        }
        Event::CiRestored { region, t_ms } => {
            push_str(out, "region", region);
            push_u64(out, "t_ms", *t_ms);
        }
        Event::PartitionStarted {
            regions,
            t_ms,
            until_ms,
        } => {
            push_str(out, "regions", regions);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "until_ms", *until_ms);
        }
        Event::PartitionHealed { regions, t_ms } => {
            push_str(out, "regions", regions);
            push_u64(out, "t_ms", *t_ms);
        }
        Event::TransferRetried {
            func,
            node,
            t_ms,
            attempt,
            backoff_ms,
        } => {
            push_u64(out, "func", *func as u64);
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
            push_u64(out, "attempt", *attempt as u64);
            push_u64(out, "backoff_ms", *backoff_ms);
        }
        Event::CrashRejected {
            index,
            func,
            node,
            t_ms,
        } => {
            push_u64(out, "index", *index);
            push_u64(out, "func", *func as u64);
            push_u64(out, "node", *node as u64);
            push_u64(out, "t_ms", *t_ms);
        }
        Event::RunEnded {
            invocations,
            transfers,
            evictions,
            revocations,
            expired,
        } => {
            push_u64(out, "invocations", *invocations);
            push_u64(out, "transfers", *transfers);
            push_u64(out, "evictions", *evictions);
            push_u64(out, "revocations", *revocations);
            push_u64(out, "expired", *expired);
        }
    }
}

/// Extract the raw value slice of `key` from a flat event line:
/// `field(line, "func")` on `…,"func":17,…` yields `17`; string values
/// keep their quotes (strip with [`str_field`]). Safe on the writer's
/// output because values never contain `,"` (strings are controlled
/// labels/hex, numbers have no commas); this is a field *extractor* for
/// the one format the sink writes, not a JSON parser.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(",\"").unwrap_or_else(|| {
        // Last field: drop the closing brace.
        rest.len().saturating_sub(1)
    });
    Some(&rest[..end])
}

/// [`field`] with string quotes stripped.
pub fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field(line, key)?;
    raw.strip_prefix('"').and_then(|r| r.strip_suffix('"'))
}

/// [`field`] parsed as u64.
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReleaseCause;

    #[test]
    fn payload_is_flat_and_extractable() {
        let ev = Event::Released {
            cause: ReleaseCause::Displaced,
            node: 3,
            func: 17,
            since_ms: 61_000,
            end_ms: 64_500,
            keepalive_g: 0.1,
            energy_kwh: 2.5e-7,
        };
        let mut line = String::from("{\"seq\":9,\"prev\":\"aa\",\"type\":\"Released\"");
        write_payload(&ev, &mut line);
        line.push('}');
        assert_eq!(str_field(&line, "cause"), Some("displaced"));
        assert_eq!(u64_field(&line, "node"), Some(3));
        assert_eq!(u64_field(&line, "func"), Some(17));
        assert_eq!(u64_field(&line, "end_ms"), Some(64_500));
        // Last field: extractor must stop at the closing brace.
        let kwh: f64 = field(&line, "energy_kwh").unwrap().parse().unwrap();
        assert_eq!(kwh.to_bits(), 2.5e-7f64.to_bits());
    }

    /// Shortest-roundtrip: every finite f64 serialized by the sink
    /// parses back to the identical bits. Random bit patterns from a
    /// local xorshift (the telemetry crate has no rand dependency).
    #[test]
    fn f64_round_trips_bit_exactly() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut checked = 0u32;
        while checked < 4_000 {
            let bits = step();
            let v = f64::from_bits(bits);
            if !v.is_finite() {
                continue;
            }
            let s = v.to_string();
            assert!(
                !s.contains(['e', 'E']),
                "scientific notation would change the contract: {s}"
            );
            let back: f64 = s.parse().unwrap();
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "{v} serialized as {s} parsed back to {back}"
            );
            checked += 1;
        }
        // And the awkward fixed points.
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX, 2.5e-7] {
            let back: f64 = v.to_string().parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}

//! §VI-C robustness — embodied-carbon estimation flexibility.
//!
//! Two studies:
//!
//! 1. Scale every embodied term by ±10% (the paper's "estimation
//!    flexibility range"): EcoLife must stay within ~7% (carbon) and
//!    ~10% (service) of the Oracle at every scale.
//! 2. Include platform components (storage, motherboard, PSU): the paper
//!    reports EcoLife within 5.63% (carbon) and 8.2% (service) of the
//!    Oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_carbon::{CarbonModel, CarbonModelConfig};
use ecolife_core::{compare, runner::run_scheme_with, BruteForce, EcoLife, EcoLifeConfig};
use ecolife_sim::SimConfig;
use std::hint::black_box;

fn run_with_model(setup: &EvalSetup, model: CarbonModel) -> (f64, f64) {
    let sim_cfg = SimConfig {
        carbon_model: model,
        ..SimConfig::default()
    };
    let mut eco = EcoLife::with_carbon_model(setup.fleet.clone(), EcoLifeConfig::default(), model);
    let (eco_sum, _) = run_scheme_with(&setup.trace, &setup.ci, &setup.fleet, &mut eco, sim_cfg);
    let mut oracle =
        BruteForce::oracle(setup.fleet.clone(), setup.ci.clone()).with_carbon_model(model);
    let (oracle_sum, _) =
        run_scheme_with(&setup.trace, &setup.ci, &setup.fleet, &mut oracle, sim_cfg);
    let c = compare(&eco_sum, &oracle_sum, &oracle_sum);
    (c.service_increase_pct, c.carbon_increase_pct)
}

fn print_robustness() {
    let setup = EvalSetup::standard();
    println!("\n=== §VI-C: embodied-carbon estimation robustness ===");
    println!(
        "{:<28} {:>16} {:>16}",
        "model", "svc vs Oracle", "CO2 vs Oracle"
    );
    for scale in [0.9, 1.0, 1.1] {
        let model = CarbonModel::new(CarbonModelConfig {
            embodied_scale: scale,
            include_platform_components: false,
        });
        let (svc, co2) = run_with_model(&setup, model);
        println!(
            "{:<28} {:>15.1}% {:>15.1}%",
            format!("embodied x{scale:.1}"),
            svc,
            co2
        );
    }
    let model = CarbonModel::new(CarbonModelConfig {
        embodied_scale: 1.0,
        include_platform_components: true,
    });
    let (svc, co2) = run_with_model(&setup, model);
    println!(
        "{:<28} {:>15.1}% {:>15.1}%  (paper: 8.2% / 5.63%)",
        "+ platform components", svc, co2
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_robustness();
    let setup = EvalSetup::quick();
    let model = CarbonModel::new(CarbonModelConfig {
        embodied_scale: 1.1,
        include_platform_components: true,
    });
    c.bench_function("robustness/scaled_model_quick", |b| {
        b.iter(|| black_box(run_with_model(&setup, model)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Thread-pool fan-out for independent jobs.
//!
//! This lives in `ecolife-sim` (the lowest crate that fans work out) so
//! both the sharded replay engine and the experiment/planner layers above
//! share one implementation; `ecolife_core::runner` re-exports it for the
//! original callers.

/// Fan independent jobs out over scoped worker threads and collect
/// results in input order, using [`std::thread::available_parallelism`]
/// workers. See [`parallel_map_threads`] for the explicit-thread-count
/// variant (determinism tests force `threads ∈ {1, 2, 4, …}` through it).
///
/// At most `available_parallelism` workers are spawned — a sweep of
/// hundreds of configurations never spawns one OS thread per job — and
/// they pull from a shared queue, so a few expensive configurations
/// cannot serialize behind each other while the other workers idle. The
/// per-job lock cost is irrelevant next to a simulation run.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(default_threads(), inputs, f)
}

/// The thread count [`parallel_map`] inherits when none is forced.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// [`parallel_map`] with an explicit worker-thread override.
///
/// Results are identical at any `threads` value (workers only decide
/// *where* a job runs, never *what* it computes), which is exactly what
/// the determinism suite asserts by forcing 1, 2, and 4 workers over the
/// same inputs instead of inheriting the machine's parallelism.
pub fn parallel_map_threads<T, R, F>(threads: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);

    let queue = std::sync::Mutex::new(inputs.into_iter().enumerate());
    let done = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").next();
                let Some((index, input)) = job else { break };
                let result = f(input);
                done.lock().expect("results lock").push((index, result));
            });
        }
    });

    let mut done = done.into_inner().expect("workers joined");
    done.sort_unstable_by_key(|(index, _)| *index);
    done.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |i: i32| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_oversized_batches() {
        assert_eq!(parallel_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        // Far more jobs than cores: with one-thread-per-job this would
        // spawn 2048 OS threads; chunking bounds it at the worker count.
        let n = 2048u64;
        let out = parallel_map((0..n).collect(), |i: u64| i + 1);
        assert_eq!(out.len(), n as usize);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn forced_thread_counts_agree() {
        let inputs: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = inputs.iter().map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 4, 16] {
            let out = parallel_map_threads(threads, inputs.clone(), |i| i * 7 + 1);
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        parallel_map_threads(0, vec![1], |i: i32| i);
    }
}

/root/repo/target/release/deps/ecolife_trace-51f7a81646440126.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libecolife_trace-51f7a81646440126.rlib: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libecolife_trace-51f7a81646440126.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

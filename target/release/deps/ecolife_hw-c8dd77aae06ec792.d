/root/repo/target/release/deps/ecolife_hw-c8dd77aae06ec792.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs Cargo.toml

/root/repo/target/release/deps/libecolife_hw-c8dd77aae06ec792.rmeta: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

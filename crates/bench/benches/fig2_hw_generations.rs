//! Fig. 2 — service time and carbon footprint per hardware generation
//! (A_OLD / A_NEW / C_OLD / C_NEW) with a fixed 10-minute keep-alive.
//!
//! Paper shape: older hardware lowers the total carbon of a keep-alive
//! episode (A_OLD saves ≈23.8% vs A_NEW for video-processing) at a
//! service-time cost (+15.9% execution for video-processing); for
//! low-sensitivity functions (Graph-BFS on pair C) the performance
//! penalty nearly vanishes while carbon savings remain.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_carbon::CarbonModel;
use ecolife_hw::{skus, HardwareNode, PerfModel};
use ecolife_trace::{FunctionProfile, WorkloadCatalog};
use std::hint::black_box;

const CI: f64 = 300.0;
const KEEPALIVE_MS: u64 = 10 * 60_000;
const FUNCS: [&str; 3] = [
    "220.video-processing",
    "503.graph-bfs",
    "504.dna-visualization",
];

fn episode(node: &HardwareNode, f: &FunctionProfile) -> (u64, f64, f64) {
    let model = CarbonModel::default();
    let service_ms =
        PerfModel::cold_service_ms(node, f.base_exec_ms, f.base_cold_ms, f.cpu_sensitivity);
    let service_g = model
        .active_phase(node, f.memory_mib, service_ms, CI)
        .total_g();
    let ka_g = model
        .keepalive_phase(node, f.memory_mib, KEEPALIVE_MS, CI)
        .total_g();
    (service_ms, service_g, ka_g)
}

fn print_fig2() {
    let catalog = WorkloadCatalog::sebs();
    let pa = skus::pair_a();
    let pc = skus::pair_c();
    let nodes = [
        ("A_old", &pa.old),
        ("A_new", &pa.new),
        ("C_old", &pc.old),
        ("C_new", &pc.new),
    ];
    println!("\n=== Fig. 2: per-generation service time & CO2 (10-min keep-alive, CI = {CI}) ===");
    println!(
        "{:<24} {:<6} {:>12} {:>12} {:>12} {:>10}",
        "function", "node", "service ms", "service g", "keepalive g", "total g"
    );
    for name in FUNCS {
        let (_, f) = catalog.by_name(name).unwrap();
        for (label, node) in nodes {
            let (ms, sg, kg) = episode(node, f);
            println!(
                "{:<24} {:<6} {:>12} {:>12.4} {:>12.4} {:>10.4}",
                name,
                label,
                ms,
                sg,
                kg,
                sg + kg
            );
        }
        // The headline deltas the paper quotes for pair A.
        let (ms_old, sg_old, kg_old) = episode(&pa.old, f);
        let (ms_new, sg_new, kg_new) = episode(&pa.new, f);
        let carbon_saving = 100.0 * (1.0 - (sg_old + kg_old) / (sg_new + kg_new));
        let time_penalty = 100.0 * (ms_old as f64 / ms_new as f64 - 1.0);
        println!(
            "  -> A_old vs A_new: carbon saving {carbon_saving:+.1}%, service-time penalty {time_penalty:+.1}%"
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let catalog = WorkloadCatalog::sebs();
    let (_, f) = catalog.by_name("220.video-processing").unwrap();
    let f = f.clone();
    let node = skus::pair_a().old;
    c.bench_function("fig2/episode_eval", |b| {
        b.iter(|| black_box(episode(&node, &f)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

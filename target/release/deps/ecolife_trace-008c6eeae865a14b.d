/root/repo/target/release/deps/ecolife_trace-008c6eeae865a14b.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libecolife_trace-008c6eeae865a14b.rlib: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/libecolife_trace-008c6eeae865a14b.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

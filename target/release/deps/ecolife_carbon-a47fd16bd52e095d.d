/root/repo/target/release/deps/ecolife_carbon-a47fd16bd52e095d.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

/root/repo/target/release/deps/libecolife_carbon-a47fd16bd52e095d.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_core-5aa01e12b4c00163.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs

/root/repo/target/release/deps/ecolife_core-5aa01e12b4c00163: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/fixed.rs crates/core/src/baselines/oracle.rs crates/core/src/config.rs crates/core/src/ecolife.rs crates/core/src/objective.rs crates/core/src/predictor.rs crates/core/src/report.rs crates/core/src/runner.rs crates/core/src/warmpool.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/fixed.rs:
crates/core/src/baselines/oracle.rs:
crates/core/src/config.rs:
crates/core/src/ecolife.rs:
crates/core/src/objective.rs:
crates/core/src/predictor.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
crates/core/src/warmpool.rs:

//! A memory-bounded warm pool: the set of containers kept alive on one
//! generation's node.

use crate::container::WarmContainer;
use ecolife_trace::FunctionId;
use std::collections::HashMap;

/// Warm pool with a hard memory budget. At most one container per
/// function per pool (re-keep-alive replaces the entry).
///
/// In a sharded run several pools share one physical node: each shard
/// owns a pool, and the engine charges the *other* shards' bytes against
/// this pool's budget through [`WarmPool::set_external_used_mib`] (a
/// start-of-period ledger snapshot). The external share counts toward
/// admission ([`WarmPool::fits`]) but is never mutated by this pool's
/// own inserts/removals. Sequential runs leave it at zero.
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    capacity_mib: u64,
    used_mib: u64,
    /// Bytes held on the same node by other shards' pools (MiB),
    /// refreshed from the memory ledger at each reconciliation.
    external_used_mib: u64,
    containers: HashMap<FunctionId, WarmContainer>,
}

impl WarmPool {
    pub fn new(capacity_mib: u64) -> Self {
        WarmPool {
            capacity_mib,
            used_mib: 0,
            external_used_mib: 0,
            containers: HashMap::new(),
        }
    }

    #[inline]
    pub fn capacity_mib(&self) -> u64 {
        self.capacity_mib
    }

    #[inline]
    pub fn used_mib(&self) -> u64 {
        self.used_mib
    }

    /// Other shards' bytes currently charged against this node's budget.
    #[inline]
    pub fn external_used_mib(&self) -> u64 {
        self.external_used_mib
    }

    /// Refresh the cross-shard pressure (ledger snapshot) this pool's
    /// admission decisions must respect.
    #[inline]
    pub fn set_external_used_mib(&mut self, mib: u64) {
        self.external_used_mib = mib;
    }

    #[inline]
    pub fn free_mib(&self) -> u64 {
        self.capacity_mib
            .saturating_sub(self.used_mib + self.external_used_mib)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Whether `container` fits right now (accounting for an existing
    /// entry of the same function that would be replaced, and for the
    /// other shards' external share of the node).
    pub fn fits(&self, container: &WarmContainer) -> bool {
        let reclaimed = self
            .containers
            .get(&container.func)
            .map(|c| c.memory_mib)
            .unwrap_or(0);
        self.used_mib - reclaimed + self.external_used_mib + container.memory_mib
            <= self.capacity_mib
    }

    /// Insert a container. Returns the replaced entry for the same
    /// function, if any.
    ///
    /// # Errors
    /// Returns `Err(container)` without mutating when it does not fit.
    pub fn insert(
        &mut self,
        container: WarmContainer,
    ) -> Result<Option<WarmContainer>, WarmContainer> {
        if !self.fits(&container) {
            return Err(container);
        }
        let old = self.containers.insert(container.func, container);
        if let Some(ref o) = old {
            self.used_mib -= o.memory_mib;
        }
        self.used_mib += container.memory_mib;
        Ok(old)
    }

    /// Remove and return the container for `func`.
    pub fn remove(&mut self, func: FunctionId) -> Option<WarmContainer> {
        let c = self.containers.remove(&func);
        if let Some(ref c) = c {
            self.used_mib -= c.memory_mib;
        }
        c
    }

    /// Container for `func`, if resident.
    pub fn get(&self, func: FunctionId) -> Option<&WarmContainer> {
        self.containers.get(&func)
    }

    /// Remove every container with `expiry_ms <= t_ms`, returning them
    /// in `FunctionId` order so the engine can settle their carbon.
    /// The order matters: settlement accumulates floats into per-node
    /// gram totals, and HashMap iteration order varies per instance —
    /// sorting here is what makes those sums bit-reproducible run to
    /// run (the determinism suite compares them exactly).
    pub fn expire_until(&mut self, t_ms: u64) -> Vec<WarmContainer> {
        let mut expired: Vec<FunctionId> = self
            .containers
            .values()
            .filter(|c| c.expiry_ms <= t_ms)
            .map(|c| c.func)
            .collect();
        expired.sort_unstable();
        expired.into_iter().filter_map(|f| self.remove(f)).collect()
    }

    /// Drain every container (end-of-run settlement), in `FunctionId`
    /// order for the same bit-reproducibility reason as
    /// [`WarmPool::expire_until`].
    pub fn drain_all(&mut self) -> Vec<WarmContainer> {
        self.used_mib = 0;
        let mut drained: Vec<WarmContainer> = self.containers.drain().map(|(_, c)| c).collect();
        drained.sort_unstable_by_key(|c| c.func);
        drained
    }

    /// Iterate resident containers (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &WarmContainer> {
        self.containers.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(f: u32, mem: u64, since: u64, expiry: u64) -> WarmContainer {
        WarmContainer {
            func: FunctionId(f),
            memory_mib: mem,
            warm_since_ms: since,
            expiry_ms: expiry,
            origin_record: 0,
        }
    }

    #[test]
    fn insert_tracks_memory() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 400, 0, 100)).unwrap();
        p.insert(c(1, 500, 0, 100)).unwrap();
        assert_eq!(p.used_mib(), 900);
        assert_eq!(p.free_mib(), 100);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn insert_rejects_over_capacity_without_mutation() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 800, 0, 100)).unwrap();
        let rejected = p.insert(c(1, 300, 0, 100));
        assert!(rejected.is_err());
        assert_eq!(p.used_mib(), 800);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn replacing_same_function_reclaims_memory() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 800, 0, 100)).unwrap();
        // Same function, smaller footprint: must fit via reclaim.
        let old = p.insert(c(0, 600, 10, 200)).unwrap();
        assert_eq!(old.unwrap().memory_mib, 800);
        assert_eq!(p.used_mib(), 600);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(FunctionId(0)).unwrap().expiry_ms, 200);
    }

    #[test]
    fn fits_accounts_for_replacement() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 900, 0, 100)).unwrap();
        assert!(p.fits(&c(0, 1_000, 0, 100)));
        assert!(!p.fits(&c(1, 200, 0, 100)));
    }

    #[test]
    fn expire_until_removes_only_lapsed() {
        let mut p = WarmPool::new(10_000);
        p.insert(c(0, 100, 0, 50)).unwrap();
        p.insert(c(1, 100, 0, 150)).unwrap();
        p.insert(c(2, 100, 0, 100)).unwrap();
        let mut dead = p.expire_until(100);
        dead.sort_by_key(|c| c.func);
        assert_eq!(dead.len(), 2);
        assert_eq!(dead[0].func, FunctionId(0));
        assert_eq!(dead[1].func, FunctionId(2));
        assert_eq!(p.len(), 1);
        assert_eq!(p.used_mib(), 100);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut p = WarmPool::new(100);
        assert!(p.remove(FunctionId(9)).is_none());
    }

    #[test]
    fn drain_all_resets() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 100, 0, 50)).unwrap();
        p.insert(c(1, 100, 0, 50)).unwrap();
        let drained = p.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(p.is_empty());
        assert_eq!(p.used_mib(), 0);
    }

    #[test]
    fn external_pressure_counts_toward_admission() {
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 400, 0, 100)).unwrap();
        assert_eq!(p.free_mib(), 600);
        p.set_external_used_mib(500);
        assert_eq!(p.free_mib(), 100);
        // 200 MiB no longer fits (400 own + 500 external + 200 > 1000)…
        assert!(p.insert(c(1, 200, 0, 100)).is_err());
        // …but replacing the resident 400-MiB entry still reclaims it.
        assert!(p.fits(&c(0, 500, 10, 200)));
        // Releasing the pressure restores admission; own usage was never
        // confused with the external share.
        p.set_external_used_mib(0);
        assert_eq!(p.used_mib(), 400);
        p.insert(c(1, 200, 0, 100)).unwrap();
        assert_eq!(p.used_mib(), 600);
    }

    #[test]
    fn memory_invariant_under_churn() {
        // used_mib must always equal the sum of resident footprints.
        let mut p = WarmPool::new(5_000);
        for i in 0..20u32 {
            let _ = p.insert(c(i % 7, 100 + (i as u64 * 37) % 400, 0, 1 + i as u64 * 10));
            let expected: u64 = p.iter().map(|c| c.memory_mib).sum();
            assert_eq!(p.used_mib(), expected);
            if i % 3 == 0 {
                p.expire_until(i as u64 * 5);
                let expected: u64 = p.iter().map(|c| c.memory_mib).sum();
                assert_eq!(p.used_mib(), expected);
            }
        }
    }
}

/root/repo/target/release/deps/fig14_regions-552e0910a580d47c.d: crates/bench/benches/fig14_regions.rs

/root/repo/target/release/deps/fig14_regions-552e0910a580d47c: crates/bench/benches/fig14_regions.rs

crates/bench/benches/fig14_regions.rs:

/root/repo/target/release/deps/determinism-1e5a272c1cabb6cc.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-1e5a272c1cabb6cc.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/tune-9193fd20a8ca739f.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/tune-9193fd20a8ca739f: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:

/root/repo/target/debug/deps/ecolife_carbon-13bd0d09533fb973.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/debug/deps/libecolife_carbon-13bd0d09533fb973.rlib: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/debug/deps/libecolife_carbon-13bd0d09533fb973.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

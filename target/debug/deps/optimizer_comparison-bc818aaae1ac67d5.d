/root/repo/target/debug/deps/optimizer_comparison-bc818aaae1ac67d5.d: crates/bench/benches/optimizer_comparison.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_comparison-bc818aaae1ac67d5.rmeta: crates/bench/benches/optimizer_comparison.rs Cargo.toml

crates/bench/benches/optimizer_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Performance model: how long a function's execution and cold start take
//! on a given hardware generation.
//!
//! A function's profile (owned by `ecolife-trace`) carries a *base*
//! execution time measured on the reference (newest) generation, plus a
//! `cpu_sensitivity ∈ [0, 1]` describing how much of its runtime scales
//! with single-thread CPU speed (the rest is I/O / memory-bandwidth bound
//! and generation-insensitive to first order). This reproduces the paper's
//! observation that the old-hardware penalty varies by workload — e.g.
//! video-processing pays ~16% on A_OLD while Graph-BFS barely suffers on
//! C_OLD (Fig. 2).

use crate::{CpuModel, HardwareNode};

/// Scales base timings onto concrete hardware.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModel;

impl PerfModel {
    /// Execution time of a function on `cpu`.
    ///
    /// `base_exec_ms` is the measured execution time on the reference part
    /// (`perf_index == 1.0`); `cpu_sensitivity` is the CPU-bound fraction.
    #[inline]
    pub fn exec_time_ms(cpu: &CpuModel, base_exec_ms: u64, cpu_sensitivity: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&cpu_sensitivity));
        let slowdown = 1.0 + (cpu.slowdown() - 1.0) * cpu_sensitivity;
        (base_exec_ms as f64 * slowdown).round() as u64
    }

    /// Cold-start overhead on `cpu`.
    ///
    /// Cold starts are dominated by container image pull/unpack and runtime
    /// initialization; they are mildly CPU-sensitive, so a fixed 50%
    /// sensitivity is applied (SeBS reports cold starts varying by ~10-30%
    /// across instance types — half the execution-path sensitivity).
    #[inline]
    pub fn cold_start_ms(cpu: &CpuModel, base_cold_ms: u64) -> u64 {
        let slowdown = 1.0 + (cpu.slowdown() - 1.0) * 0.5;
        (base_cold_ms as f64 * slowdown).round() as u64
    }

    /// Full cold service time (cold start + execution) on a node.
    #[inline]
    pub fn cold_service_ms(
        node: &HardwareNode,
        base_exec_ms: u64,
        base_cold_ms: u64,
        cpu_sensitivity: f64,
    ) -> u64 {
        Self::cold_start_ms(&node.cpu, base_cold_ms)
            + Self::exec_time_ms(&node.cpu, base_exec_ms, cpu_sensitivity)
    }

    /// Warm service time (execution only) on a node.
    #[inline]
    pub fn warm_service_ms(node: &HardwareNode, base_exec_ms: u64, cpu_sensitivity: f64) -> u64 {
        Self::exec_time_ms(&node.cpu, base_exec_ms, cpu_sensitivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skus;

    #[test]
    fn reference_cpu_runs_at_base_speed() {
        let cpu = skus::xeon_platinum_8252c();
        assert_eq!(PerfModel::exec_time_ms(&cpu, 2_000, 1.0), 2_000);
        assert_eq!(PerfModel::exec_time_ms(&cpu, 2_000, 0.0), 2_000);
        assert_eq!(PerfModel::cold_start_ms(&cpu, 2_500), 2_500);
    }

    #[test]
    fn old_cpu_slows_fully_sensitive_function() {
        let cpu = skus::xeon_e5_2686(); // perf_index 0.80 → slowdown 1.25
        assert_eq!(PerfModel::exec_time_ms(&cpu, 1_000, 1.0), 1_250);
    }

    #[test]
    fn insensitive_function_is_generation_invariant() {
        let cpu = skus::xeon_e5_2686();
        assert_eq!(PerfModel::exec_time_ms(&cpu, 1_000, 0.0), 1_000);
    }

    #[test]
    fn partial_sensitivity_interpolates() {
        let cpu = skus::xeon_e5_2686(); // slowdown 1.25
                                        // sensitivity 0.64 → 1 + 0.25*0.64 = 1.16 → 1160 ms.
        assert_eq!(PerfModel::exec_time_ms(&cpu, 1_000, 0.64), 1_160);
    }

    #[test]
    fn cold_start_half_sensitive() {
        let cpu = skus::xeon_e5_2686(); // slowdown 1.25 → cold slowdown 1.125
        assert_eq!(PerfModel::cold_start_ms(&cpu, 2_000), 2_250);
    }

    #[test]
    fn cold_service_is_sum_of_parts() {
        let p = skus::pair_a();
        let cold = PerfModel::cold_service_ms(&p.old, 1_000, 2_000, 0.64);
        let warm = PerfModel::warm_service_ms(&p.old, 1_000, 0.64);
        assert_eq!(cold, warm + PerfModel::cold_start_ms(&p.old.cpu, 2_000));
    }

    #[test]
    fn warm_on_old_can_beat_cold_on_new() {
        // The Fig. 3 Case A vs Case B service-time claim: warm execution on
        // old hardware beats a cold start on new hardware whenever the cold
        // start overhead exceeds the generation slowdown penalty.
        let p = skus::pair_a();
        let warm_old = PerfModel::warm_service_ms(&p.old, 2_000, 0.64);
        let cold_new = PerfModel::cold_service_ms(&p.new, 2_000, 2_500, 0.64);
        assert!(warm_old < cold_new);
    }
}

//! EcoLife's Dynamic PSO (Sec. IV-C, Fig. 5).
//!
//! Two mechanisms on top of the vanilla swarm:
//!
//! * **Adaptive weights** driven by the normalized environment deltas
//!   `δF = ΔF/ΔF_max` and `δCI = ΔCI/ΔCI_max`:
//!
//!   ```text
//!   ω       = ω_max · (δF + δCI)           (clamped to [ω_min, ω_max])
//!   c1 = c2 = c_max · (1 − δF − δCI)       (clamped to [c_min, c_max])
//!   ```
//!
//!   Large environment change → high inertia (keep moving, explore);
//!   stable environment → strong cognitive/social pull (exploit).
//!
//! * **Perception–response**: when a change is perceived (δF + δCI above
//!   a small threshold), half of the swarm is redistributed uniformly at
//!   random over the search space while the other half retains position —
//!   "providing the PSO optimizer with a level of memory".

use crate::pso::{Pso, PsoConfig};
use crate::space::SearchSpace;
use crate::{BatchOptimizer, Optimizer};

/// Weight ranges, matching Sec. V: ω ∈ [0.5, 1.0], c ∈ [0.3, 1.0].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpsoConfig {
    pub base: PsoConfig,
    pub omega_min: f64,
    pub omega_max: f64,
    pub c_min: f64,
    pub c_max: f64,
    /// Perceived-change threshold on `δF + δCI` that triggers the
    /// half-swarm redistribution.
    pub perception_threshold: f64,
}

impl Default for DpsoConfig {
    fn default() -> Self {
        DpsoConfig {
            base: PsoConfig::default(),
            omega_min: 0.5,
            omega_max: 1.0,
            c_min: 0.3,
            c_max: 1.0,
            perception_threshold: 0.05,
        }
    }
}

/// The dynamic swarm. Construct once per serverless function and keep it
/// alive across invocations ("For each new invocation of a serverless
/// function, EcoLife assigns a PSO optimizer and preserves it").
#[derive(Debug, Clone)]
pub struct DynamicPso {
    inner: Pso,
    config: DpsoConfig,
    redistributions: u64,
}

impl DynamicPso {
    pub fn new(space: SearchSpace, config: DpsoConfig) -> Self {
        DynamicPso {
            inner: Pso::new(space, config.base),
            config,
            redistributions: 0,
        }
    }

    /// Number of perception-triggered half-swarm redistributions so far.
    pub fn redistributions(&self) -> u64 {
        self.redistributions
    }

    /// Current (ω, c1=c2) weights.
    pub fn weights(&self) -> (f64, f64) {
        (self.inner.inertia, self.inner.cognitive)
    }

    /// Access the underlying swarm (read-only).
    pub fn swarm(&self) -> &Pso {
        &self.inner
    }

    /// Feed the normalized environment deltas (`δF`, `δCI` ∈ [0, 1]):
    /// recompute the weights and, if the perceived change exceeds the
    /// threshold, redistribute half the swarm.
    pub fn perceive(&mut self, delta_f: f64, delta_ci: f64) {
        let df = delta_f.clamp(0.0, 1.0);
        let dci = delta_ci.clamp(0.0, 1.0);
        let change = df + dci;

        let omega =
            (self.config.omega_max * change).clamp(self.config.omega_min, self.config.omega_max);
        let c = (self.config.c_max * (1.0 - change)).clamp(self.config.c_min, self.config.c_max);
        self.inner.inertia = omega;
        self.inner.cognitive = c;
        self.inner.social = c;

        if change > self.config.perception_threshold {
            self.redistribute_half();
        }
    }

    /// Randomly redistribute the first half of the swarm; reset the
    /// redistributed particles' personal bests (their old memories refer
    /// to a stale environment) but keep the global best as an anchor.
    fn redistribute_half(&mut self) {
        let half = self.inner.particles.len() / 2;
        let space = self.inner.space.clone();
        for p in self.inner.particles.iter_mut().take(half) {
            p.position = space.sample(&mut self.inner.rng);
            p.velocity = vec![0.0; space.dims()];
            p.best_position.clone_from(&p.position);
            p.best_fitness = f64::INFINITY;
        }
        self.redistributions += 1;
    }

    /// When the environment changed, the previous global best fitness may
    /// be stale; callers re-anchor it by re-evaluating under the current
    /// fitness before stepping.
    pub fn refresh_gbest<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        self.inner.gbest_fitness = fitness(&self.inner.gbest_position);
    }
}

impl BatchOptimizer for DynamicPso {
    fn ask(&self) -> Vec<Vec<f64>> {
        self.inner.ask()
    }

    fn tell(&mut self, fitnesses: &[f64]) {
        self.inner.tell(fitnesses);
    }
}

impl Optimizer for DynamicPso {
    fn step<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        self.inner.step(fitness);
    }

    fn best_position(&self) -> &[f64] {
        self.inner.best_position()
    }

    fn best_fitness(&self) -> f64 {
        self.inner.best_fitness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![(-10.0, 10.0); 2])
    }

    #[test]
    fn weights_respond_to_environment_change() {
        let mut d = DynamicPso::new(space(), DpsoConfig::default());
        // Stable environment → minimal inertia, maximal exploitation.
        d.perceive(0.0, 0.0);
        let (w, c) = d.weights();
        assert_eq!(w, 0.5);
        assert_eq!(c, 1.0);
        // Full change → maximal inertia, minimal exploitation.
        d.perceive(1.0, 1.0);
        let (w, c) = d.weights();
        assert_eq!(w, 1.0);
        assert_eq!(c, 0.3);
        // Mid change.
        d.perceive(0.35, 0.35);
        let (w, c) = d.weights();
        assert!((w - 0.7).abs() < 1e-12);
        assert!((c - 0.3).abs() < 1e-12);
    }

    #[test]
    fn perception_triggers_redistribution_only_above_threshold() {
        let mut d = DynamicPso::new(space(), DpsoConfig::default());
        d.perceive(0.0, 0.0);
        assert_eq!(d.redistributions(), 0);
        d.perceive(0.01, 0.02);
        assert_eq!(d.redistributions(), 0);
        d.perceive(0.5, 0.0);
        assert_eq!(d.redistributions(), 1);
        d.perceive(0.0, 0.9);
        assert_eq!(d.redistributions(), 2);
    }

    #[test]
    fn half_swarm_retains_positions_on_redistribution() {
        let mut d = DynamicPso::new(space(), DpsoConfig::default());
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        d.run(&f, 5);
        let before: Vec<Vec<f64>> = d
            .swarm()
            .particles
            .iter()
            .map(|p| p.position.clone())
            .collect();
        d.perceive(1.0, 1.0);
        let after: Vec<Vec<f64>> = d
            .swarm()
            .particles
            .iter()
            .map(|p| p.position.clone())
            .collect();
        let n = before.len();
        // Second half untouched.
        for i in n / 2..n {
            assert_eq!(before[i], after[i], "particle {i} should retain position");
        }
        // First half moved (probability of an exact collision is 0).
        let moved = (0..n / 2).filter(|&i| before[i] != after[i]).count();
        assert!(moved >= n / 2 - 1);
    }

    #[test]
    fn tracks_moving_optimum_better_than_frozen_swarm() {
        // Converge to one optimum, shift it, and verify the perception
        // response lets DPSO re-converge while a weight-frozen swarm with
        // no redistribution stays trapped near its stale gbest.
        let f1 = |x: &[f64]| (x[0] - 5.0).powi(2) + (x[1] - 5.0).powi(2);
        let f2 = |x: &[f64]| (x[0] + 6.0).powi(2) + (x[1] + 6.0).powi(2);

        let mut dpso = DynamicPso::new(space(), DpsoConfig::default());
        dpso.run(&f1, 60);
        dpso.perceive(1.0, 0.8);
        dpso.refresh_gbest(&f2);
        dpso.run(&f2, 60);

        let mut frozen = DynamicPso::new(space(), DpsoConfig::default());
        frozen.run(&f1, 60);
        // No perceive() call: stale gbest fitness anchors the swarm.
        frozen.run(&f2, 60);

        assert!(
            dpso.best_fitness() < 1e-2,
            "dpso stuck at {}",
            dpso.best_fitness()
        );
        // Frozen swarm keeps reporting the stale optimum (its recorded best
        // fitness refers to f1's basin) — its position stays near (5, 5).
        let fp = frozen.best_position();
        assert!(
            (fp[0] - 5.0).abs() < 1.0 && (fp[1] - 5.0).abs() < 1.0,
            "frozen swarm unexpectedly escaped: {fp:?}"
        );
    }

    #[test]
    fn refresh_gbest_reanchors_fitness() {
        let mut d = DynamicPso::new(space(), DpsoConfig::default());
        let f1 = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        d.run(&f1, 20);
        let f2 = |x: &[f64]| f1(x) + 100.0;
        d.refresh_gbest(&f2);
        assert!(d.best_fitness() >= 100.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let cfg = DpsoConfig {
                base: PsoConfig {
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut d = DynamicPso::new(space(), cfg);
            let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
            d.run(&f, 10);
            d.perceive(0.6, 0.1);
            d.run(&f, 10)
        };
        assert_eq!(run(42), run(42));
    }
}

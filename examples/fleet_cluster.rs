//! Scheduling over an N-node heterogeneous fleet.
//!
//! The paper evaluates one old/new pair; this example runs the same
//! machinery over a three-generation fleet (2016 i3.metal-class +
//! 2019 m5.metal-class + 2020 m5zn.metal-class) and shows where each
//! scheme places executions — the mid-generation node earns keep-alive
//! traffic because it trades a mild slowdown for a cheaper reserved core
//! than the newest node.
//!
//! Run with: `cargo run --release --example fleet_cluster`

use ecolife::prelude::*;
use std::collections::BTreeMap;

fn placement_row(fleet: &Fleet, m: &RunMetrics) -> String {
    let mut counts: BTreeMap<NodeId, usize> = fleet.ids().map(|id| (id, 0)).collect();
    for r in &m.records {
        *counts.entry(r.exec_location).or_insert(0) += 1;
    }
    counts
        .iter()
        .map(|(id, n)| format!("{id}:{n:>5}"))
        .collect::<Vec<_>>()
        .join("  ")
}

fn carbon_row(fleet: &Fleet, m: &RunMetrics) -> String {
    fleet
        .ids()
        .zip(m.carbon_g_by_node())
        .map(|(id, g)| format!("{id}:{g:>8.2}"))
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    // A fleet of three CPU generations, each with a 10-GiB warm pool.
    let fleet = skus::fleet_of(&[Sku::I3Metal, Sku::M5Metal, Sku::M5znMetal])
        .with_uniform_keepalive_budget_mib(10 * 1024);
    println!("fleet:");
    for node in fleet.iter() {
        println!(
            "  {}  {} ({})  {} cores, {:.0} GiB, perf {:.2}",
            node.id,
            node.cpu.name,
            node.cpu.year,
            node.cpu.cores,
            node.dram.capacity_mib as f64 / 1024.0,
            node.cpu.perf_index
        );
    }

    let trace = SynthTraceConfig {
        n_functions: 32,
        duration_min: 360,
        seed: 7,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 400, 7);
    println!(
        "\nworkload: {} invocations of {} functions over 6 hours (CISO intensity)\n",
        trace.len(),
        trace.catalog().len()
    );

    let mut schemes: Vec<(Box<dyn Scheduler>, &str)> = vec![
        (
            Box::new(BruteForce::oracle(fleet.clone(), ci.clone())),
            "brute-force over all 3 nodes x 11 periods",
        ),
        (
            Box::new(EcoLife::new(fleet.clone(), EcoLifeConfig::default())),
            "per-function DPSO over the fleet-wide space",
        ),
        (
            Box::new(FixedPolicy::pinned(fleet.newest(), 10)),
            "everything on the newest node, 10-min keep-alive",
        ),
        (
            Box::new(FixedPolicy::pinned(fleet.oldest(), 10)),
            "everything on the oldest node",
        ),
    ];

    println!(
        "{:<10} {:>13} {:>11} {:>10}   executions per node",
        "scheme", "service ms", "carbon g", "warm rate"
    );
    for (scheduler, note) in &mut schemes {
        let (s, m) = run_scheme(&trace, &ci, &fleet, scheduler);
        println!(
            "{:<10} {:>13} {:>11.2} {:>10.3}   {}   ({note})",
            s.name,
            s.total_service_ms,
            s.total_carbon_g,
            s.warm_rate,
            placement_row(&fleet, &m),
        );
        println!(
            "{:<10} {:>37} {}",
            "",
            "carbon g per node:",
            carbon_row(&fleet, &m)
        );
        println!(
            "{:<10} {:>37} {} expired, {} timeline pops ({} stale), {} scanned",
            "",
            "warm-pool churn:",
            m.expiry.expired,
            m.expiry.timeline_pops,
            m.expiry.stale_pops,
            m.expiry.scanned,
        );
    }

    // The same EcoLife run through the sharded engine: the per-node
    // memory-ledger peaks show how close each warm pool came to its
    // keep-alive budget (the capacity guarantee is peak <= budget).
    let sharded = Simulation::new(&trace, &ci, fleet.clone()).run_sharded(
        |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
        &ecolife::sim::ShardOptions::new(4),
    );
    println!("\nsharded replay, warm-pool peak occupancy (MiB):");
    for (node, &peak) in fleet.iter().zip(&sharded.ledger_peak_mib) {
        println!(
            "  {}  {:>6} / {:>6} ({:>4.1}%)",
            node.id,
            peak,
            node.keepalive_mem_mib,
            100.0 * peak as f64 / node.keepalive_mem_mib as f64
        );
    }

    println!(
        "\nThe fleet-aware schemes split traffic across generations: fast\n\
         executions land on the newest node while keep-alive-heavy functions\n\
         sit on older silicon, which is exactly the trade-off the two-node\n\
         paper setup demonstrates — now over an arbitrary node count. The\n\
         per-node carbon rows (hosted keep-alive + service of the executions\n\
         placed there) show where each scheme actually spends its grams."
    );
}

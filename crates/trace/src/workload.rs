//! The SeBS-style workload catalog.
//!
//! The paper executes functions from the SeBS benchmark suite [28] and
//! maps Azure-trace entries onto "the closest match, considering the
//! memory and execution time" (Sec. V). Each profile here carries what the
//! perf/power/carbon models need:
//!
//! * `base_exec_ms` — execution time on the reference (newest) generation;
//! * `base_cold_ms` — cold-start overhead (image pull + runtime init) on
//!   the reference generation;
//! * `memory_mib` — container memory footprint (drives warm-pool pressure
//!   and the DRAM share in the carbon model);
//! * `cpu_sensitivity ∈ [0,1]` — fraction of the runtime that scales with
//!   single-thread CPU speed (the old-generation penalty knob; Fig. 2
//!   shows this varies strongly per function).

/// Index of a function within a [`WorkloadCatalog`] / trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub u32);

impl FunctionId {
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Static profile of one serverless function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// SeBS-style benchmark name, e.g. `"220.video-processing"`.
    pub name: String,
    /// Execution time on the reference generation (ms).
    pub base_exec_ms: u64,
    /// Cold-start overhead on the reference generation (ms).
    pub base_cold_ms: u64,
    /// Container memory footprint (MiB).
    pub memory_mib: u64,
    /// CPU-bound fraction of the runtime, in `[0, 1]`.
    pub cpu_sensitivity: f64,
}

impl FunctionProfile {
    pub fn new(
        name: &str,
        base_exec_ms: u64,
        base_cold_ms: u64,
        memory_mib: u64,
        cpu_sensitivity: f64,
    ) -> Self {
        assert!(base_exec_ms > 0, "execution time must be positive");
        assert!(memory_mib > 0, "memory footprint must be positive");
        assert!(
            (0.0..=1.0).contains(&cpu_sensitivity),
            "cpu_sensitivity out of [0,1]"
        );
        FunctionProfile {
            name: name.to_string(),
            base_exec_ms,
            base_cold_ms,
            memory_mib,
            cpu_sensitivity,
        }
    }
}

/// A set of function profiles addressed by [`FunctionId`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadCatalog {
    profiles: Vec<FunctionProfile>,
}

impl WorkloadCatalog {
    pub fn new(profiles: Vec<FunctionProfile>) -> Self {
        WorkloadCatalog { profiles }
    }

    /// The SeBS catalog used throughout the evaluation. Timings follow the
    /// published SeBS measurements' orders of magnitude; the three
    /// functions the paper's motivation plots (video-processing,
    /// graph-bfs, dna-visualization) are calibrated to reproduce the
    /// Fig. 1/2/3 shapes (see EXPERIMENTS.md).
    pub fn sebs() -> Self {
        WorkloadCatalog::new(vec![
            // Fig. 2: +15.9% exec on A_OLD → sensitivity ≈ 0.64 at 1.25x.
            FunctionProfile::new("220.video-processing", 2_000, 2_500, 512, 0.64),
            // Fig. 2: barely slower on C_OLD → low sensitivity; mid memory.
            FunctionProfile::new("503.graph-bfs", 6_000, 2_000, 256, 0.15),
            // Long-running, large memory: the Fig. 3 inverted-case function.
            FunctionProfile::new("504.dna-visualization", 12_000, 5_000, 4_096, 0.30),
            FunctionProfile::new("501.graph-pagerank", 5_000, 2_000, 512, 0.20),
            FunctionProfile::new("502.graph-mst", 4_500, 2_000, 512, 0.25),
            FunctionProfile::new("210.thumbnailer", 300, 1_500, 128, 0.50),
            FunctionProfile::new("311.compression", 1_500, 1_800, 256, 0.70),
            FunctionProfile::new("411.image-recognition", 800, 4_000, 1_024, 0.60),
            FunctionProfile::new("110.dynamic-html", 100, 1_000, 128, 0.40),
            FunctionProfile::new("120.uploader", 400, 1_200, 128, 0.10),
            FunctionProfile::new("130.crud-api", 150, 1_100, 192, 0.30),
            FunctionProfile::new("601.ml-training-lite", 9_000, 3_500, 2_048, 0.80),
        ])
    }

    /// Number of profiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile lookup; panics on an out-of-range id (trace and catalog are
    /// always constructed together).
    #[inline]
    pub fn profile(&self, id: FunctionId) -> &FunctionProfile {
        &self.profiles[id.as_usize()]
    }

    /// Look a profile up by name.
    pub fn by_name(&self, name: &str) -> Option<(FunctionId, &FunctionProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
            .map(|(i, p)| (FunctionId(i as u32), p))
    }

    /// Iterate `(id, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (FunctionId(i as u32), p))
    }

    /// Map an observed (memory MiB, average duration ms) pair to the
    /// closest catalog entry — the paper's Azure→SeBS mapping rule.
    /// Distance is measured in log space so that a 128-vs-256 MiB gap
    /// counts like a 2048-vs-4096 gap.
    pub fn closest_match(&self, memory_mib: u64, duration_ms: u64) -> FunctionId {
        assert!(!self.profiles.is_empty(), "empty catalog");
        let lm = (memory_mib.max(1) as f64).ln();
        let ld = (duration_ms.max(1) as f64).ln();
        let mut best = (f64::INFINITY, 0usize);
        for (i, p) in self.profiles.iter().enumerate() {
            let dm = (p.memory_mib as f64).ln() - lm;
            let dd = (p.base_exec_ms as f64).ln() - ld;
            let dist = dm * dm + dd * dd;
            if dist < best.0 {
                best = (dist, i);
            }
        }
        FunctionId(best.1 as u32)
    }

    /// Add a profile, returning its id.
    pub fn push(&mut self, profile: FunctionProfile) -> FunctionId {
        self.profiles.push(profile);
        FunctionId(self.profiles.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sebs_catalog_has_the_three_motivation_functions() {
        let c = WorkloadCatalog::sebs();
        for name in [
            "220.video-processing",
            "503.graph-bfs",
            "504.dna-visualization",
        ] {
            assert!(c.by_name(name).is_some(), "{name} missing");
        }
        assert!(c.len() >= 10);
    }

    #[test]
    fn profile_lookup_roundtrips() {
        let c = WorkloadCatalog::sebs();
        let (id, p) = c.by_name("503.graph-bfs").unwrap();
        assert_eq!(c.profile(id), p);
    }

    #[test]
    fn iter_covers_all_ids_in_order() {
        let c = WorkloadCatalog::sebs();
        let ids: Vec<u32> = c.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (0..c.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn closest_match_exact_hit() {
        let c = WorkloadCatalog::sebs();
        let (id, p) = c.by_name("504.dna-visualization").unwrap();
        assert_eq!(c.closest_match(p.memory_mib, p.base_exec_ms), id);
    }

    #[test]
    fn closest_match_prefers_log_scale_neighbors() {
        let c = WorkloadCatalog::sebs();
        // 140 MiB / 120 ms is clearly a dynamic-html-like tiny function.
        let id = c.closest_match(140, 120);
        assert_eq!(c.profile(id).name, "110.dynamic-html");
        // Huge memory + long duration → dna-visualization.
        let id = c.closest_match(3_500, 10_000);
        assert_eq!(c.profile(id).name, "504.dna-visualization");
    }

    #[test]
    fn push_returns_new_id() {
        let mut c = WorkloadCatalog::default();
        let id = c.push(FunctionProfile::new("x", 10, 10, 10, 0.5));
        assert_eq!(id, FunctionId(0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cpu_sensitivity")]
    fn profile_rejects_bad_sensitivity() {
        FunctionProfile::new("bad", 10, 10, 10, 1.5);
    }

    #[test]
    fn function_id_display() {
        assert_eq!(FunctionId(3).to_string(), "f3");
    }

    #[test]
    fn cold_start_is_comparable_to_execution_for_sebs() {
        // Sec. II: "execution times for typical production serverless
        // functions can be comparable to the cold start overhead" — the
        // catalog must keep cold starts in the same order of magnitude.
        let c = WorkloadCatalog::sebs();
        let comparable = c
            .iter()
            .filter(|(_, p)| p.base_cold_ms as f64 >= 0.2 * p.base_exec_ms as f64)
            .count();
        assert!(comparable as f64 >= 0.75 * c.len() as f64);
    }
}

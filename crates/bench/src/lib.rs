//! Shared experiment harness for the figure-regeneration benches.
//!
//! Every bench in `benches/` reproduces one table or figure of the paper.
//! This library centralizes the default evaluation setup (Sec. V): the
//! Azure-like trace, the CISO carbon-intensity feed, the pair-A two-node
//! fleet, and constructors for every scheme, so that all figures are
//! computed under identical conditions. Sweeps over other fleets (pairs
//! B/C, N-node configurations) go through [`EvalSetup::sized`], which
//! accepts anything convertible to a [`Fleet`].

pub mod report;

use ecolife_carbon::{CarbonIntensityTrace, Region};
use ecolife_core::{
    compare, run_scheme, BruteForce, Comparison, EcoLife, EcoLifeConfig, FixedPolicy, RunSummary,
};
use ecolife_hw::Fleet;
use ecolife_sim::Scheduler;
use ecolife_trace::{SynthTraceConfig, Trace, WorkloadCatalog};

/// The default evaluation seed. Changing it shifts every stochastic
/// component coherently.
pub const EVAL_SEED: u64 = 0x05C2_4EC0;

/// The default evaluation environment: trace, CI feed, hardware fleet.
pub struct EvalSetup {
    pub trace: Trace,
    pub ci: CarbonIntensityTrace,
    pub fleet: Fleet,
}

impl EvalSetup {
    /// Full-size setup (Sec. V defaults): 48 trace functions over 24
    /// hours (a full diurnal carbon-intensity cycle), CISO intensity,
    /// pair A with 15/15 GiB keep-alive pools (the middle point of the
    /// paper's Fig. 11 memory sweep — the regime where keep-alive
    /// placement actually competes for memory).
    pub fn standard() -> Self {
        Self::sized(
            48,
            1_440,
            ecolife_hw::skus::pair_a().with_keepalive_budgets_mib(15 * 1024, 15 * 1024),
        )
    }

    /// Small setup for fast criterion iterations: 3 hours, tighter pools.
    pub fn quick() -> Self {
        Self::sized(
            16,
            180,
            ecolife_hw::skus::pair_a().with_keepalive_budgets_mib(6 * 1024, 6 * 1024),
        )
    }

    /// Parameterized setup over any fleet (a `HardwarePair` converts).
    pub fn sized(n_functions: usize, duration_min: u64, fleet: impl Into<Fleet>) -> Self {
        let trace = SynthTraceConfig {
            n_functions,
            duration_min,
            seed: EVAL_SEED,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs());
        let ci =
            CarbonIntensityTrace::synthetic(Region::Caiso, duration_min as usize + 30, EVAL_SEED);
        EvalSetup {
            trace,
            ci,
            fleet: fleet.into(),
        }
    }

    /// Swap the carbon-intensity region (Fig. 14).
    pub fn with_region(mut self, region: Region) -> Self {
        let minutes = self.ci.len_minutes();
        self.ci = CarbonIntensityTrace::synthetic(region, minutes, EVAL_SEED);
        self
    }

    /// Run a scheduler and summarize.
    pub fn run<S: Scheduler>(&self, scheduler: &mut S) -> RunSummary {
        run_scheme(&self.trace, &self.ci, &self.fleet, scheduler).0
    }

    // ---- scheme constructors bound to this environment ----

    pub fn ecolife(&self) -> EcoLife {
        EcoLife::new(self.fleet.clone(), EcoLifeConfig::default())
    }

    pub fn ecolife_with(&self, config: EcoLifeConfig) -> EcoLife {
        EcoLife::new(self.fleet.clone(), config)
    }

    pub fn oracle(&self) -> BruteForce {
        BruteForce::oracle(self.fleet.clone(), self.ci.clone())
    }

    pub fn co2_opt(&self) -> BruteForce {
        BruteForce::co2_opt(self.fleet.clone(), self.ci.clone())
    }

    pub fn service_time_opt(&self) -> BruteForce {
        BruteForce::service_time_opt(self.fleet.clone(), self.ci.clone())
    }

    pub fn energy_opt(&self) -> BruteForce {
        BruteForce::energy_opt(self.fleet.clone(), self.ci.clone())
    }

    pub fn new_only(&self) -> FixedPolicy {
        FixedPolicy::new_only()
    }

    pub fn old_only(&self) -> FixedPolicy {
        FixedPolicy::old_only()
    }

    /// The two anchors plus the placement of each given scheme against
    /// them, in one shot.
    pub fn placements(&self, summaries: &[RunSummary]) -> Vec<Comparison> {
        let st = self.run(&mut self.service_time_opt());
        let co2 = self.run(&mut self.co2_opt());
        summaries.iter().map(|s| compare(s, &st, &co2)).collect()
    }
}

/// Render one figure row: `label  service+X.X%  carbon+Y.Y%`.
pub fn fmt_placement(c: &Comparison) -> String {
    format!(
        "{:<22} service +{:>6.2}%   carbon +{:>6.2}%",
        c.name, c.service_increase_pct, c.carbon_increase_pct
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_is_consistent() {
        let s = EvalSetup::quick();
        assert!(!s.trace.is_empty());
        assert!(s.ci.len_ms() >= s.trace.horizon_ms());
        assert_eq!(s.fleet.len(), 2);
    }

    #[test]
    fn sized_accepts_fleets_directly() {
        let s = EvalSetup::sized(4, 30, ecolife_hw::skus::fleet_three_generations());
        assert_eq!(s.fleet.len(), 3);
    }

    #[test]
    fn schemes_carry_expected_names() {
        let s = EvalSetup::quick();
        assert_eq!(s.ecolife().name(), "EcoLife");
        assert_eq!(s.oracle().name(), "Oracle");
        assert_eq!(s.new_only().name(), "New-Only");
    }
}

/root/repo/target/release/examples/__verify_probe-821515a9c94b1e57.d: examples/__verify_probe.rs

/root/repo/target/release/examples/__verify_probe-821515a9c94b1e57: examples/__verify_probe.rs

examples/__verify_probe.rs:

//! Property tests on trace structure: ordering, gap computation, window
//! counting, and inter-arrival statistics.

use ecolife_trace::stats::InterArrivalStats;
use ecolife_trace::{FunctionId, FunctionProfile, Invocation, Trace, WorkloadCatalog};
use proptest::prelude::*;

fn catalog(n: usize) -> WorkloadCatalog {
    WorkloadCatalog::new(
        (0..n)
            .map(|i| FunctionProfile::new(&format!("f{i}"), 100 + i as u64, 100, 128, 0.5))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invocations_are_sorted_and_gaps_consistent(
        raw in prop::collection::vec((0u32..6, 0u64..100_000), 0..80),
    ) {
        let cat = catalog(6);
        let invs: Vec<Invocation> = raw
            .iter()
            .map(|&(f, t)| Invocation { func: FunctionId(f), t_ms: t })
            .collect();
        let trace = Trace::new(cat, invs);

        // Sorted.
        prop_assert!(trace.invocations().windows(2).all(|w| w[0].t_ms <= w[1].t_ms));

        // Gap oracle: for every invocation with Some(gap), the invocation
        // at t + gap exists for the same function and nothing in between.
        let gaps = trace.next_arrival_gaps();
        prop_assert_eq!(gaps.len(), trace.len());
        for (i, gap) in gaps.iter().enumerate() {
            let inv = trace.invocations()[i];
            match gap {
                Some(g) => {
                    let next_t = inv.t_ms + g;
                    prop_assert!(trace.invocations()[i + 1..]
                        .iter()
                        .any(|j| j.func == inv.func && j.t_ms == next_t));
                    prop_assert!(!trace.invocations()[i + 1..]
                        .iter()
                        .any(|j| j.func == inv.func && j.t_ms < next_t));
                }
                None => {
                    prop_assert!(!trace.invocations()[i + 1..]
                        .iter()
                        .any(|j| j.func == inv.func));
                }
            }
        }
    }

    #[test]
    fn window_counts_conserve_total(
        raw in prop::collection::vec((0u32..4, 0u64..50_000), 1..60),
        window in 1u64..10_000,
    ) {
        let cat = catalog(4);
        let invs: Vec<Invocation> = raw
            .iter()
            .map(|&(f, t)| Invocation { func: FunctionId(f), t_ms: t })
            .collect();
        let trace = Trace::new(cat, invs);
        let counts = trace.invocations_per_window(window);
        prop_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), trace.len());
    }

    #[test]
    fn interarrival_probabilities_are_probabilities(
        times in prop::collection::vec(0u64..1_000_000, 1..50),
        k in 0u64..1_000_000,
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut s = InterArrivalStats::new(16);
        for t in &sorted {
            s.record_arrival(*t);
        }
        let p = s.p_within(k);
        prop_assert!((0.0..=1.0).contains(&p));
        // E[min(gap,k)] can never exceed k.
        prop_assert!(s.expected_resident_ms(k) <= k as f64 + 1e-9);
        // Monotone in k.
        prop_assert!(s.p_within(k) <= s.p_within(k.saturating_add(60_000)));
    }
}

/root/repo/target/debug/deps/determinism-2f07e07cce748054.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-2f07e07cce748054: tests/determinism.rs

tests/determinism.rs:

//! Live service: streaming ingest, bounded executors, queue-aware
//! placement.
//!
//! A bursty workload — 480 multi-second invocations arriving within
//! 2.4 s of virtual time — is thrown at the pair-A fleet with bounded
//! per-node executors ([`SimConfig::with_bounded_executors`]): each node
//! runs at most `cores` invocations at once, queues up to `queue_cap`
//! more, and rejects the rest (typed, zero-carbon, telemetered).
//!
//! The example pins three things:
//!
//! * **Saturation is real** — classic EcoLife placement drives its
//!   favourite node past its slots and the admission bound: nonzero
//!   `queue_ms`, nonzero rejections.
//! * **Queueing delay steers placement** — with
//!   [`EcoLifeConfig::with_queue_aware_placement`], the measured backlog
//!   feeds the service-time term of the EPDM score and at least one
//!   invocation lands on a different node than the classic run chose.
//! * **The live service is the batch replayer, bit for bit** — the same
//!   workload streamed through bounded channel lanes
//!   ([`ecolife::trace::live_lanes`]) by 3 producer threads yields
//!   byte-identical records, golden stream, and chain tip.
//!
//! Run with: `cargo run --release --example live_service`

use ecolife::prelude::*;
use ecolife::telemetry::diff::first_divergence;

fn bursty_trace() -> Trace {
    let catalog = WorkloadCatalog::new(vec![
        FunctionProfile::new("hog-a", 2_500, 900, 512, 0.6),
        FunctionProfile::new("hog-b", 3_000, 1_100, 640, 0.5),
        FunctionProfile::new("hog-c", 2_000, 800, 512, 0.7),
        FunctionProfile::new("hog-d", 3_500, 1_200, 768, 0.4),
    ]);
    let mut invocations: Vec<Invocation> = (0..480u64)
        .map(|i| Invocation {
            func: FunctionId((i % 4) as u32),
            t_ms: i * 5,
        })
        .collect();
    invocations.extend((0..6u64).map(|i| Invocation {
        func: FunctionId((i % 4) as u32),
        t_ms: MINUTE_MS + i * 10_000,
    }));
    Trace::new(catalog, invocations)
}

fn main() {
    let trace = bursty_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();
    let config = SimConfig::default().with_bounded_executors(ExecutorConfig { queue_cap: 8 });

    let run_batch = |queue_aware: bool| -> (RunMetrics, CaptureSink) {
        let ecolife_config = if queue_aware {
            EcoLifeConfig::default().with_queue_aware_placement()
        } else {
            EcoLifeConfig::default()
        };
        let mut sink = CaptureSink::default();
        let metrics = Simulation::new(&trace, &ci, fleet.clone())
            .with_config(config)
            .run_with_sink(&mut EcoLife::new(fleet.clone(), ecolife_config), &mut sink);
        (metrics, sink)
    };

    let (classic, _) = run_batch(false);
    let (aware, aware_sink) = run_batch(true);

    println!(
        "live_service: {} invocations over {} nodes, executors bounded at cores + 8 queued\n",
        trace.len(),
        fleet.len()
    );
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "placement", "rejected", "queue s", "carbon g", "peak busy"
    );
    for (name, m) in [("classic EPDM", &classic), ("queue-aware EPDM", &aware)] {
        println!(
            "{:<28} {:>10} {:>10.1} {:>12.3} {:>12}",
            name,
            m.rejected,
            m.total_queue_ms() as f64 / 1_000.0,
            m.total_carbon_g(),
            m.executor_peak_by_node
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("/")
        );
    }

    // Saturation: the burst overwhelms the favourite node's slots and
    // its admission bound.
    assert!(
        classic.rejected > 0,
        "burst must overflow the admission bound"
    );
    assert!(classic.total_queue_ms() > 0, "burst must queue");

    // The measured backlog shifts placement: at least one invocation
    // runs somewhere else once the EPDM score can see the queue.
    let shifted = classic
        .records
        .iter()
        .zip(&aware.records)
        .filter(|(c, a)| c.exec_location != a.exec_location)
        .count();
    println!("\nplacements shifted by queue awareness: {shifted}");
    assert!(
        shifted > 0,
        "queueing delay must move at least one EcoLife placement"
    );

    // The live service replays the batch engine bit for bit: same
    // workload streamed by 3 producer threads over bounded lanes.
    let all = trace.invocations().to_vec();
    let producers = 3usize;
    let (handles, source) = live_lanes(producers, 16);
    let chunk = all.len().div_ceil(producers);
    let (live, live_sink) = std::thread::scope(|scope| {
        for (handle, part) in handles.into_iter().zip(all.chunks(chunk)) {
            scope.spawn(move || {
                for &inv in part {
                    handle.send(inv).expect("service outlives producers");
                }
            });
        }
        let mut sink = CaptureSink::default();
        let metrics = Service::new(trace.catalog().clone(), &ci, fleet.clone())
            .with_config(config)
            .serve_with_sink(
                source,
                &mut EcoLife::new(
                    fleet.clone(),
                    EcoLifeConfig::default().with_queue_aware_placement(),
                ),
                &mut sink,
            )
            .expect("in-order stream over a known catalog");
        (metrics, sink)
    });
    assert_eq!(live.records, aware.records, "service must equal batch");
    assert_eq!(live.rejected, aware.rejected);
    if let Some(d) = first_divergence(&aware_sink.lines(), &live_sink.lines()) {
        panic!("live stream diverged from batch: {d:?}");
    }
    assert_eq!(live_sink.tip(), aware_sink.tip());

    println!(
        "asserted: saturation rejects; backlog shifts placement; live service ≡ batch\n\
         ({} producer threads, chain tip {})",
        producers,
        live_sink.tip().unwrap_or("<empty>")
    );
}

//! The Sec. IV-A objective and its normalization constants.
//!
//! ```text
//! argmin_{l ∈ L, k ∈ K}  λs·E[S_{f,l,k}]/S_max
//!                      + λc·E[SC_{f,l,k}]/SC_max
//!                      + λc·KC_{f,l,k}/KC_max
//! ```
//!
//! with `L` the fleet's node set, `S_max` the worst cold service time
//! across the fleet (the two-node case: cold start + execution on the
//! older generation), `SC_max` the worst cold-service carbon, and
//! `KC_max` the worst-case carbon of the longest keep-alive anywhere in
//! the fleet. The same pieces feed the EPDM score (`fscore`), the
//! warm-pool priority ranking, and the Oracle brute force, so they live
//! in one place.
//!
//! On a multi-region fleet each node burns its own grid's intensity, so
//! every carbon-bearing composite takes `ci_by_node` — the intensity on
//! each node's grid at the decision instant, indexed by `NodeId`
//! (build one with [`CostModel::uniform_ci`] for the single-region
//! case, or read it off `InvocationCtx::ci`). Scalar-`ci` leaf methods
//! (`*_carbon_g`) remain per-node quantities: the caller passes that
//! node's intensity.

use ecolife_carbon::{CarbonModel, CiProvider, TransferCost};
use ecolife_hw::{Fleet, NodeId, PerfModel};
use ecolife_trace::{FunctionId, FunctionProfile};

/// Cost calculator bound to a hardware fleet and carbon model.
#[derive(Debug, Clone)]
pub struct CostModel {
    fleet: Fleet,
    carbon: CarbonModel,
    pub lambda_s: f64,
    pub lambda_c: f64,
    /// Platform setup delay added to every service (mirrors the engine).
    pub setup_delay_ms: u64,
    /// Largest keep-alive period on the grid (ms) — KC_max's duration.
    pub max_keepalive_ms: u64,
    /// What a cross-node migration costs (see
    /// [`CostModel::transfer_ranking`]); [`TransferCost::free`] by
    /// default, which leaves every ranking exactly as it was when
    /// transfers were unpriced.
    pub transfer: TransferCost,
}

impl CostModel {
    pub fn new(
        fleet: impl Into<Fleet>,
        carbon: CarbonModel,
        lambda_s: f64,
        lambda_c: f64,
        setup_delay_ms: u64,
        max_keepalive_ms: u64,
    ) -> Self {
        assert!(max_keepalive_ms > 0);
        CostModel {
            fleet: fleet.into(),
            carbon,
            lambda_s,
            lambda_c,
            setup_delay_ms,
            max_keepalive_ms,
            transfer: TransferCost::free(),
        }
    }

    /// This model with priced migrations (builder style).
    pub fn with_transfer_cost(mut self, transfer: TransferCost) -> Self {
        self.transfer = transfer;
        self
    }

    #[inline]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    #[inline]
    pub fn carbon_model(&self) -> &CarbonModel {
        &self.carbon
    }

    /// One intensity for every node — the single-region `ci_by_node`.
    pub fn uniform_ci(&self, ci: f64) -> Vec<f64> {
        vec![ci; self.fleet.len()]
    }

    #[inline]
    fn ci_at(&self, ci_by_node: &[f64], l: NodeId) -> f64 {
        debug_assert_eq!(ci_by_node.len(), self.fleet.len());
        ci_by_node[l.index()]
    }

    // -- service time ------------------------------------------------------

    /// Warm service time on node `l` (ms), setup included.
    pub fn warm_service_ms(&self, l: impl Into<NodeId>, f: &FunctionProfile) -> u64 {
        self.setup_delay_ms
            + PerfModel::warm_service_ms(self.fleet.node(l), f.base_exec_ms, f.cpu_sensitivity)
    }

    /// Cold service time on node `l` (ms), setup included.
    pub fn cold_service_ms(&self, l: impl Into<NodeId>, f: &FunctionProfile) -> u64 {
        self.setup_delay_ms
            + PerfModel::cold_service_ms(
                self.fleet.node(l),
                f.base_exec_ms,
                f.base_cold_ms,
                f.cpu_sensitivity,
            )
    }

    /// `S_max`: the worst cold service time anywhere in the fleet (the
    /// two-node case: cold start + execution on the older generation).
    pub fn s_max(&self, f: &FunctionProfile) -> f64 {
        self.fleet
            .ids()
            .map(|l| self.cold_service_ms(l, f))
            .max()
            .expect("fleet is non-empty") as f64
    }

    // -- service carbon ----------------------------------------------------

    /// Carbon of a warm service on `l` at intensity `ci` (g).
    pub fn warm_service_carbon_g(&self, l: impl Into<NodeId>, f: &FunctionProfile, ci: f64) -> f64 {
        let l = l.into();
        let d = self.warm_service_ms(l, f);
        self.carbon
            .active_phase(self.fleet.node(l), f.memory_mib, d, ci)
            .total_g()
    }

    /// Carbon of a cold service on `l` at intensity `ci` (g).
    pub fn cold_service_carbon_g(&self, l: impl Into<NodeId>, f: &FunctionProfile, ci: f64) -> f64 {
        let l = l.into();
        let d = self.cold_service_ms(l, f);
        self.carbon
            .active_phase(self.fleet.node(l), f.memory_mib, d, ci)
            .total_g()
    }

    /// `SC_max`: the worst cold-service carbon across the fleet, each
    /// node priced at its own grid's intensity.
    pub fn sc_max(&self, f: &FunctionProfile, ci_by_node: &[f64]) -> f64 {
        self.fleet
            .ids()
            .map(|l| self.cold_service_carbon_g(l, f, self.ci_at(ci_by_node, l)))
            .fold(0.0f64, f64::max)
            .max(1e-12)
    }

    // -- keep-alive carbon -------------------------------------------------

    /// Carbon of keeping `f` warm on `l` for `duration_ms` at `ci` (g).
    pub fn keepalive_carbon_g(
        &self,
        l: impl Into<NodeId>,
        f: &FunctionProfile,
        duration_ms: u64,
        ci: f64,
    ) -> f64 {
        if duration_ms == 0 {
            return 0.0;
        }
        self.carbon
            .keepalive_phase(self.fleet.node(l), f.memory_mib, duration_ms, ci)
            .total_g()
    }

    /// `KC_max`: the worst-case carbon of the longest keep-alive anywhere
    /// in the fleet (the two-node case: on the newer generation), each
    /// node priced at its own grid's intensity.
    pub fn kc_max(&self, f: &FunctionProfile, ci_by_node: &[f64]) -> f64 {
        self.fleet
            .ids()
            .map(|l| {
                self.keepalive_carbon_g(l, f, self.max_keepalive_ms, self.ci_at(ci_by_node, l))
            })
            .fold(0.0f64, f64::max)
            .max(1e-12)
    }

    // -- energy (Energy-Opt) -------------------------------------------------

    /// Energy of a (cold or warm) service on `l` (kWh).
    pub fn service_energy_kwh(&self, l: impl Into<NodeId>, f: &FunctionProfile, warm: bool) -> f64 {
        let l = l.into();
        let d = if warm {
            self.warm_service_ms(l, f)
        } else {
            self.cold_service_ms(l, f)
        };
        self.carbon
            .active_energy_kwh(self.fleet.node(l), f.memory_mib, d)
    }

    /// Energy of a keep-alive on `l` (kWh).
    pub fn keepalive_energy_kwh(
        &self,
        l: impl Into<NodeId>,
        f: &FunctionProfile,
        duration_ms: u64,
    ) -> f64 {
        let l = l.into();
        self.carbon
            .keepalive_energy_kwh(self.fleet.node(l), f.memory_mib, duration_ms)
    }

    // -- composite scores ----------------------------------------------------

    /// The EPDM execution-placement score for a *cold* execution on `r`
    /// (Sec. IV-D): `fscore = λs·S_r/S_max + λc·SC_r/SC_max`, with `r`'s
    /// carbon priced at its own grid's intensity.
    pub fn epdm_score(&self, r: impl Into<NodeId>, f: &FunctionProfile, ci_by_node: &[f64]) -> f64 {
        let r = r.into();
        let s = self.cold_service_ms(r, f) as f64 / self.s_max(f);
        let sc = self.cold_service_carbon_g(r, f, self.ci_at(ci_by_node, r))
            / self.sc_max(f, ci_by_node);
        self.lambda_s * s + self.lambda_c * sc
    }

    /// EPDM choice for a cold execution: the `fscore`-minimizing fleet
    /// node (ties resolve to the lowest id — the two-node case: old), or
    /// `allowed` when the scheduler is restricted to one node. On a
    /// multi-region fleet this is where execution placement starts
    /// trading grid mixes: a node on a momentarily clean grid wins over
    /// an identical node on a dirty one.
    pub fn epdm_choice(
        &self,
        f: &FunctionProfile,
        ci_by_node: &[f64],
        allowed: Option<NodeId>,
    ) -> NodeId {
        match allowed {
            Some(l) => l,
            None => {
                let mut best = NodeId(0);
                let mut best_score = self.epdm_score(best, f, ci_by_node);
                for l in self.fleet.ids().skip(1) {
                    let score = self.epdm_score(l, f, ci_by_node);
                    if score < best_score {
                        best = l;
                        best_score = score;
                    }
                }
                best
            }
        }
    }

    /// Queue-aware EPDM score: the cold-placement `fscore` plus the
    /// queueing delay an arrival would measure on `r`'s bounded executor
    /// right now, normalized like any other service-time term
    /// (`λs · Q_r / S_max`). With `queue_ms == 0` this is *exactly*
    /// [`CostModel::epdm_score`] — adding a zero term does not perturb
    /// the float — which is what keeps queue-aware placement
    /// bit-identical to the classic scan whenever executors are idle or
    /// disabled.
    pub fn epdm_score_queued(
        &self,
        r: impl Into<NodeId>,
        f: &FunctionProfile,
        ci_by_node: &[f64],
        queue_ms: u64,
    ) -> f64 {
        let r = r.into();
        self.epdm_score(r, f, ci_by_node) + self.lambda_s * (queue_ms as f64 / self.s_max(f))
    }

    /// Queue-aware [`CostModel::epdm_choice`]: the same strict-less scan
    /// from node 0, scoring each node with
    /// [`CostModel::epdm_score_queued`] at `queue_ms[node]` — the
    /// measured per-node executor backlog
    /// (`Cluster::queue_wait_ms` in `ecolife-sim`). A node drowning in
    /// queued work loses placements it would win on carbon alone, so
    /// EcoLife balances load *and* carbon instead of piling onto the
    /// greenest node. An all-zero `queue_ms` reproduces `epdm_choice`
    /// bit-for-bit.
    pub fn epdm_choice_queued(
        &self,
        f: &FunctionProfile,
        ci_by_node: &[f64],
        allowed: Option<NodeId>,
        queue_ms: &[u64],
    ) -> NodeId {
        match allowed {
            Some(l) => l,
            None => {
                let mut best = NodeId(0);
                let mut best_score = self.epdm_score_queued(best, f, ci_by_node, queue_ms[0]);
                for l in self.fleet.ids().skip(1) {
                    let score = self.epdm_score_queued(l, f, ci_by_node, queue_ms[l.index()]);
                    if score < best_score {
                        best = l;
                        best_score = score;
                    }
                }
                best
            }
        }
    }

    /// The full expected objective of choosing (`l`, `k`) for `f`, given
    /// the online estimates `p_warm = P(gap ≤ k)` and
    /// `expected_resident_ms = E[min(gap, k)]` (pass exact values to turn
    /// this into the Oracle objective).
    ///
    /// The cold branch executes where the EPDM would place it.
    #[allow(clippy::too_many_arguments)]
    pub fn expected_objective(
        &self,
        f: &FunctionProfile,
        l: impl Into<NodeId>,
        k_ms: u64,
        p_warm: f64,
        expected_resident_ms: f64,
        ci_by_node: &[f64],
        allowed: Option<NodeId>,
    ) -> f64 {
        let l = l.into();
        let ci_l = self.ci_at(ci_by_node, l);
        let p_warm = if k_ms == 0 {
            0.0
        } else {
            p_warm.clamp(0.0, 1.0)
        };
        let cold_loc = self.epdm_choice(f, ci_by_node, allowed);

        // E[S]
        let s_warm = self.warm_service_ms(l, f) as f64;
        let s_cold = self.cold_service_ms(cold_loc, f) as f64;
        let e_s = p_warm * s_warm + (1.0 - p_warm) * s_cold;

        // E[SC] — each branch priced on the grid it would run on.
        let sc_warm = self.warm_service_carbon_g(l, f, ci_l);
        let sc_cold = self.cold_service_carbon_g(cold_loc, f, self.ci_at(ci_by_node, cold_loc));
        let e_sc = p_warm * sc_warm + (1.0 - p_warm) * sc_cold;

        // KC over the expected resident time, on the hosting node's grid.
        let resident = expected_resident_ms.clamp(0.0, k_ms as f64);
        let kc = if k_ms == 0 {
            0.0
        } else {
            self.keepalive_carbon_g(l, f, resident.round() as u64, ci_l)
        };

        self.lambda_s * e_s / self.s_max(f)
            + self.lambda_c * e_sc / self.sc_max(f, ci_by_node)
            + self.lambda_c * kc / self.kc_max(f, ci_by_node)
    }

    /// The warm-pool priority score of keeping `f` alive on `l`:
    /// the (normalized) service-time and carbon benefit of a warm start
    /// over a cold start (Sec. IV-C "calculating the difference in
    /// service time and carbon footprint between cold start and warm
    /// start"). Higher = more valuable to keep.
    pub fn keepalive_benefit(
        &self,
        l: impl Into<NodeId>,
        f: &FunctionProfile,
        ci_by_node: &[f64],
    ) -> f64 {
        let l = l.into();
        let cold_loc = self.epdm_choice(f, ci_by_node, None);
        let ds = (self.cold_service_ms(cold_loc, f) as f64 - self.warm_service_ms(l, f) as f64)
            / self.s_max(f);
        let dc = (self.cold_service_carbon_g(cold_loc, f, self.ci_at(ci_by_node, cold_loc))
            - self.warm_service_carbon_g(l, f, self.ci_at(ci_by_node, l)))
            / self.sc_max(f, ci_by_node);
        self.lambda_s * ds + self.lambda_c * dc
    }

    /// Transfer targets for containers displaced from `exclude`, ranked
    /// cheapest-to-keep-warm first (per-MiB keep-alive carbon of a
    /// one-minute reference residency, each node priced at its own
    /// grid's intensity; ties resolve to the lowest id). The engine
    /// tries displaced containers against this ranking in order.
    ///
    /// When migrations are priced ([`CostModel::transfer`]), targets
    /// whose reference keep-alive saving beats the egress price (the
    /// same 1-GiB reference, charged at the *source* grid's intensity)
    /// are stably moved ahead of those that don't — a displaced
    /// container still prefers any warm slot over eviction, but never
    /// pays egress for a dirtier grid while a paying move exists. With
    /// [`TransferCost::free`] the partition is the identity and the
    /// ranking is exactly the unpriced one.
    pub fn transfer_ranking(&self, exclude: NodeId, ci_by_node: &[f64]) -> Vec<NodeId> {
        // 1-GiB reference container over one minute: enough to order the
        // nodes; the ordering is memory-size-independent to first order
        // because both the power and embodied terms are affine in MiB.
        let reference = |l: NodeId| -> f64 {
            self.carbon
                .keepalive_phase(self.fleet.node(l), 1024, 60_000, self.ci_at(ci_by_node, l))
                .total_g()
        };
        let mut targets = self.fleet.transfer_candidates(exclude);
        targets.sort_by(|a, b| {
            reference(*a)
                .partial_cmp(&reference(*b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        if !self.transfer.is_free() {
            let stay_g = reference(exclude);
            let egress_g = self.transfer.grams(1024, self.ci_at(ci_by_node, exclude));
            let (paying, losing): (Vec<NodeId>, Vec<NodeId>) = targets
                .into_iter()
                .partition(|&l| stay_g - reference(l) > egress_g);
            targets = paying;
            targets.extend(losing);
        }
        targets
    }
}

/// Milliseconds per minute — the CI-series resolution, and therefore
/// the rate at which the tables' CI-dependent composites can move.
use ecolife_sim::MINUTE_MS;

/// Per-function precompute for one fleet: everything
/// [`CostModel::expected_objective`] derives from `(node, profile)` alone,
/// split into CI-independent constants (built once per function) and
/// CI-dependent composites (refreshed when the per-node intensity vector
/// moves — at most once per simulated minute).
///
/// Every cached value is an *exact intermediate* of the corresponding
/// `CostModel` computation — energies and embodied grams are cached as
/// the same `f64`s `active_phase`/`keepalive_phase` produce, and the
/// composites are rebuilt with the identical operation order
/// (`energy * ci + embodied`) — so scores read through the tables are
/// bit-identical to the uncached path, never merely close.
#[derive(Debug, Clone)]
struct FunctionTables {
    // -- CI-independent (per node, indexed by `NodeId`) ------------------
    /// `warm_service_ms` / `cold_service_ms` per node.
    warm_ms: Vec<u64>,
    cold_ms: Vec<u64>,
    /// Active-phase energy (kWh) of a warm/cold service per node.
    warm_energy_kwh: Vec<f64>,
    cold_energy_kwh: Vec<f64>,
    /// Active-phase embodied grams of a warm/cold service per node
    /// (CI-independent by construction).
    warm_embodied_g: Vec<f64>,
    cold_embodied_g: Vec<f64>,
    /// Keep-alive energy/embodied for the full `max_keepalive_ms` —
    /// the `KC_max` ingredients.
    ka_max_energy_kwh: Vec<f64>,
    ka_max_embodied_g: Vec<f64>,
    /// `S_max` (worst cold service anywhere in the fleet).
    s_max: f64,

    // -- CI-dependent (refreshed per intensity epoch) --------------------
    /// The minute this row's composites were last refreshed at.
    minute: Option<u64>,
    /// Warm/cold service carbon per node at the epoch's intensities.
    warm_carbon_g: Vec<f64>,
    cold_carbon_g: Vec<f64>,
    /// `SC_max` / `KC_max` at the epoch's intensities.
    sc_max: f64,
    kc_max: f64,
    /// The unrestricted EPDM choice at the epoch's intensities.
    epdm_best: NodeId,
}

/// Cached view over a [`CostModel`]: the EcoLife decision hot path reads
/// every fleet-wide scan (`s_max`, `sc_max`, `kc_max`, EPDM ranking,
/// transfer ranking) through this layer instead of recomputing it inside
/// every DPSO particle evaluation.
///
/// Scope of validity: intensities are minute-resolution
/// ([`ecolife_carbon::CarbonIntensityTrace::at`] is piecewise-constant
/// per minute), so the CI-dependent composites are keyed on the simulated
/// minute and refreshed lazily. All cached composites are built with the
/// exact operation order of the corresponding `CostModel` method —
/// results are bit-identical to the uncached path (pinned by
/// `tests/hotpath.rs` and the unit tests below).
#[derive(Debug, Clone)]
pub struct ObjectiveTables {
    cost: CostModel,
    /// The minute `ci_by_node` currently reflects.
    minute: Option<u64>,
    /// Intensity on every node's grid at `minute` (indexed by `NodeId`).
    ci_by_node: Vec<f64>,
    /// Per-function rows, indexed by raw `FunctionId` (trace construction
    /// guarantees ids are dense in `0..catalog.len()`).
    rows: Vec<Option<Box<FunctionTables>>>,
    /// Memoized transfer rankings per excluded node, tagged with the
    /// minute they were computed at.
    transfer: Vec<Option<(u64, Vec<NodeId>)>>,
}

impl ObjectiveTables {
    pub fn new(cost: CostModel) -> Self {
        let n_nodes = cost.fleet().len();
        ObjectiveTables {
            transfer: vec![None; n_nodes],
            ci_by_node: Vec::with_capacity(n_nodes),
            minute: None,
            rows: Vec::new(),
            cost,
        }
    }

    /// The wrapped cost model.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Intensity on every node's grid at the current epoch (valid after
    /// [`ObjectiveTables::refresh`]).
    #[inline]
    pub fn ci_by_node(&self) -> &[f64] {
        &self.ci_by_node
    }

    /// Drop all cached state (new trace / new catalog).
    pub fn reset(&mut self) {
        self.minute = None;
        self.ci_by_node.clear();
        self.rows.clear();
        self.transfer.iter_mut().for_each(|slot| *slot = None);
    }

    /// Bring the per-node intensity vector up to `t_ms`'s minute. Cheap
    /// when the minute is unchanged (the common case: every invocation
    /// within a minute shares one epoch).
    pub fn refresh(&mut self, ci: &CiProvider<'_>, t_ms: u64) {
        let minute = t_ms / MINUTE_MS;
        if self.minute == Some(minute) {
            return;
        }
        self.minute = Some(minute);
        self.ci_by_node.clear();
        let fleet = self.cost.fleet();
        self.ci_by_node
            .extend(fleet.ids().map(|id| ci.at(id, t_ms)));
    }

    /// Ensure the row for `func` exists with CI-dependent composites at
    /// the current epoch (builds / refreshes lazily); returns its index.
    fn ensure_row(&mut self, func: FunctionId, f: &FunctionProfile) -> usize {
        let idx = func.as_usize();
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, || None);
        }
        if self.rows[idx].is_none() {
            self.rows[idx] = Some(Box::new(self.build_static(f)));
        }
        // Refresh the CI-dependent composites when the epoch moved.
        let minute = self.minute.expect("refresh() must run before row access");
        let needs_refresh = self.rows[idx].as_ref().expect("row built").minute != Some(minute);
        if needs_refresh {
            let mut row = self.rows[idx].take().expect("row built");
            self.refresh_row(&mut row);
            self.rows[idx] = Some(row);
        }
        idx
    }

    /// Build the CI-independent half of a function's row.
    fn build_static(&self, f: &FunctionProfile) -> FunctionTables {
        let cost = &self.cost;
        let fleet = cost.fleet();
        let carbon = cost.carbon_model();
        let n = fleet.len();
        let mut t = FunctionTables {
            warm_ms: Vec::with_capacity(n),
            cold_ms: Vec::with_capacity(n),
            warm_energy_kwh: Vec::with_capacity(n),
            cold_energy_kwh: Vec::with_capacity(n),
            warm_embodied_g: Vec::with_capacity(n),
            cold_embodied_g: Vec::with_capacity(n),
            ka_max_energy_kwh: Vec::with_capacity(n),
            ka_max_embodied_g: Vec::with_capacity(n),
            s_max: cost.s_max(f),
            minute: None,
            warm_carbon_g: vec![0.0; n],
            cold_carbon_g: vec![0.0; n],
            sc_max: 0.0,
            kc_max: 0.0,
            epdm_best: NodeId(0),
        };
        for l in fleet.ids() {
            let node = fleet.node(l);
            let warm_ms = cost.warm_service_ms(l, f);
            let cold_ms = cost.cold_service_ms(l, f);
            t.warm_ms.push(warm_ms);
            t.cold_ms.push(cold_ms);
            t.warm_energy_kwh.push(cost.service_energy_kwh(l, f, true));
            t.cold_energy_kwh.push(cost.service_energy_kwh(l, f, false));
            // `active_phase` at CI 0 isolates the embodied grams as the
            // exact `f64` every other `active_phase` call produces.
            t.warm_embodied_g.push(
                carbon
                    .active_phase(node, f.memory_mib, warm_ms, 0.0)
                    .embodied_g,
            );
            t.cold_embodied_g.push(
                carbon
                    .active_phase(node, f.memory_mib, cold_ms, 0.0)
                    .embodied_g,
            );
            t.ka_max_energy_kwh
                .push(cost.keepalive_energy_kwh(l, f, cost.max_keepalive_ms));
            t.ka_max_embodied_g.push(
                carbon
                    .keepalive_phase(node, f.memory_mib, cost.max_keepalive_ms, 0.0)
                    .embodied_g,
            );
        }
        t
    }

    /// Rebuild a row's CI-dependent composites at the current epoch with
    /// exactly the operation order of the uncached `CostModel` methods.
    fn refresh_row(&self, t: &mut FunctionTables) {
        let cost = &self.cost;
        let n = cost.fleet().len();
        for l in 0..n {
            let ci_l = self.ci_by_node[l];
            // == `warm/cold_service_carbon_g`: operational (energy × ci)
            // plus embodied, in that order.
            t.warm_carbon_g[l] = t.warm_energy_kwh[l] * ci_l + t.warm_embodied_g[l];
            t.cold_carbon_g[l] = t.cold_energy_kwh[l] * ci_l + t.cold_embodied_g[l];
        }
        // == `sc_max` / `kc_max`: fold-max in id order, floored at 1e-12.
        t.sc_max = t
            .cold_carbon_g
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        t.kc_max = (0..n)
            .map(|l| t.ka_max_energy_kwh[l] * self.ci_by_node[l] + t.ka_max_embodied_g[l])
            .fold(0.0f64, f64::max)
            .max(1e-12);
        // == `epdm_choice(f, ci, None)`: strict-less scan from node 0.
        let score = |l: usize| -> f64 {
            let s = t.cold_ms[l] as f64 / t.s_max;
            let sc = t.cold_carbon_g[l] / t.sc_max;
            cost.lambda_s * s + cost.lambda_c * sc
        };
        let mut best = 0usize;
        let mut best_score = score(0);
        for l in 1..n {
            let sc = score(l);
            if sc < best_score {
                best = l;
                best_score = sc;
            }
        }
        t.epdm_best = NodeId(best as u32);
        t.minute = self.minute;
    }

    /// Cached [`CostModel::epdm_choice`] at the current epoch.
    pub fn epdm_choice(
        &mut self,
        func: FunctionId,
        f: &FunctionProfile,
        allowed: Option<NodeId>,
    ) -> NodeId {
        match allowed {
            Some(l) => l,
            None => {
                let idx = self.ensure_row(func, f);
                self.rows[idx].as_deref().expect("row built").epdm_best
            }
        }
    }

    /// Cached [`CostModel::epdm_choice_queued`] at the current epoch.
    ///
    /// Fast path: when every queue term is zero the answer is the
    /// cached `epdm_best` — no scan, and bit-identical to
    /// [`ObjectiveTables::epdm_choice`], which is what makes
    /// queue-aware placement free (and invisible) until a node actually
    /// saturates. With backlog present, the scan recomputes scores with
    /// exactly the uncached method's operation order
    /// (`λs·s + λc·sc` then `+ λs·(Q/S_max)`), so cached and uncached
    /// queued choices agree bit-for-bit too.
    pub fn epdm_choice_queued(
        &mut self,
        func: FunctionId,
        f: &FunctionProfile,
        allowed: Option<NodeId>,
        queue_ms: &[u64],
    ) -> NodeId {
        match allowed {
            Some(l) => l,
            None => {
                let idx = self.ensure_row(func, f);
                let row = self.rows[idx].as_deref().expect("row built");
                if queue_ms.iter().all(|&q| q == 0) {
                    return row.epdm_best;
                }
                let cost = &self.cost;
                let score = |l: usize| -> f64 {
                    let s = row.cold_ms[l] as f64 / row.s_max;
                    let sc = row.cold_carbon_g[l] / row.sc_max;
                    cost.lambda_s * s
                        + cost.lambda_c * sc
                        + cost.lambda_s * (queue_ms[l] as f64 / row.s_max)
                };
                let mut best = 0usize;
                let mut best_score = score(0);
                for l in 1..cost.fleet().len() {
                    let sc = score(l);
                    if sc < best_score {
                        best = l;
                        best_score = sc;
                    }
                }
                NodeId(best as u32)
            }
        }
    }

    /// Fill `out` with the expected objective of every `(node, grid
    /// index)` keep-alive choice — the whole KDM fitness landscape of one
    /// decision, so the swarm's 100+ particle evaluations become table
    /// lookups. `p_warm[i]` / `resident_ms[i]` are the predictor's
    /// answers for `grid_min[i]`; with `restrict` set only that node's
    /// stripe is computed (the decode rule never leaves it).
    ///
    /// Each entry is numerically identical to
    /// [`CostModel::expected_objective`] with the same arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_objective_grid(
        &mut self,
        func: FunctionId,
        f: &FunctionProfile,
        grid_min: &[u64],
        p_warm: &[f64],
        resident_ms: &[f64],
        restrict: Option<NodeId>,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(grid_min.len(), p_warm.len());
        debug_assert_eq!(grid_min.len(), resident_ms.len());
        let idx_row = self.ensure_row(func, f);
        let Self {
            cost,
            rows,
            ci_by_node,
            minute,
            ..
        } = self;
        let row = rows[idx_row].as_deref().expect("row built");
        debug_assert_eq!(row.minute, *minute);
        let n_nodes = row.warm_ms.len();
        let glen = grid_min.len();
        out.clear();
        out.resize(n_nodes * glen, f64::INFINITY);

        // The cold branch executes where the EPDM would place it —
        // constant across the whole grid (`expected_objective` recomputes
        // it per call; the value is identical).
        let cold_loc = restrict.unwrap_or(row.epdm_best).index();
        let s_cold = row.cold_ms[cold_loc] as f64;
        let sc_cold = row.cold_carbon_g[cold_loc];

        let nodes: std::ops::Range<usize> = match restrict {
            Some(l) => l.index()..l.index() + 1,
            None => 0..n_nodes,
        };
        for l in nodes {
            let ci_l = ci_by_node[l];
            let s_warm = row.warm_ms[l] as f64;
            let sc_warm = row.warm_carbon_g[l];
            for (idx, &k_min) in grid_min.iter().enumerate() {
                let k_ms = k_min * MINUTE_MS;
                let p = if k_ms == 0 {
                    0.0
                } else {
                    p_warm[idx].clamp(0.0, 1.0)
                };
                let e_s = p * s_warm + (1.0 - p) * s_cold;
                let e_sc = p * sc_warm + (1.0 - p) * sc_cold;
                let resident = resident_ms[idx].clamp(0.0, k_ms as f64);
                let kc = if k_ms == 0 {
                    0.0
                } else {
                    cost.keepalive_carbon_g(NodeId(l as u32), f, resident.round() as u64, ci_l)
                };
                out[l * glen + idx] = cost.lambda_s * e_s / row.s_max
                    + cost.lambda_c * e_sc / row.sc_max
                    + cost.lambda_c * kc / row.kc_max;
            }
        }
    }

    /// Memoized [`CostModel::transfer_ranking`]: the ranking depends only
    /// on `(exclude, per-node intensity vector)`, and the intensity
    /// vector is constant within a minute — so overflow storms within a
    /// reconciliation period reuse one sort instead of re-ranking the
    /// fleet per displaced container. `ci_by_node` must be the intensity
    /// snapshot at `t_ms` (what the engine hands `OverflowCtx`).
    pub fn transfer_ranking(
        &mut self,
        exclude: NodeId,
        t_ms: u64,
        ci_by_node: &[f64],
    ) -> &[NodeId] {
        let minute = t_ms / MINUTE_MS;
        let Self { cost, transfer, .. } = self;
        let slot = &mut transfer[exclude.index()];
        let stale = !matches!(slot, Some((m, _)) if *m == minute);
        if stale {
            *slot = Some((minute, cost.transfer_ranking(exclude, ci_by_node)));
        }
        &slot.as_ref().expect("just filled").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::{skus, Generation};
    use ecolife_trace::WorkloadCatalog;

    fn model() -> CostModel {
        CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            0.5,
            0.5,
            50,
            10 * 60_000,
        )
    }

    fn profile(name: &str) -> FunctionProfile {
        WorkloadCatalog::sebs().by_name(name).unwrap().1.clone()
    }

    #[test]
    fn s_max_is_cold_on_old() {
        let m = model();
        let f = profile("220.video-processing");
        assert_eq!(m.s_max(&f), m.cold_service_ms(Generation::Old, &f) as f64);
        assert!(m.s_max(&f) > m.cold_service_ms(Generation::New, &f) as f64);
    }

    #[test]
    fn kc_max_is_the_worst_node() {
        // Pair A: keep-alive on the new node is the expensive option, so
        // the fleet-wide max reproduces the paper's "longest keep-alive
        // on the newer generation" constant.
        let m = model();
        let f = profile("503.graph-bfs");
        assert_eq!(
            m.kc_max(&f, &m.uniform_ci(300.0)),
            m.keepalive_carbon_g(Generation::New, &f, m.max_keepalive_ms, 300.0)
        );
    }

    #[test]
    fn warm_is_faster_than_cold_everywhere() {
        let m = model();
        let f = profile("503.graph-bfs");
        for l in m.fleet().ids().collect::<Vec<_>>() {
            assert!(m.warm_service_ms(l, &f) < m.cold_service_ms(l, &f));
        }
    }

    #[test]
    fn objective_zero_keepalive_has_no_kc_term() {
        let m = model();
        let f = profile("503.graph-bfs");
        let with_k = m.expected_objective(
            &f,
            Generation::Old,
            600_000,
            0.9,
            300_000.0,
            &m.uniform_ci(300.0),
            None,
        );
        let no_k =
            m.expected_objective(&f, Generation::Old, 0, 0.9, 0.0, &m.uniform_ci(300.0), None);
        // k = 0 forces the cold branch: that may be better or worse overall,
        // but its KC term must vanish, which we can see by reconstructing:
        let cold_loc = m.epdm_choice(&f, &m.uniform_ci(300.0), None);
        let expected_no_k = m.lambda_s * m.cold_service_ms(cold_loc, &f) as f64 / m.s_max(&f)
            + m.lambda_c * m.cold_service_carbon_g(cold_loc, &f, 300.0)
                / m.sc_max(&f, &m.uniform_ci(300.0));
        assert!((no_k - expected_no_k).abs() < 1e-12);
        assert!(with_k.is_finite());
    }

    #[test]
    fn higher_warm_probability_lowers_objective_for_keepalive() {
        // Warm starts are strictly better than cold starts in both time
        // and carbon, so the objective must fall as P(warm) rises.
        let m = model();
        let f = profile("220.video-processing");
        let lo = m.expected_objective(
            &f,
            Generation::Old,
            600_000,
            0.1,
            300_000.0,
            &m.uniform_ci(300.0),
            None,
        );
        let hi = m.expected_objective(
            &f,
            Generation::Old,
            600_000,
            0.9,
            300_000.0,
            &m.uniform_ci(300.0),
            None,
        );
        assert!(hi < lo);
    }

    #[test]
    fn epdm_weights_steer_the_placement() {
        // A pure service-time objective must execute on the faster new
        // node; a pure carbon objective must pick the cheaper old node
        // (lower package power and embodied attribution).
        let f = profile("311.compression");
        let time_only = CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            1.0,
            0.0,
            50,
            600_000,
        );
        assert_eq!(
            time_only.epdm_choice(&f, &time_only.uniform_ci(300.0), None),
            NodeId(1)
        );
        let carbon_only = CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            0.0,
            1.0,
            50,
            600_000,
        );
        assert_eq!(
            carbon_only.epdm_choice(&f, &carbon_only.uniform_ci(300.0), None),
            NodeId(0)
        );
    }

    #[test]
    fn epdm_respects_restriction() {
        let m = model();
        let f = profile("311.compression");
        assert_eq!(
            m.epdm_choice(&f, &m.uniform_ci(300.0), Some(Generation::Old.into())),
            NodeId(0)
        );
    }

    #[test]
    fn epdm_scans_the_whole_fleet() {
        // On the three-generation fleet a pure service-time objective
        // picks the newest node, a pure carbon objective the oldest.
        let f = profile("311.compression");
        let fleet = skus::fleet_three_generations();
        let time_only =
            CostModel::new(fleet.clone(), CarbonModel::default(), 1.0, 0.0, 50, 600_000);
        assert_eq!(
            time_only.epdm_choice(&f, &time_only.uniform_ci(300.0), None),
            NodeId(2)
        );
        let carbon_only = CostModel::new(fleet, CarbonModel::default(), 0.0, 1.0, 50, 600_000);
        assert_eq!(
            carbon_only.epdm_choice(&f, &carbon_only.uniform_ci(300.0), None),
            NodeId(0)
        );
    }

    #[test]
    fn queued_choice_with_zero_backlog_is_the_classic_choice() {
        let m = model();
        let f = profile("311.compression");
        let ci = m.uniform_ci(300.0);
        let zero = vec![0u64; m.fleet().len()];
        assert_eq!(
            m.epdm_choice_queued(&f, &ci, None, &zero),
            m.epdm_choice(&f, &ci, None)
        );
        for l in m.fleet().ids() {
            assert_eq!(m.epdm_score_queued(l, &f, &ci, 0), m.epdm_score(l, &f, &ci));
        }
        // Restriction wins regardless of backlog.
        assert_eq!(
            m.epdm_choice_queued(&f, &ci, Some(NodeId(1)), &[1_000_000, 0]),
            NodeId(1)
        );
    }

    #[test]
    fn backlog_shifts_placement_off_the_saturated_node() {
        let m = model();
        let f = profile("311.compression");
        let ci = m.uniform_ci(300.0);
        let free = m.epdm_choice(&f, &ci, None);
        let other = NodeId(1 - free.0);
        // Pile queueing delay onto the classic winner until the score
        // gap flips: a λs-weighted S_max of backlog always dominates the
        // bounded [0, 1]-ish fscore difference.
        let mut queue = vec![0u64; m.fleet().len()];
        queue[free.index()] = (4.0 * m.s_max(&f)) as u64;
        assert_eq!(m.epdm_choice_queued(&f, &ci, None, &queue), other);
    }

    #[test]
    fn tables_reproduce_queued_choice_bit_for_bit() {
        use ecolife_carbon::{CarbonIntensityTrace, CiProvider};
        let fleet = skus::fleet_three_generations();
        let cost = CostModel::new(fleet.clone(), CarbonModel::default(), 0.5, 0.5, 50, 600_000);
        let mut tables = ObjectiveTables::new(cost.clone());
        let ci = CarbonIntensityTrace::synthetic(ecolife_hw::Region::Caiso, 120, 9);
        let provider = CiProvider::shared(&ci, &fleet);
        let catalog = WorkloadCatalog::sebs();
        for (minute, (func, f)) in catalog.iter().enumerate().take(6) {
            let t_ms = minute as u64 * 7 * 60_000;
            tables.refresh(&provider, t_ms);
            let ci_by_node = provider.at_each_node(t_ms);
            for queue in [
                vec![0, 0, 0],
                vec![900, 0, 0],
                vec![0, 40_000, 120_000],
                vec![5_000_000, 5_000_000, 0],
            ] {
                assert_eq!(
                    tables.epdm_choice_queued(func, f, None, &queue),
                    cost.epdm_choice_queued(f, &ci_by_node, None, &queue),
                    "fn {func} queue {queue:?}"
                );
            }
        }
    }

    #[test]
    fn keepalive_on_old_is_cheaper_in_objective_terms_at_high_ci() {
        // For a small CPU-light function at high CI: same expectations,
        // keep-alive on OLD should cost less than on NEW (this is the
        // heart of the multi-generation insight).
        let m = model();
        let f = profile("503.graph-bfs");
        let old = m.expected_objective(
            &f,
            Generation::Old,
            600_000,
            0.8,
            240_000.0,
            &m.uniform_ci(300.0),
            None,
        );
        let new = m.expected_objective(
            &f,
            Generation::New,
            600_000,
            0.8,
            240_000.0,
            &m.uniform_ci(300.0),
            None,
        );
        assert!(old < new, "old {old} vs new {new}");
    }

    #[test]
    fn keepalive_benefit_positive_for_cold_heavy_function() {
        // image-recognition has a 4 s cold start vs 0.8 s exec: keeping it
        // warm must look valuable.
        let m = model();
        let f = profile("411.image-recognition");
        for l in m.fleet().ids().collect::<Vec<_>>() {
            assert!(m.keepalive_benefit(l, &f, &m.uniform_ci(300.0)) > 0.0);
        }
    }

    #[test]
    fn normalized_terms_are_order_unity() {
        let m = model();
        let f = profile("504.dna-visualization");
        let obj = m.expected_objective(
            &f,
            Generation::New,
            600_000,
            0.5,
            300_000.0,
            &m.uniform_ci(250.0),
            None,
        );
        assert!(obj > 0.0 && obj < 3.0, "objective {obj} badly scaled");
    }

    #[test]
    fn energy_accessors_positive_and_ordered() {
        let m = model();
        let f = profile("220.video-processing");
        let cold = m.service_energy_kwh(Generation::New, &f, false);
        let warm = m.service_energy_kwh(Generation::New, &f, true);
        assert!(cold > warm);
        assert!(m.keepalive_energy_kwh(Generation::Old, &f, 600_000) > 0.0);
    }

    #[test]
    fn tables_reproduce_expected_objective_bit_for_bit() {
        use ecolife_carbon::{CarbonIntensityTrace, CiProvider};
        let fleet = skus::fleet_three_generations();
        let cost = CostModel::new(fleet.clone(), CarbonModel::default(), 0.5, 0.5, 50, 600_000);
        let mut tables = ObjectiveTables::new(cost.clone());
        let ci = CarbonIntensityTrace::synthetic(ecolife_hw::Region::Caiso, 120, 9);
        let provider = CiProvider::shared(&ci, &fleet);
        let grid: Vec<u64> = (0..=10).collect();
        let p_warm: Vec<f64> = grid.iter().map(|&m| 0.08 * m as f64 + 0.05).collect();
        let resident: Vec<f64> = grid.iter().map(|&m| 0.4 * (m * 60_000) as f64).collect();
        let catalog = WorkloadCatalog::sebs();
        let mut out = Vec::new();
        for t_ms in [0u64, 30_000, 61_000, 45 * 60_000] {
            tables.refresh(&provider, t_ms);
            let ci_by_node = provider.at_each_node(t_ms);
            assert_eq!(tables.ci_by_node(), &ci_by_node[..]);
            for (func, f) in catalog.iter().take(4) {
                for restrict in [None, Some(NodeId(1))] {
                    assert_eq!(
                        tables.epdm_choice(func, f, restrict),
                        cost.epdm_choice(f, &ci_by_node, restrict)
                    );
                    tables.fill_objective_grid(
                        func, f, &grid, &p_warm, &resident, restrict, &mut out,
                    );
                    let nodes: Vec<NodeId> = match restrict {
                        Some(l) => vec![l],
                        None => fleet.ids().collect(),
                    };
                    for &l in &nodes {
                        for (idx, &k_min) in grid.iter().enumerate() {
                            let want = cost.expected_objective(
                                f,
                                l,
                                k_min * 60_000,
                                p_warm[idx],
                                resident[idx],
                                &ci_by_node,
                                restrict,
                            );
                            let got = out[l.index() * grid.len() + idx];
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "t={t_ms} f={func} l={l} k={k_min}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tables_transfer_ranking_matches_and_memoizes() {
        use ecolife_carbon::{CarbonIntensityTrace, CiProvider};
        let fleet = skus::fleet_three_generations();
        let cost = CostModel::new(fleet.clone(), CarbonModel::default(), 0.5, 0.5, 50, 600_000);
        let mut tables = ObjectiveTables::new(cost.clone());
        let ci = CarbonIntensityTrace::synthetic(ecolife_hw::Region::Texas, 60, 4);
        let provider = CiProvider::shared(&ci, &fleet);
        for t_ms in [10_000u64, 20_000, 70_000] {
            tables.refresh(&provider, t_ms);
            let ci_by_node = provider.at_each_node(t_ms);
            for l in fleet.ids().collect::<Vec<_>>() {
                assert_eq!(
                    tables.transfer_ranking(l, t_ms, &ci_by_node),
                    &cost.transfer_ranking(l, &ci_by_node)[..],
                    "t={t_ms} exclude={l}"
                );
            }
        }
    }

    #[test]
    fn transfer_ranking_prefers_cheap_keepalive_nodes() {
        // Two-node fleet: the only candidate is the other node.
        let m = model();
        assert_eq!(
            m.transfer_ranking(NodeId(1), &m.uniform_ci(300.0)),
            vec![NodeId(0)]
        );
        assert_eq!(
            m.transfer_ranking(NodeId(0), &m.uniform_ci(300.0)),
            vec![NodeId(1)]
        );
        // Three nodes: displacements from the newest prefer the oldest
        // (cheapest idle core + embodied attribution), then the mid node.
        let m3 = CostModel::new(
            skus::fleet_three_generations(),
            CarbonModel::default(),
            0.5,
            0.5,
            50,
            600_000,
        );
        assert_eq!(
            m3.transfer_ranking(NodeId(2), &m3.uniform_ci(300.0)),
            vec![NodeId(0), NodeId(1)]
        );
    }
}

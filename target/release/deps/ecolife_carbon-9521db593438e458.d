/root/repo/target/release/deps/ecolife_carbon-9521db593438e458.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/libecolife_carbon-9521db593438e458.rlib: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/libecolife_carbon-9521db593438e458.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

/root/repo/target/release/deps/azure_pipeline-321afeee64703a9b.d: tests/azure_pipeline.rs

/root/repo/target/release/deps/azure_pipeline-321afeee64703a9b: tests/azure_pipeline.rs

tests/azure_pipeline.rs:

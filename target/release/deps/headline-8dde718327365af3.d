/root/repo/target/release/deps/headline-8dde718327365af3.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-8dde718327365af3: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:

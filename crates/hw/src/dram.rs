//! DRAM module model: capacity, power, and embodied carbon.
//!
//! The paper's carbon model charges a function `f` the `M_f / M_DRAM` share
//! of both the DRAM's embodied carbon and its operational energy, so the
//! quantity that actually matters downstream is the *per-GiB* embodied
//! carbon and the *per-GiB* power draw; both are exposed here.

/// A DRAM configuration attached to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Vendor-capacity label used by the paper, e.g. `"Micron-512"`.
    pub name: &'static str,
    /// Release year of the module generation.
    pub year: u16,
    /// Total installed capacity in MiB.
    pub capacity_mib: u64,
    /// Power per GiB while a function is actively executing against it (W).
    pub active_w_per_gib: f64,
    /// Power per GiB for memory held by a warm (kept-alive) container (W).
    pub idle_w_per_gib: f64,
    /// Total embodied carbon of the full module set (gCO2e).
    pub embodied_g: f64,
}

impl DramModel {
    /// Capacity in GiB.
    #[inline]
    pub fn capacity_gib(&self) -> f64 {
        self.capacity_mib as f64 / 1024.0
    }

    /// Embodied carbon per GiB (gCO2e/GiB). Older DDR generations were
    /// manufactured on less advanced nodes and carry less embodied carbon
    /// per gigabyte.
    #[inline]
    pub fn embodied_per_gib_g(&self) -> f64 {
        self.embodied_g / self.capacity_gib()
    }

    /// The `M_f / M_DRAM` usage share for a function occupying
    /// `func_mem_mib` MiB.
    #[inline]
    pub fn usage_share(&self, func_mem_mib: u64) -> f64 {
        func_mem_mib as f64 / self.capacity_mib as f64
    }

    /// Embodied carbon accrued by a function occupying `func_mem_mib` for
    /// `duration_ms`, amortized over `lifetime_ms` (Sec. II DRAM embodied
    /// formula: `(S_f + k)/LT * M_f/M_DRAM * EC_DRAM`).
    #[inline]
    pub fn embodied_for_share_g(
        &self,
        func_mem_mib: u64,
        duration_ms: u64,
        lifetime_ms: u64,
    ) -> f64 {
        self.embodied_g * self.usage_share(func_mem_mib) * duration_ms as f64 / lifetime_ms as f64
    }

    /// Energy (kWh) drawn by the function's memory share while executing.
    #[inline]
    pub fn active_energy_kwh(&self, func_mem_mib: u64, duration_ms: u64) -> f64 {
        let gib = func_mem_mib as f64 / 1024.0;
        crate::cpu::watts_ms_to_kwh(self.active_w_per_gib * gib, duration_ms)
    }

    /// Energy (kWh) drawn by the function's memory share while warm.
    #[inline]
    pub fn idle_energy_kwh(&self, func_mem_mib: u64, duration_ms: u64) -> f64 {
        let gib = func_mem_mib as f64 / 1024.0;
        crate::cpu::watts_ms_to_kwh(self.idle_w_per_gib * gib, duration_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DramModel {
        DramModel {
            name: "Test-256",
            year: 2018,
            capacity_mib: 256 * 1024,
            active_w_per_gib: 0.4,
            idle_w_per_gib: 0.1,
            embodied_g: 80_000.0,
        }
    }

    #[test]
    fn capacity_gib_converts_mib() {
        assert_eq!(sample().capacity_gib(), 256.0);
    }

    #[test]
    fn embodied_per_gib() {
        assert!((sample().embodied_per_gib_g() - 312.5).abs() < 1e-9);
    }

    #[test]
    fn usage_share_is_fraction_of_total() {
        let d = sample();
        assert!((d.usage_share(256) - 256.0 / (256.0 * 1024.0)).abs() < 1e-15);
        assert_eq!(d.usage_share(d.capacity_mib), 1.0);
    }

    #[test]
    fn embodied_share_scales_with_memory_and_time() {
        let d = sample();
        let lt = crate::DEFAULT_LIFETIME_MS;
        let base = d.embodied_for_share_g(512, 60_000, lt);
        assert!((d.embodied_for_share_g(1024, 60_000, lt) - 2.0 * base).abs() < 1e-12);
        assert!((d.embodied_for_share_g(512, 120_000, lt) - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn active_energy_for_one_gib_one_hour() {
        // 0.4 W/GiB * 1 GiB * 1 h = 0.0004 kWh.
        let d = sample();
        assert!((d.active_energy_kwh(1024, 3_600_000) - 0.0004).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_less_than_active() {
        let d = sample();
        assert!(d.idle_energy_kwh(2048, 60_000) < d.active_energy_kwh(2048, 60_000));
    }
}

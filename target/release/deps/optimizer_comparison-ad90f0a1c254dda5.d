/root/repo/target/release/deps/optimizer_comparison-ad90f0a1c254dda5.d: crates/bench/benches/optimizer_comparison.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer_comparison-ad90f0a1c254dda5.rmeta: crates/bench/benches/optimizer_comparison.rs Cargo.toml

crates/bench/benches/optimizer_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

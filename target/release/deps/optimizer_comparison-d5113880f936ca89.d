/root/repo/target/release/deps/optimizer_comparison-d5113880f936ca89.d: crates/bench/benches/optimizer_comparison.rs

/root/repo/target/release/deps/optimizer_comparison-d5113880f936ca89: crates/bench/benches/optimizer_comparison.rs

crates/bench/benches/optimizer_comparison.rs:

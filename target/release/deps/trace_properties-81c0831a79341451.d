/root/repo/target/release/deps/trace_properties-81c0831a79341451.d: crates/trace/tests/trace_properties.rs Cargo.toml

/root/repo/target/release/deps/libtrace_properties-81c0831a79341451.rmeta: crates/trace/tests/trace_properties.rs Cargo.toml

crates/trace/tests/trace_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

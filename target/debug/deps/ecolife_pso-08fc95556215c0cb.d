/root/repo/target/debug/deps/ecolife_pso-08fc95556215c0cb.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/debug/deps/libecolife_pso-08fc95556215c0cb.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

/root/repo/target/debug/deps/ecolife_carbon-19071c1bdee3d744.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_carbon-19071c1bdee3d744.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs Cargo.toml

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! # ecolife-planner — fleet capacity planning
//!
//! The paper fixes the hardware (one old-generation node, one
//! new-generation node) and optimizes only keep-alive placement. This
//! crate asks the question one level up: **which fleet should you buy in
//! the first place** — which SKUs, how many of each, and what per-node
//! warm-pool memory budget — to minimize carbon under a service-time SLO
//! for a given workload?
//!
//! ## Structure: a bilevel search
//!
//! The planner nests the existing solver inside an outer search:
//!
//! * **Outer (this crate):** a [`FleetPlan`] genome — per-SKU node
//!   counts plus a memory budget drawn from a discrete grid — searched
//!   over a bounded [`PlanSpace`] by the workspace's own optimizers
//!   (PSO / GA / SA via their ask/tell batch interface, or exhaustive
//!   enumeration for small spaces).
//! * **Inner (existing crates):** each candidate is materialized with
//!   [`ecolife_hw::skus::fleet_of_counts`], the workload is replayed
//!   through [`ecolife_sim::evaluate`] under the EcoLife keep-alive
//!   scheduler, and the run is scored as
//!
//!   ```text
//!   fitness = simulated carbon                     (operational + per-use embodied)
//!           + provisioned embodied carbon          (owning the nodes, used or not)
//!           + SLO penalty                          (relative P95 violation)
//!   ```
//!
//! The provisioned-embodied term is what makes this a *capacity* problem
//! rather than a scheduling problem: adding a node always helps service
//! time and often helps operational carbon, but its manufacturing
//! footprint is paid whether or not traffic lands on it.
//!
//! ## The hot path
//!
//! One fitness evaluation is a full trace replay, so [`PlanEvaluator`]
//! memoizes scores by integer genome and fans each swarm generation out
//! over [`ecolife_core::runner::parallel_map`]. Every candidate's inner
//! scheduler is seeded from the genome itself, which makes the whole
//! search deterministic for a fixed seed — independent of thread count,
//! evaluation order, and cache warmth.
//!
//! ## Quickstart
//!
//! ```
//! use ecolife_planner::{Planner, PlannerConfig, PlanSpace, SearchAlgorithm};
//! use ecolife_carbon::CarbonIntensityTrace;
//! use ecolife_hw::Sku;
//! use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};
//!
//! let trace = SynthTraceConfig::small(7).generate(&WorkloadCatalog::sebs());
//! let ci = CarbonIntensityTrace::constant(300.0, 120);
//! let space = PlanSpace::new(
//!     vec![Sku::I3Metal, Sku::M5znMetal], // catalog to shop from
//!     2,                                  // ≤2 nodes per SKU
//!     3,                                  // ≤3 nodes total
//!     vec![4 * 1024, 8 * 1024],           // warm-pool budgets (MiB)
//! );
//! let planner = Planner::new(space, &trace, &ci, PlannerConfig::default());
//! let report = planner.search(SearchAlgorithm::Exhaustive, 0);
//! assert!(report.best_plan.total_nodes() >= 1);
//! ```

pub mod fitness;
pub mod plan;
pub mod search;
pub mod space;

pub use fitness::{PlanEvaluator, PlanScore, PlannerConfig, INFEASIBLE_PENALTY_G};
pub use plan::FleetPlan;
pub use search::{PlanReport, Planner, SearchAlgorithm};
pub use space::PlanSpace;

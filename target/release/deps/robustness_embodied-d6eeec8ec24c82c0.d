/root/repo/target/release/deps/robustness_embodied-d6eeec8ec24c82c0.d: crates/bench/benches/robustness_embodied.rs Cargo.toml

/root/repo/target/release/deps/librobustness_embodied-d6eeec8ec24c82c0.rmeta: crates/bench/benches/robustness_embodied.rs Cargo.toml

crates/bench/benches/robustness_embodied.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

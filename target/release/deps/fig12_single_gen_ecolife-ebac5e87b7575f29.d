/root/repo/target/release/deps/fig12_single_gen_ecolife-ebac5e87b7575f29.d: crates/bench/benches/fig12_single_gen_ecolife.rs

/root/repo/target/release/deps/fig12_single_gen_ecolife-ebac5e87b7575f29: crates/bench/benches/fig12_single_gen_ecolife.rs

crates/bench/benches/fig12_single_gen_ecolife.rs:

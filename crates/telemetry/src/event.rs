//! The event taxonomy and the canonical merge key.
//!
//! One [`Event`] per observable engine action, TRACE-style: if it wasn't
//! emitted by the runtime, it didn't happen. Field types are primitives
//! (`NodeId` → `u32` index, `FunctionId` → `u32`, `Region` → its label)
//! so the telemetry crate stays dependency-free and a stream is
//! self-describing without the workspace's types.
//!
//! ## Stream identity across engines
//!
//! The sequential and sharded engines must serialize to *byte-identical*
//! streams. Both collect `(EventKey, Event)` pairs and only sort, number,
//! and hash them at end of run ([`crate::finalize`]): identity is then
//! structural — same event set, same keys ⇒ same bytes — instead of
//! depending on interleaving. The key is a total order designed so the
//! sorted stream reads like the sequential engine executed:
//!
//! * `pos` — the global invocation index the event is anchored to: the
//!   invocation being replayed (decision/start/release lanes), the
//!   *expiry trigger* for container expiries (the first invocation index
//!   at or after the expiry instant — exactly where the sequential
//!   engine's lazy sweep settles it), or the first index of a period for
//!   boundary events. `trace.len()` anchors end-of-run events.
//! * `lane` — orders event classes at the same `pos`: run start, then
//!   the previous period closing, a period opening, CI observations,
//!   container expiries, reconciliation ops, fleet-membership changes
//!   and their pool drains, re-placement-pass migrations,
//!   per-invocation ops, run end.
//! * `a`, `b` — disambiguate within a lane (node/function for expiries,
//!   an emission counter for per-invocation and reconciliation ops).
//!
//! Keys are unique per run (debug-asserted in [`crate::finalize`]), so
//! the stable sort admits exactly one serialization.

/// Lane constants for [`EventKey`]: the within-`pos` ordering of event
/// classes. `PERIOD_ENDED < PERIOD_STARTED` because at a boundary index
/// the previous period closes before the next opens.
pub mod lane {
    pub const RUN_STARTED: u8 = 0;
    pub const PERIOD_ENDED: u8 = 1;
    pub const PERIOD_STARTED: u8 = 2;
    pub const CI_OBSERVED: u8 = 3;
    pub const EXPIRY: u8 = 4;
    pub const RECONCILE: u8 = 5;
    /// A fleet-membership change (node join/leave) at its trigger index.
    pub const MEMBERSHIP: u8 = 6;
    /// Containers released from a leaving node's pool (`a` = membership
    /// event index, `b` = function id).
    pub const MEMBER_OUT: u8 = 7;
    /// Drained containers landing on their transfer targets.
    pub const MEMBER_IN: u8 = 8;
    /// A node crash or recovery at its trigger index (`a` = fault
    /// index, `b` = 0 for the crash, 1 for the recovery).
    pub const CRASH: u8 = 9;
    /// Containers lost when their node crashed (`a` = fault index,
    /// `b` = function id). Crashes are ungraceful: nothing lands
    /// anywhere, so there is no `CRASH_IN`.
    pub const CRASH_OUT: u8 = 10;
    /// A carbon-intensity feed going stale or recovering (`a` = fault
    /// index, `b` = 0 for stale, 1 for restored).
    pub const CI_HEALTH: u8 = 11;
    /// An inter-region partition starting or healing (`a` = fault
    /// index, `b` = 0 for start, 1 for heal).
    pub const PARTITION: u8 = 12;
    /// Containers released by the periodic re-placement pass (`a` =
    /// function id, `b` = `pass_index << 16 | source_node`).
    pub const REPLACE_OUT: u8 = 13;
    /// Re-placed containers landing on their targets.
    pub const REPLACE_IN: u8 = 14;
    pub const INVOCATION: u8 = 15;
    pub const RUN_ENDED: u8 = 16;
}

/// The canonical sort key every emitted event carries until
/// finalization. Ordering is the derived lexicographic
/// `(pos, lane, a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Global invocation index anchor (see module docs).
    pub pos: u64,
    /// Event-class lane (see [`lane`]).
    pub lane: u8,
    /// Within-lane discriminator: node index (expiries), region index
    /// (CI observations), or emission counter (invocation/reconcile ops).
    pub a: u32,
    /// Second discriminator: function id for expiries, else 0.
    pub b: u32,
}

impl EventKey {
    pub const fn new(pos: u64, lane: u8, a: u32, b: u32) -> Self {
        EventKey { pos, lane, a, b }
    }
}

/// Why a warm container left its pool before expiring on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseCause {
    /// Consumed by a warm start of its own function.
    Reused,
    /// Replaced by a newer keep-alive of the same function (at install
    /// or as a transfer landed on its node).
    Replaced,
    /// Displaced by the scheduler's warm-pool adjustment to make room
    /// for an incoming container.
    Displaced,
    /// Lost when its node crashed ungracefully: the keep-alive is
    /// settled at the crash instant and nothing is transferred.
    Crashed,
}

impl ReleaseCause {
    pub fn as_str(self) -> &'static str {
        match self {
            ReleaseCause::Reused => "reused",
            ReleaseCause::Replaced => "replaced",
            ReleaseCause::Displaced => "displaced",
            ReleaseCause::Crashed => "crashed",
        }
    }
}

/// One observable action of the replay engine.
///
/// Settlement-bearing events (`Expired`, `Released`) are emitted only
/// when the container actually accrued resident time (mirroring the
/// engine's accounting, which skips zero-duration settlements);
/// `Revoked` is always emitted — the revocation itself is observable
/// even when the stay settled to nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Replay begins: workload shape and fleet size.
    RunStarted {
        invocations: u64,
        functions: u64,
        nodes: u64,
        horizon_ms: u64,
    },
    /// An active wall-clock minute opens (minutes with no arrivals are
    /// skipped, same as the engine's period batching).
    PeriodStarted { minute: u64 },
    /// The previous active minute closes.
    PeriodEnded { minute: u64 },
    /// Carbon intensity observed at a period boundary, once per
    /// *distinct* grid region backing the fleet.
    CiObserved {
        region: String,
        t_ms: u64,
        gco2_per_kwh: f64,
    },
    /// The scheduler's raw placement for one invocation. `exec_node` is
    /// the scheduler's choice — a warm hit overrides it with the warm
    /// location (see the matching `WarmHit`). `ka_node` is `-1` when no
    /// keep-alive was scheduled.
    DecisionMade {
        index: u64,
        func: u32,
        t_ms: u64,
        exec_node: u32,
        warm: bool,
        ka_node: i64,
        ka_ms: u64,
    },
    /// A cold start: where it actually executed and what it cost.
    ColdStarted {
        index: u64,
        func: u32,
        node: u32,
        t_ms: u64,
        service_ms: u64,
        service_g: f64,
        energy_kwh: f64,
    },
    /// A warm start served from `node`'s pool.
    WarmHit {
        index: u64,
        func: u32,
        node: u32,
        t_ms: u64,
        service_ms: u64,
        service_g: f64,
        energy_kwh: f64,
    },
    /// A keep-alive lapsed on its own and was settled at its expiry.
    Expired {
        node: u32,
        func: u32,
        since_ms: u64,
        expiry_ms: u64,
        keepalive_g: f64,
        energy_kwh: f64,
    },
    /// A container left its pool early; `keepalive_g`/`energy_kwh` are
    /// the settled cost of its actual stay `[since_ms, end_ms)`.
    Released {
        cause: ReleaseCause,
        node: u32,
        func: u32,
        since_ms: u64,
        end_ms: u64,
        keepalive_g: f64,
        energy_kwh: f64,
    },
    /// A displaced or revoked container restarted its keep-alive on
    /// another node. `egress_g` is the priced migration's network
    /// carbon, charged to the *source* node's grid at `t_ms`;
    /// `latency_ms` is the re-warm debt added to the function's next
    /// service. Both are 0 under [`TransferCost::free`]-style configs.
    Transferred {
        func: u32,
        from: u32,
        to: u32,
        t_ms: u64,
        egress_g: f64,
        latency_ms: u64,
    },
    /// A node joined or left the fleet mid-trace (maintenance /
    /// autoscale event). A leaving node has already drained its pool
    /// (see the `MEMBER_OUT`/`MEMBER_IN` lanes).
    MembershipChanged { node: u32, t_ms: u64, joined: bool },
    /// Ledger reconciliation revoked an optimistic cross-shard
    /// admission (sharded engine only; the container is then transferred
    /// or evicted).
    Revoked {
        node: u32,
        func: u32,
        t_ms: u64,
        keepalive_g: f64,
        energy_kwh: f64,
    },
    /// Bounded executors only: the invocation found `node`'s executor
    /// saturated and joined its queue behind `depth - 1` earlier waiters
    /// (`depth` counts this one). Emitted together with the matching
    /// [`Event::Dequeued`] — the virtual clock resolves the wait
    /// immediately.
    Enqueued {
        index: u64,
        func: u32,
        node: u32,
        t_ms: u64,
        depth: u32,
    },
    /// Bounded executors only: a queued invocation reached a free slot at
    /// `start_ms` after waiting `queue_ms` (the measured queueing delay
    /// added to its service time).
    Dequeued {
        index: u64,
        func: u32,
        node: u32,
        start_ms: u64,
        queue_ms: u64,
    },
    /// Bounded executors only: admission control turned the invocation
    /// away — `node`'s executor queue was already holding `depth` waiters
    /// (its configured bound). The invocation is recorded as rejected and
    /// never executes.
    AdmissionRejected {
        index: u64,
        func: u32,
        node: u32,
        t_ms: u64,
        depth: u32,
    },
    /// A node crashed ungracefully: its warm pool is lost (settled at
    /// the crash instant in the `CRASH_OUT` lane) and its executor
    /// queue is cleared. `recover_ms` is when it comes back.
    NodeCrashed {
        node: u32,
        t_ms: u64,
        recover_ms: u64,
    },
    /// A crashed node recovered and accepts placements again (its warm
    /// pool restarts empty).
    NodeRecovered { node: u32, t_ms: u64 },
    /// A region's carbon-intensity feed went stale: until `until_ms`
    /// the provider serves the last-known-good reading taken at `t_ms`.
    CiStale {
        region: String,
        t_ms: u64,
        until_ms: u64,
    },
    /// A stale carbon-intensity feed recovered to live data.
    CiRestored { region: String, t_ms: u64 },
    /// An inter-region partition opened: cross-region transfers between
    /// `regions` (comma-joined labels) and the rest of the fleet fail
    /// until `until_ms`.
    PartitionStarted {
        regions: String,
        t_ms: u64,
        until_ms: u64,
    },
    /// A partition healed; inter-region transfers resume.
    PartitionHealed { regions: String, t_ms: u64 },
    /// A keep-alive transfer found every candidate target unreachable
    /// (partitioned or crashed) and probed again after a deterministic
    /// virtual-clock backoff of `backoff_ms` (attempt `attempt`,
    /// counted from 1).
    TransferRetried {
        func: u32,
        node: u32,
        t_ms: u64,
        attempt: u32,
        backoff_ms: u64,
    },
    /// The invocation was routed to a node that is crashed at `t_ms`;
    /// it is recorded as a zero-carbon rejected invocation and never
    /// executes.
    CrashRejected {
        index: u64,
        func: u32,
        node: u32,
        t_ms: u64,
    },
    /// Replay ends: the run's headline counters.
    RunEnded {
        invocations: u64,
        transfers: u64,
        evictions: u64,
        revocations: u64,
        expired: u64,
    },
}

impl Event {
    /// The `"type"` tag serialized into every line.
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "RunStarted",
            Event::PeriodStarted { .. } => "PeriodStarted",
            Event::PeriodEnded { .. } => "PeriodEnded",
            Event::CiObserved { .. } => "CiObserved",
            Event::DecisionMade { .. } => "DecisionMade",
            Event::ColdStarted { .. } => "ColdStarted",
            Event::WarmHit { .. } => "WarmHit",
            Event::Expired { .. } => "Expired",
            Event::Released { .. } => "Released",
            Event::Transferred { .. } => "Transferred",
            Event::MembershipChanged { .. } => "MembershipChanged",
            Event::Revoked { .. } => "Revoked",
            Event::Enqueued { .. } => "Enqueued",
            Event::Dequeued { .. } => "Dequeued",
            Event::AdmissionRejected { .. } => "AdmissionRejected",
            Event::NodeCrashed { .. } => "NodeCrashed",
            Event::NodeRecovered { .. } => "NodeRecovered",
            Event::CiStale { .. } => "CiStale",
            Event::CiRestored { .. } => "CiRestored",
            Event::PartitionStarted { .. } => "PartitionStarted",
            Event::PartitionHealed { .. } => "PartitionHealed",
            Event::TransferRetried { .. } => "TransferRetried",
            Event::CrashRejected { .. } => "CrashRejected",
            Event::RunEnded { .. } => "RunEnded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_pos_then_lane_then_discriminators() {
        let mut keys = vec![
            EventKey::new(3, lane::INVOCATION, 1, 0),
            EventKey::new(3, lane::EXPIRY, 0, 7),
            EventKey::new(3, lane::EXPIRY, 0, 2),
            EventKey::new(2, lane::RUN_ENDED, 0, 0),
            EventKey::new(3, lane::PERIOD_ENDED, 0, 0),
            EventKey::new(3, lane::PERIOD_STARTED, 0, 0),
            EventKey::new(3, lane::INVOCATION, 0, 0),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                EventKey::new(2, lane::RUN_ENDED, 0, 0),
                EventKey::new(3, lane::PERIOD_ENDED, 0, 0),
                EventKey::new(3, lane::PERIOD_STARTED, 0, 0),
                EventKey::new(3, lane::EXPIRY, 0, 2),
                EventKey::new(3, lane::EXPIRY, 0, 7),
                EventKey::new(3, lane::INVOCATION, 0, 0),
                EventKey::new(3, lane::INVOCATION, 1, 0),
            ]
        );
    }
}

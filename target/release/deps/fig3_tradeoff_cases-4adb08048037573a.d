/root/repo/target/release/deps/fig3_tradeoff_cases-4adb08048037573a.d: crates/bench/benches/fig3_tradeoff_cases.rs

/root/repo/target/release/deps/fig3_tradeoff_cases-4adb08048037573a: crates/bench/benches/fig3_tradeoff_cases.rs

crates/bench/benches/fig3_tradeoff_cases.rs:

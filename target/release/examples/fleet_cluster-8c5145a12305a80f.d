/root/repo/target/release/examples/fleet_cluster-8c5145a12305a80f.d: examples/fleet_cluster.rs

/root/repo/target/release/examples/fleet_cluster-8c5145a12305a80f: examples/fleet_cluster.rs

examples/fleet_cluster.rs:

/root/repo/target/debug/deps/ecolife_bench-790b300258638eea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libecolife_bench-790b300258638eea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

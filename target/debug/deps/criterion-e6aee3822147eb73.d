/root/repo/target/debug/deps/criterion-e6aee3822147eb73.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-e6aee3822147eb73: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:

/root/repo/target/release/deps/azure_pipeline-59e406d26ced96c4.d: tests/azure_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libazure_pipeline-59e406d26ced96c4.rmeta: tests/azure_pipeline.rs Cargo.toml

tests/azure_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

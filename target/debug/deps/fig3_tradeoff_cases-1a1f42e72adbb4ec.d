/root/repo/target/debug/deps/fig3_tradeoff_cases-1a1f42e72adbb4ec.d: crates/bench/benches/fig3_tradeoff_cases.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_tradeoff_cases-1a1f42e72adbb4ec.rmeta: crates/bench/benches/fig3_tradeoff_cases.rs Cargo.toml

crates/bench/benches/fig3_tradeoff_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/tune-dbcce419d8d2a902.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-dbcce419d8d2a902: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:

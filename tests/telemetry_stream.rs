//! The golden-trace event stream is part of the engine's determinism
//! contract: the sharded path must emit the *byte-identical* stream —
//! every line, every hash, the same chain tip — as the sequential
//! reference, at any shard and worker-thread count, whenever the runs
//! themselves coincide (no cross-shard revocations). Contended runs
//! have their own sharded semantics, but their streams still chain,
//! verify, and replay into the run's metrics.

use ecolife::prelude::*;
use ecolife::sim::ShardOptions;
use ecolife::telemetry::{field, str_field, u64_field, verify_lines};
use proptest::prelude::*;

/// The pressured multi-region workload: ten nodes over five grids,
/// 16 functions, squeezed keep-alive budgets so the overflow/transfer
/// path runs — but without cross-shard contention, so sharded replay
/// stays in the exact-equality regime.
fn multi_region_setup(budget_mib: u64) -> (Trace, CiBundle, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 21,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let bundle = CiBundle::synthetic_all(150, 21);
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(budget_mib);
    (trace, bundle, fleet)
}

fn capture_sequential(
    trace: &Trace,
    bundle: &CiBundle,
    fleet: &Fleet,
) -> (RunMetrics, CaptureSink) {
    let mut sink = CaptureSink::default();
    let metrics = Simulation::try_new_regional(trace, bundle, fleet.clone())
        .unwrap()
        .run_with_sink(
            &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
            &mut sink,
        );
    (metrics, sink)
}

#[test]
fn sharded_stream_is_byte_identical_to_sequential_at_any_layout() {
    let (trace, bundle, fleet) = multi_region_setup(16 * 1024);
    let (sequential, reference) = capture_sequential(&trace, &bundle, &fleet);
    assert!(
        sequential.expiry.expired > 0,
        "fixture must exercise expiry churn"
    );
    let ref_lines: Vec<String> = reference.lines().iter().map(|l| l.to_string()).collect();
    let ref_tip = reference.tip().expect("non-empty stream").to_string();
    verify_lines(ref_lines.iter().map(String::as_str)).expect("sequential chain verifies");

    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 4] {
            let mut sink = CaptureSink::default();
            let m = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .unwrap()
                .run_sharded_with_sink(
                    |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                    &ShardOptions::new(shards).with_threads(threads),
                    &mut sink,
                );
            // Precondition for exact equality — and the regime the
            // existing record-identity tests pin.
            assert_eq!(
                m.reconcile_revocations, 0,
                "shards={shards} threads={threads}: workload unexpectedly contended"
            );
            assert_eq!(m.records, sequential.records);
            assert_eq!(
                sink.lines(),
                ref_lines.iter().map(String::as_str).collect::<Vec<_>>(),
                "shards={shards} threads={threads}: stream diverged from sequential"
            );
            assert_eq!(sink.tip(), Some(ref_tip.as_str()));
        }
    }
}

#[test]
fn pressured_sharded_stream_is_thread_invariant() {
    // Under genuine memory pressure the sharded run has its own
    // (deterministic) semantics — and so does its stream: byte-identical
    // at every worker-thread count for a fixed shard layout.
    let (trace, bundle, fleet) = multi_region_setup(4 * 1024);
    let run = |threads: usize| {
        let mut sink = CaptureSink::default();
        let m = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .run_sharded_with_sink(
                |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &ShardOptions::new(8).with_threads(threads),
                &mut sink,
            );
        (m, sink)
    };
    let (reference, ref_sink) = run(1);
    assert!(
        reference.transfers + reference.evicted_functions > 0,
        "pressured workload did not overflow"
    );
    verify_lines(ref_sink.lines()).expect("pressured chain verifies");
    for threads in [2usize, 4] {
        let (m, sink) = run(threads);
        assert_eq!(m.reconcile_revocations, reference.reconcile_revocations);
        assert_eq!(
            sink.lines(),
            ref_sink.lines(),
            "pressured stream diverged at {threads} workers"
        );
    }
}

#[test]
fn contended_sharded_stream_still_chains_and_counts_revocations() {
    // A budget tight enough that shards overcommit and the
    // reconciliation pass revokes: the stream legitimately differs from
    // sequential here, but must still verify and must carry exactly one
    // `revoked` event per counted revocation.
    let (trace, bundle, fleet) = multi_region_setup(512);
    let mut sink = CaptureSink::default();
    let m = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .run_sharded_with_sink(
            |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
            &ShardOptions::new(8).with_threads(4),
            &mut sink,
        );
    assert!(
        m.reconcile_revocations > 0,
        "512 MiB budget was expected to contend"
    );
    let summary = verify_lines(sink.lines()).expect("contended chain verifies");
    assert_eq!(summary.events as usize, sink.len());
    let revoked = sink
        .lines()
        .iter()
        .filter(|l| str_field(l, "type") == Some("Revoked"))
        .count();
    assert_eq!(revoked as u64, m.reconcile_revocations);
}

#[test]
fn stream_replays_into_run_metrics() {
    // The reconstruction contract on the pressured fixture: counts and
    // per-node keep-alive gram totals, recovered from the emitted lines
    // alone, equal the run's metrics — grams to the exact bit, because
    // stream order is engine accumulation order and floats serialize
    // shortest-roundtrip.
    let (trace, bundle, fleet) = multi_region_setup(6 * 1024);
    let (m, sink) = capture_sequential(&trace, &bundle, &fleet);
    assert!(m.transfers > 0, "fixture must exercise the transfer path");

    let mut warm = 0u64;
    let mut cold = 0u64;
    let mut transfers = 0u64;
    let mut expired = 0u64;
    let mut keepalive_g = vec![0.0f64; fleet.len()];
    for line in sink.lines() {
        match str_field(line, "type").unwrap() {
            "WarmHit" => warm += 1,
            "ColdStarted" => cold += 1,
            "Transferred" => transfers += 1,
            "Expired" | "Released" | "Revoked" => {
                if str_field(line, "type") == Some("Expired") {
                    expired += 1;
                }
                let node = u64_field(line, "node").unwrap() as usize;
                let g: f64 = field(line, "keepalive_g").unwrap().parse().unwrap();
                keepalive_g[node] += g;
            }
            _ => {}
        }
    }
    assert_eq!((warm + cold) as usize, m.invocations());
    assert_eq!(warm as usize, m.warm_starts());
    assert_eq!(transfers, m.transfers);
    // Every mid-run sweep expiry is in the stream; the end-of-run drain
    // additionally settles still-warm containers as `Expired` (charged
    // to their scheduled expiry), which pool sweep stats don't count.
    assert!(
        expired >= m.expiry.expired,
        "{expired} < {}",
        m.expiry.expired
    );
    let run_ended = sink.lines().last().copied().unwrap();
    assert_eq!(str_field(run_ended, "type"), Some("RunEnded"));
    assert_eq!(u64_field(run_ended, "expired"), Some(m.expiry.expired));
    assert_eq!(u64_field(run_ended, "transfers"), Some(m.transfers));
    let got: Vec<u64> = keepalive_g.iter().map(|g| g.to_bits()).collect();
    let want: Vec<u64> = m.keepalive_g_by_node.iter().map(|g| g.to_bits()).collect();
    assert_eq!(
        got, want,
        "per-node keep-alive grams did not replay bit-exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite contract: for *any* multi-region workload — pressured
    /// or not — the captured sequential stream alone reconstructs the
    /// run's headline metrics: invocation/warm counts exactly, and the
    /// per-node keep-alive gram totals to the exact bit (stream order
    /// is engine accumulation order; floats serialize
    /// shortest-roundtrip). The chain verifies along the way.
    #[test]
    fn any_captured_stream_reconstructs_its_run_metrics(
        seed in 0u64..100_000,
        n_functions in 4usize..20,
        duration_min in 30u64..80,
        budget_gib in 2u64..14,
    ) {
        let trace = SynthTraceConfig {
            n_functions,
            duration_min,
            seed,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs());
        let bundle = CiBundle::synthetic_all(150, seed);
        let fleet = skus::fleet_five_regions()
            .with_uniform_keepalive_budget_mib(budget_gib * 1024);
        let (m, sink) = capture_sequential(&trace, &bundle, &fleet);

        let summary = verify_lines(sink.lines()).expect("chain verifies");
        prop_assert_eq!(summary.events as usize, sink.len());

        let mut warm = 0u64;
        let mut cold = 0u64;
        let mut transfers = 0u64;
        let mut revoked = 0u64;
        let mut keepalive_g = vec![0.0f64; fleet.len()];
        for line in sink.lines() {
            match str_field(line, "type").unwrap() {
                "WarmHit" => warm += 1,
                "ColdStarted" => cold += 1,
                "Transferred" => transfers += 1,
                t @ ("Expired" | "Released" | "Revoked") => {
                    if t == "Revoked" {
                        revoked += 1;
                    }
                    let node = u64_field(line, "node").unwrap() as usize;
                    let g: f64 = field(line, "keepalive_g").unwrap().parse().unwrap();
                    keepalive_g[node] += g;
                }
                _ => {}
            }
        }
        prop_assert_eq!((warm + cold) as usize, m.invocations());
        prop_assert_eq!(warm as usize, m.warm_starts());
        prop_assert_eq!(transfers, m.transfers);
        // The sequential reference never revokes (reconciliation is a
        // sharded-only phase).
        prop_assert_eq!(revoked, 0);
        prop_assert_eq!(m.reconcile_revocations, 0);
        let got: Vec<u64> = keepalive_g.iter().map(|g| g.to_bits()).collect();
        let want: Vec<u64> = m.keepalive_g_by_node.iter().map(|g| g.to_bits()).collect();
        prop_assert_eq!(got, want);
    }
}

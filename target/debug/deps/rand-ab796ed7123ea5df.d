/root/repo/target/debug/deps/rand-ab796ed7123ea5df.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-ab796ed7123ea5df: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

//! # ecolife-sim — discrete-event serverless cluster simulator
//!
//! Replays an invocation [`Trace`](ecolife_trace::Trace) against an
//! N-node hardware [`Fleet`](ecolife_hw::Fleet) under a pluggable
//! [`Scheduler`] (the paper's two-generation pair is the `N = 2` case):
//!
//! * **warm pools** ([`pool`]) — one per fleet node, memory-bounded,
//!   holding the containers kept alive between invocations; expiry runs
//!   off a min-heap timeline with lazy invalidation (a heap-top peek per
//!   invocation instead of a pool scan; [`ExpiryMode::Scan`] keeps the
//!   original scan as the bit-identity reference);
//! * **engine** ([`engine`]) — advances invocation by invocation,
//!   expiring containers, classifying warm/cold starts, computing service
//!   time via the node performance model and carbon via the Sec. II
//!   footprint model — at the intensity of *the acting node's grid
//!   region*, resolved through a per-`NodeId` [`CiProvider`] (one shared
//!   series via [`Simulation::new`], or a region-keyed [`CiBundle`] via
//!   [`Simulation::try_new_regional`]; a CI series shorter than the
//!   workload is a typed construction error, never a silent freeze) —
//!   and invoking the scheduler's overflow handling when
//!   a keep-alive does not fit (displaced containers are retried against
//!   the plan's ranked transfer targets);
//! * **metrics** ([`metrics`]) — per-invocation records (service time,
//!   carbon breakdown, energy), aggregate totals, CDFs, and P95s — the
//!   quantities every figure of the paper is computed from;
//! * **shards** ([`shard`]) — the million-invocation scale path:
//!   [`Simulation::run_sharded`] partitions the trace by `FunctionId`
//!   hash into shards, each owning its warm pools, scheduler state, and
//!   metrics, replayed in parallel over one persistent
//!   [`parallel::WorkerPool`] (threads live across all reconciliation
//!   periods, with a barrier per period batch). The
//!   one cross-shard interaction — per-node memory capacity — goes
//!   through an atomic per-`NodeId` memory ledger: shards admit against
//!   start-of-period snapshots and a deterministic reconciliation pass
//!   per period expires, revokes (youngest `warm_since_ms` first, ties
//!   against the higher `FunctionId`), transfers, or evicts, so runs are
//!   bit-identical at any worker-thread count — and identical to the
//!   sequential path whenever shards never contend for a node.
//!
//! The sequential engine ([`Simulation::run`]) remains the
//! single-threaded reference; experiment sweeps additionally fan whole
//! simulations out over [`parallel::parallel_map`].
//!
//! Both paths can additionally emit a hash-chained golden-trace event
//! stream ([`Simulation::run_with_sink`] /
//! [`Simulation::run_sharded_with_sink`], sinks from
//! `ecolife-telemetry`): byte-identical between sequential and sharded
//! execution, and zero-cost when disabled ([`NullSink`] monomorphizes
//! every emission away). See the telemetry section of [`engine`]'s docs.

pub mod cluster;
pub mod container;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod membership;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod scheduler;
pub mod shard;

pub use cluster::Cluster;
pub use container::WarmContainer;
pub use ecolife_carbon::{CiBundle, CiError, CiProvider, StalenessPolicy, TransferCost};
pub use faults::{Fault, FaultError, FaultPlan, RetryPolicy};
pub use membership::{MembershipEvent, MembershipPlan};
// Telemetry surface: sinks plug into `run_with_sink` /
// `run_sharded_with_sink`; everything else reads the emitted lines.
pub use ecolife_telemetry::{
    CaptureSink, ChainSummary, Event, EventSink, GoldenSnapshot, JsonlSink, NullSink,
};
pub use engine::{
    evaluate, evaluate_regional, evaluate_sharded, evaluate_sharded_regional, Engine, RunState,
    SimConfig, Simulation,
};
pub use executor::{Admission, ExecutorConfig, NodeExecutors};
pub use metrics::{InvocationRecord, RunMetrics};
pub use parallel::{
    next_arrival_gaps_bucketed, next_arrival_gaps_parallel, next_arrival_gaps_strategy,
    parallel_map, parallel_map_threads, GapsStrategy, WorkerPool,
};
pub use pool::{ExpiryMode, ExpiryStats, WarmPool};
pub use scheduler::{
    AdjustPlan, Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, Scheduler,
};
pub use shard::{shard_of, ShardOptions};

/// Milliseconds per minute; keep-alive periods are quoted in minutes
/// throughout the paper.
pub const MINUTE_MS: u64 = 60_000;

//! Fig. 3 — the Case A / Case B trade-off under high and low carbon
//! intensity.
//!
//! Case A: keep alive 15 min on OLD hardware → warm start, slower
//! execution. Case B: keep alive 10 min on NEW hardware → the keep-alive
//! lapses, cold start, faster execution.
//!
//! Paper shape: at CI = 300, Case A saves both service time (video-
//! processing: ≈52.3%) and carbon (≈14.9%); at CI = 50 the carbon saving
//! shrinks and can invert for large-memory functions (the
//! DNA-visualization "inverted case").
//!
//! The paper runs this on pair C; in our calibration pair C's one-year
//! generation gap leaves almost no keep-alive carbon advantage, so the
//! experiment is shown on the default pair A (the four-year gap), where
//! the trade-off the figure illustrates actually exists — see
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_carbon::CarbonModel;
use ecolife_hw::{skus, Generation, PerfModel};
use ecolife_trace::{FunctionProfile, WorkloadCatalog};
use std::hint::black_box;

/// (service_ms, carbon_g) of one case.
fn case(
    f: &FunctionProfile,
    ci: f64,
    generation: Generation,
    keepalive_min: u64,
    warm: bool,
) -> (u64, f64) {
    let pair = skus::pair_a();
    let node = pair.node(generation);
    let model = CarbonModel::default();
    let service_ms = if warm {
        PerfModel::warm_service_ms(node, f.base_exec_ms, f.cpu_sensitivity)
    } else {
        PerfModel::cold_service_ms(node, f.base_exec_ms, f.base_cold_ms, f.cpu_sensitivity)
    };
    let carbon = model
        .active_phase(node, f.memory_mib, service_ms, ci)
        .total_g()
        + model
            .keepalive_phase(node, f.memory_mib, keepalive_min * 60_000, ci)
            .total_g();
    (service_ms, carbon)
}

fn print_fig3() {
    let catalog = WorkloadCatalog::sebs();
    println!(
        "\n=== Fig. 3: Case A (15 min on OLD, warm) vs Case B (10 min on NEW, cold) — pair A ==="
    );
    println!(
        "{:<24} {:>5} {:>11} {:>11} {:>10} {:>10} {:>9} {:>9}",
        "function", "CI", "A svc ms", "B svc ms", "A CO2 g", "B CO2 g", "svc sav", "CO2 sav"
    );
    for name in [
        "220.video-processing",
        "503.graph-bfs",
        "504.dna-visualization",
    ] {
        let (_, f) = catalog.by_name(name).unwrap();
        for ci in [300.0, 50.0] {
            let (a_ms, a_g) = case(f, ci, Generation::Old, 15, true);
            let (b_ms, b_g) = case(f, ci, Generation::New, 10, false);
            println!(
                "{:<24} {:>5} {:>11} {:>11} {:>10.4} {:>10.4} {:>8.1}% {:>8.1}%",
                name,
                ci,
                a_ms,
                b_ms,
                a_g,
                b_g,
                100.0 * (1.0 - a_ms as f64 / b_ms as f64),
                100.0 * (1.0 - a_g / b_g),
            );
        }
    }
    println!("(negative CO2 saving = the paper's 'inverted case')\n");
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let catalog = WorkloadCatalog::sebs();
    let (_, f) = catalog.by_name("504.dna-visualization").unwrap();
    let f = f.clone();
    c.bench_function("fig3/case_eval", |b| {
        b.iter(|| black_box(case(&f, 300.0, Generation::Old, 15, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/fig10_dpso_ablation-5cddeff5c8292bd5.d: crates/bench/benches/fig10_dpso_ablation.rs

/root/repo/target/release/deps/fig10_dpso_ablation-5cddeff5c8292bd5: crates/bench/benches/fig10_dpso_ablation.rs

crates/bench/benches/fig10_dpso_ablation.rs:

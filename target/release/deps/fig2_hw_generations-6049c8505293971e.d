/root/repo/target/release/deps/fig2_hw_generations-6049c8505293971e.d: crates/bench/benches/fig2_hw_generations.rs Cargo.toml

/root/repo/target/release/deps/libfig2_hw_generations-6049c8505293971e.rmeta: crates/bench/benches/fig2_hw_generations.rs Cargo.toml

crates/bench/benches/fig2_hw_generations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

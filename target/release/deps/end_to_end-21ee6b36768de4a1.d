/root/repo/target/release/deps/end_to_end-21ee6b36768de4a1.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-21ee6b36768de4a1.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! The repository's golden-trace workloads: three small, fully
//! deterministic runs — one per flagship example — whose complete event
//! streams are checked into `tests/golden/` as `<name>.jsonl` plus a
//! `<name>.golden` summary (event count + chain-tip hash).
//!
//! Any engine change that alters observable behavior moves a hash and
//! fails both the `tests/golden_traces.rs` pin and the CI
//! `golden-traces` job, which reports the *first divergent event* via
//! [`ecolife_telemetry::diff_lines`]. Intentional changes regenerate
//! the baselines with `cargo run --release --bin golden_traces -- emit`.
//!
//! The workloads are scaled-down twins of `examples/quickstart.rs`,
//! `examples/fleet_cluster.rs`, and `examples/carbon_region_study.rs`
//! (same fleets, schedulers, and seeds; shorter traces keep the
//! checked-in streams small). `fleet_cluster` runs through the
//! *sharded* engine on purpose: its golden pins the
//! sharded-equals-sequential stream discipline at a fixed shard layout.

use ecolife_carbon::{CarbonIntensityTrace, CiBundle, Region, TransferCost};
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::{skus, NodeId};
use ecolife_sim::{CaptureSink, MembershipPlan, ShardOptions, SimConfig, Simulation};
use ecolife_telemetry::GoldenSnapshot;
use ecolife_trace::{FunctionId, Invocation, SynthTraceConfig, Trace, WorkloadCatalog};

/// The golden workload names, in emission order.
pub const GOLDEN_WORKLOADS: [&str; 4] = [
    "quickstart",
    "fleet_cluster",
    "carbon_region_study",
    "follow_the_sun",
];

/// Replay one golden workload and capture its full event stream.
///
/// Panics on an unknown name — the caller iterates
/// [`GOLDEN_WORKLOADS`].
pub fn run_golden(name: &str) -> CaptureSink {
    let mut sink = CaptureSink::default();
    match name {
        // examples/quickstart.rs in miniature: pair-A fleet, CISO grid,
        // EcoLife, sequential engine.
        "quickstart" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 42,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 42);
            let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(
                &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &mut sink,
            );
        }
        // examples/fleet_cluster.rs in miniature: three CPU generations,
        // EcoLife — replayed through the *sharded* engine so the golden
        // also pins the merged-stream discipline.
        "fleet_cluster" => {
            let trace = SynthTraceConfig {
                n_functions: 10,
                duration_min: 45,
                seed: 7,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 7);
            let fleet = skus::fleet_of(&[
                ecolife_hw::Sku::I3Metal,
                ecolife_hw::Sku::M5Metal,
                ecolife_hw::Sku::M5znMetal,
            ])
            .with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_sharded_with_sink(
                |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &ShardOptions::new(4).with_threads(2),
                &mut sink,
            );
        }
        // examples/carbon_region_study.rs in miniature: the ten-node
        // five-region fleet, one free EcoLife, per-node grid series.
        "carbon_region_study" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 1234,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let bundle = CiBundle::synthetic_all(60, 1234);
            let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(12 * 1024);
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .run_with_sink(
                    &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                    &mut sink,
                );
        }
        // examples/follow_the_sun.rs in miniature: priced migrations,
        // the engine's periodic re-placement pass, and a mid-trace
        // leave/join, over the five-region fleet with phase-shifted
        // diurnal arrivals. This golden pins the priced-migration
        // economics end to end: egress grams, latency debt, membership
        // drains, and their event-stream keys.
        "follow_the_sun" => {
            let base = WorkloadCatalog::sebs();
            let mut catalog = WorkloadCatalog::default();
            let mut invocations: Vec<Invocation> = Vec::new();
            for i in 0..5u64 {
                let stream = SynthTraceConfig {
                    n_functions: 4,
                    duration_min: 60,
                    seed: 0x50_1A_12 + i,
                    phase_offset_min: i * 12,
                    ..Default::default()
                }
                .generate(&base);
                let offset = catalog.len() as u32;
                for (_, profile) in stream.catalog().iter() {
                    catalog.push(profile.clone());
                }
                invocations.extend(stream.invocations().iter().map(|inv| Invocation {
                    func: FunctionId(inv.func.0 + offset),
                    t_ms: inv.t_ms,
                }));
            }
            let trace = Trace::new(catalog, invocations);
            let bundle = CiBundle::synthetic_all(80, 99);
            let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(64 * 1024);
            let cost = TransferCost {
                egress_kwh_per_mib: 2.0e-9,
                latency_ms: 50,
            };
            let membership = MembershipPlan::default()
                .leave(20 * 60_000, NodeId(0))
                .join(40 * 60_000, NodeId(0));
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .with_config(
                    SimConfig::default()
                        .with_transfer_cost(cost)
                        .with_replacement_every_min(10),
                )
                .with_membership(membership)
                .run_with_sink(
                    &mut EcoLife::new(
                        fleet.clone(),
                        EcoLifeConfig::default().with_transfer_cost(cost),
                    ),
                    &mut sink,
                );
        }
        other => panic!("unknown golden workload '{other}'"),
    }
    sink
}

/// The `<name>.golden` summary for a captured stream.
pub fn snapshot(name: &str, sink: &CaptureSink) -> GoldenSnapshot {
    let tip = sink
        .tip()
        .expect("golden workloads emit at least RunStarted/RunEnded");
    GoldenSnapshot {
        workload: name.to_string(),
        events: sink.len() as u64,
        tip: tip.to_string(),
    }
}

/root/repo/target/debug/deps/fig7_effectiveness-9be7de52629bd4a9.d: crates/bench/benches/fig7_effectiveness.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_effectiveness-9be7de52629bd4a9.rmeta: crates/bench/benches/fig7_effectiveness.rs Cargo.toml

crates/bench/benches/fig7_effectiveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

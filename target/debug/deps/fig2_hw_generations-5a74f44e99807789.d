/root/repo/target/debug/deps/fig2_hw_generations-5a74f44e99807789.d: crates/bench/benches/fig2_hw_generations.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_hw_generations-5a74f44e99807789.rmeta: crates/bench/benches/fig2_hw_generations.rs Cargo.toml

crates/bench/benches/fig2_hw_generations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pool_properties-dbb6720414ab6c7b.d: crates/sim/tests/pool_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpool_properties-dbb6720414ab6c7b.rmeta: crates/sim/tests/pool_properties.rs Cargo.toml

crates/sim/tests/pool_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_pso-c51756b169dbfd83.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs Cargo.toml

/root/repo/target/release/deps/libecolife_pso-c51756b169dbfd83.rmeta: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs Cargo.toml

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

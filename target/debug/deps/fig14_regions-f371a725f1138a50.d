/root/repo/target/debug/deps/fig14_regions-f371a725f1138a50.d: crates/bench/benches/fig14_regions.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_regions-f371a725f1138a50.rmeta: crates/bench/benches/fig14_regions.rs Cargo.toml

crates/bench/benches/fig14_regions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

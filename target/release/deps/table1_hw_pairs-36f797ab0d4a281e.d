/root/repo/target/release/deps/table1_hw_pairs-36f797ab0d4a281e.d: crates/bench/benches/table1_hw_pairs.rs Cargo.toml

/root/repo/target/release/deps/libtable1_hw_pairs-36f797ab0d4a281e.rmeta: crates/bench/benches/table1_hw_pairs.rs Cargo.toml

crates/bench/benches/table1_hw_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! # EcoLife — carbon-aware serverless function scheduling
//!
//! A reproduction of *"EcoLife: Carbon-Aware Serverless Function
//! Scheduling for Sustainable Computing"* (SC 2024), generalized from the
//! paper's two-generation hardware pair to **N-node heterogeneous
//! fleets**: a scheduler that co-optimizes service time and carbon
//! footprint by deciding, per serverless function, **which fleet node**
//! and **how long** to keep the function warm, using a per-function
//! Dynamic Particle Swarm Optimizer with a perception–response mechanism
//! and a priority-eviction warm-pool adjustment.
//!
//! ## The fleet model
//!
//! Hardware is described as a [`Fleet`](hw::Fleet) — an ordered set of
//! CPU+DRAM nodes addressed by [`NodeId`](hw::NodeId). Each node hosts
//! one memory-bounded warm pool; schedulers place execution and
//! keep-alive on any node, and the warm-pool adjustment transfers
//! displaced containers along an explicit cheapest-first target ranking.
//! The paper's old/new pairs are the two-node special case:
//! [`HardwarePair`](hw::HardwarePair) converts into a fleet with `old` at
//! node 0 and `new` at node 1, and [`Generation`](hw::Generation)
//! aliases those slots so figure code keeps its Old/New vocabulary.
//! Larger fleets come from [`skus::fleet_of`](hw::skus::fleet_of) (e.g.
//! the three-generation demo fleet,
//! [`skus::fleet_three_generations`](hw::skus::fleet_three_generations)).
//!
//! This meta-crate re-exports the public API of the workspace:
//!
//! * [`hw`] — heterogeneous hardware models: SKUs, nodes, fleets, power,
//!   embodied carbon, performance scaling;
//! * [`carbon`] — carbon-intensity traces (5 grid regions) and the
//!   serverless carbon-footprint model;
//! * [`trace`] — SeBS workload catalog, Azure trace parser, synthetic
//!   Azure-like trace generator, inter-arrival statistics;
//! * [`sim`] — the discrete-event serverless cluster simulator, with
//!   deterministic fault injection ([`FaultPlan`](sim::FaultPlan):
//!   crashes, stale grids, partitions) and graceful degradation;
//! * [`pso`] — PSO / Dynamic PSO / GA / SA optimizers over fleet-sized
//!   placement spaces;
//! * [`core`] — the EcoLife scheduler, every baseline of the paper's
//!   evaluation, and the experiment runner;
//! * [`service`] — the engine as a live service: streaming ingest over
//!   bounded channel lanes, bounded per-node executors with typed
//!   admission, bit-identical to batch replay of the same workload;
//! * [`planner`] — fleet capacity planning: searches SKU mixes and
//!   memory budgets against a workload, with the scheduler + simulator
//!   as the inner evaluator (see `examples/capacity_planning.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use ecolife::prelude::*;
//!
//! // A synthetic Azure-like trace over the SeBS workload catalog.
//! let trace = SynthTraceConfig::small(42).generate(&WorkloadCatalog::sebs());
//! // California carbon intensity, the pair-A fleet (i3.metal / m5zn.metal).
//! let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 42);
//! let fleet = skus::fleet_a();
//!
//! let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
//! let (summary, _) = run_scheme(&trace, &ci, &fleet, &mut ecolife);
//! assert!(summary.total_carbon_g > 0.0);
//! ```
//!
//! A three-node fleet is the same few lines:
//!
//! ```
//! use ecolife::prelude::*;
//!
//! let trace = SynthTraceConfig::small(7).generate(&WorkloadCatalog::sebs());
//! let ci = CarbonIntensityTrace::constant(300.0, 120);
//! let fleet = skus::fleet_of(&[Sku::I3Metal, Sku::M5Metal, Sku::M5znMetal]);
//!
//! let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
//! let (summary, metrics) = run_scheme(&trace, &ci, &fleet, &mut ecolife);
//! assert_eq!(summary.invocations, trace.len());
//! assert!(metrics.records.iter().all(|r| fleet.contains(r.exec_location)));
//! ```

pub mod golden;

pub use ecolife_carbon as carbon;
pub use ecolife_core as core;
pub use ecolife_hw as hw;
pub use ecolife_planner as planner;
pub use ecolife_pso as pso;
pub use ecolife_service as service;
pub use ecolife_sim as sim;
pub use ecolife_telemetry as telemetry;
pub use ecolife_trace as trace;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use ecolife_carbon::{
        CarbonIntensityTrace, CarbonModel, CarbonModelConfig, CiBundle, CiError, CiProvider, Region,
    };
    pub use ecolife_core::report::{
        placements_to_markdown, summaries_to_csv, summaries_to_markdown,
    };
    pub use ecolife_core::{
        compare, run_scheme, run_scheme_regional, run_scheme_regional_traced, run_scheme_traced,
        BruteForce, Comparison, CostModel, EcoLife, EcoLifeConfig, FixedPolicy, OptTarget,
        Partition, PartitionedScheduler, RunSummary,
    };
    pub use ecolife_hw::{
        skus, Fleet, Generation, HardwareNode, HardwarePair, NodeId, PairId, Sku,
    };
    pub use ecolife_planner::{
        FleetPlan, PlanEvaluator, PlanReport, PlanScore, PlanSpace, Planner, PlannerConfig,
        SearchAlgorithm,
    };
    pub use ecolife_pso::{
        BatchOptimizer, DpsoConfig, DynamicPso, GaConfig, GeneticAlgorithm, Optimizer, Pso,
        PsoConfig, SaConfig, SearchSpace, SimulatedAnnealing,
    };
    pub use ecolife_service::{ServeError, Service};
    pub use ecolife_sim::{
        CaptureSink, Event, EventSink, ExecutorConfig, Fault, FaultError, FaultPlan,
        GoldenSnapshot, JsonlSink, MembershipEvent, MembershipPlan, NullSink, RetryPolicy,
        RunMetrics, Scheduler, ShardOptions, SimConfig, Simulation, StalenessPolicy, TransferCost,
        MINUTE_MS,
    };
    pub use ecolife_trace::{
        live_lanes, FunctionId, FunctionProfile, Invocation, InvocationSource, LaneIngest,
        LiveSource, SynthTraceConfig, Trace, WorkloadCatalog,
    };
}

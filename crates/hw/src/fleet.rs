//! An N-node heterogeneous fleet — the unit of deployment the scheduler
//! operates over.
//!
//! The paper evaluates exactly two nodes (one old-generation, one
//! new-generation: [`HardwarePair`]), and notes in Sec. VI-C that the
//! approach "generalizes to multiple pairs by maintaining multiple warm
//! pools". [`Fleet`] is that generalization: an ordered, non-empty set of
//! [`HardwareNode`]s addressed by [`NodeId`]. Every layer above —
//! cluster state, engine, schedulers, optimizers — is keyed by `NodeId`,
//! so a two-node pair is simply the `N = 2` special case
//! ([`From<HardwarePair>`] preserves the `old = node 0`, `new = node 1`
//! layout the [`Generation`](crate::Generation) compatibility aliases
//! rely on).

use crate::{HardwareNode, HardwarePair, NodeId, Region};

/// An ordered, non-empty set of schedulable hardware nodes.
///
/// Node `i` carries `NodeId(i)`: the id doubles as the index, which keeps
/// array-backed per-node state (warm pools, counters) trivially addressable.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    nodes: Vec<HardwareNode>,
}

impl Fleet {
    /// Build a fleet from nodes.
    ///
    /// # Panics
    /// Panics when `nodes` is empty or when a node's id does not match its
    /// position — an id/index mismatch would silently misroute every
    /// placement downstream.
    pub fn new(nodes: Vec<HardwareNode>) -> Self {
        assert!(!nodes.is_empty(), "a fleet needs at least one node");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(
                n.id,
                NodeId(i as u32),
                "node at position {i} carries id {:?}; fleet ids must equal positions",
                n.id
            );
        }
        Fleet { nodes }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false` (the constructor rejects empty fleets); present for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node ids in position order.
    #[inline]
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate nodes in position order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &HardwareNode> {
        self.nodes.iter()
    }

    /// The node with `id`.
    ///
    /// # Panics
    /// Panics when `id` names no node of this fleet.
    #[inline]
    pub fn node(&self, id: impl Into<NodeId>) -> &HardwareNode {
        let id = id.into();
        &self.nodes[id.0 as usize]
    }

    /// Mutable node accessor (used by memory-budget sweeps).
    #[inline]
    pub fn node_mut(&mut self, id: impl Into<NodeId>) -> &mut HardwareNode {
        let id = id.into();
        &mut self.nodes[id.0 as usize]
    }

    /// Whether `id` names a node of this fleet.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        (id.0 as usize) < self.nodes.len()
    }

    /// Node ids ranked by warm-serving preference: fastest first
    /// (descending `perf_index`, then descending CPU year, then ascending
    /// id for determinism).
    ///
    /// When a function is warm on several nodes at once, the cluster
    /// serves from the highest-ranked one — the two-node special case of
    /// "the newer generation wins; it serves the faster warm start".
    pub fn warm_preference(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.ids().collect();
        ids.sort_by(|a, b| {
            let (na, nb) = (self.node(*a), self.node(*b));
            nb.cpu
                .perf_index
                .partial_cmp(&na.cpu.perf_index)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(nb.cpu.year.cmp(&na.cpu.year))
                .then(a.cmp(b))
        });
        ids
    }

    /// Every node except `exclude`, in id order — the default set of
    /// transfer targets when a warm-pool adjustment displaces containers
    /// and the scheduler supplied no explicit ranking.
    pub fn transfer_candidates(&self, exclude: NodeId) -> Vec<NodeId> {
        self.ids().filter(|&id| id != exclude).collect()
    }

    /// The newest node: highest CPU year, ties broken by `perf_index`,
    /// then by id. Baselines pin themselves here (`New-Only` on an
    /// N-node fleet).
    pub fn newest(&self) -> NodeId {
        self.extreme(|a, b| {
            a.cpu.year.cmp(&b.cpu.year).then(
                a.cpu
                    .perf_index
                    .partial_cmp(&b.cpu.perf_index)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
    }

    /// The oldest node (inverse ranking of [`Fleet::newest`]).
    pub fn oldest(&self) -> NodeId {
        self.extreme(|a, b| {
            b.cpu.year.cmp(&a.cpu.year).then(
                b.cpu
                    .perf_index
                    .partial_cmp(&a.cpu.perf_index)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
    }

    fn extreme(&self, cmp: impl Fn(&HardwareNode, &HardwareNode) -> std::cmp::Ordering) -> NodeId {
        self.ids()
            .max_by(|a, b| cmp(self.node(*a), self.node(*b)).then(b.cmp(a)))
            .expect("fleet is non-empty")
    }

    /// Apply one keep-alive memory budget (MiB) to every node — the
    /// N-node version of the Fig. 11 memory sweep knob.
    pub fn with_uniform_keepalive_budget_mib(mut self, mib: u64) -> Self {
        for n in &mut self.nodes {
            n.keepalive_mem_mib = mib;
        }
        self
    }

    /// Set one node's keep-alive budget (MiB).
    pub fn with_keepalive_budget_mib(mut self, id: impl Into<NodeId>, mib: u64) -> Self {
        self.node_mut(id).keepalive_mem_mib = mib;
        self
    }

    /// Deploy every node in one region.
    pub fn with_uniform_region(mut self, region: Region) -> Self {
        for n in &mut self.nodes {
            n.region = region;
        }
        self
    }

    /// Deploy one node in `region`.
    pub fn with_region(mut self, id: impl Into<NodeId>, region: Region) -> Self {
        self.node_mut(id).region = region;
        self
    }

    /// The distinct regions this fleet spans, in first-appearance (node
    /// id) order. A single-region fleet — the paper's setup — returns
    /// one entry.
    pub fn regions(&self) -> Vec<Region> {
        let mut out: Vec<Region> = Vec::new();
        for n in &self.nodes {
            if !out.contains(&n.region) {
                out.push(n.region);
            }
        }
        out
    }

    /// Node ids deployed in `region`, in id order.
    pub fn nodes_in_region(&self, region: Region) -> Vec<NodeId> {
        self.ids()
            .filter(|&id| self.node(id).region == region)
            .collect()
    }

    /// Concatenate sub-fleets into one fleet, renumbering node ids to
    /// positions in concatenation order. This is how a multi-region
    /// deployment is assembled from per-region sub-fleets (e.g. one
    /// hardware pair per grid region); the inverse mapping is recoverable
    /// from each sub-fleet's length.
    ///
    /// # Panics
    /// Panics when `parts` contains no nodes at all.
    pub fn concat(parts: &[Fleet]) -> Fleet {
        let mut nodes: Vec<HardwareNode> = Vec::new();
        for part in parts {
            for n in part.iter() {
                let mut n = n.clone();
                n.id = NodeId(nodes.len() as u32);
                nodes.push(n);
            }
        }
        Fleet::new(nodes)
    }
}

impl From<HardwarePair> for Fleet {
    /// The two-node fleet of a Table I pair: `old` becomes node 0, `new`
    /// node 1 — the layout the [`Generation`](crate::Generation)
    /// compatibility aliases (`Old -> NodeId(0)`, `New -> NodeId(1)`)
    /// assume.
    fn from(pair: HardwarePair) -> Fleet {
        Fleet::new(vec![pair.old, pair.new])
    }
}

impl From<&HardwarePair> for Fleet {
    fn from(pair: &HardwarePair) -> Fleet {
        Fleet::from(pair.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skus, Generation};

    #[test]
    fn pair_conversion_preserves_old_new_layout() {
        let pair = skus::pair_a();
        let fleet = Fleet::from(&pair);
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.node(NodeId(0)), &pair.old);
        assert_eq!(fleet.node(NodeId(1)), &pair.new);
        // Generation aliases route to the same nodes.
        assert_eq!(fleet.node(Generation::Old), &pair.old);
        assert_eq!(fleet.node(Generation::New), &pair.new);
    }

    #[test]
    fn warm_preference_puts_fastest_first() {
        let fleet = Fleet::from(skus::pair_a());
        assert_eq!(fleet.warm_preference(), vec![NodeId(1), NodeId(0)]);
        let three = skus::fleet_of(&[skus::Sku::I3Metal, skus::Sku::M5Metal, skus::Sku::M5znMetal]);
        assert_eq!(
            three.warm_preference(),
            vec![NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn newest_and_oldest_rank_by_year() {
        let three = skus::fleet_of(&[skus::Sku::M5Metal, skus::Sku::M5znMetal, skus::Sku::I3Metal]);
        assert_eq!(three.newest(), NodeId(1)); // 8252C (2020)
        assert_eq!(three.oldest(), NodeId(2)); // E5-2686 (2016)
    }

    #[test]
    fn ties_on_newest_resolve_to_lowest_id() {
        let twin = skus::fleet_of(&[skus::Sku::M5znMetal, skus::Sku::M5znMetal]);
        assert_eq!(twin.newest(), NodeId(0));
        assert_eq!(twin.oldest(), NodeId(0));
    }

    #[test]
    fn transfer_candidates_exclude_the_source() {
        let three = skus::fleet_of(&[skus::Sku::I3Metal, skus::Sku::M5Metal, skus::Sku::M5znMetal]);
        assert_eq!(
            three.transfer_candidates(NodeId(1)),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn budget_builders() {
        let fleet = Fleet::from(skus::pair_a())
            .with_uniform_keepalive_budget_mib(4_096)
            .with_keepalive_budget_mib(NodeId(1), 8_192);
        assert_eq!(fleet.node(NodeId(0)).keepalive_mem_mib, 4_096);
        assert_eq!(fleet.node(NodeId(1)).keepalive_mem_mib, 8_192);
    }

    #[test]
    fn region_helpers_tag_and_group_nodes() {
        let fleet = Fleet::from(skus::pair_a())
            .with_uniform_region(Region::Texas)
            .with_region(NodeId(1), Region::NewYork);
        assert_eq!(fleet.node(NodeId(0)).region, Region::Texas);
        assert_eq!(fleet.node(NodeId(1)).region, Region::NewYork);
        assert_eq!(fleet.regions(), vec![Region::Texas, Region::NewYork]);
        assert_eq!(fleet.nodes_in_region(Region::Texas), vec![NodeId(0)]);
        assert_eq!(fleet.nodes_in_region(Region::Caiso), Vec::<NodeId>::new());
        // Default fleets are single-region.
        assert_eq!(Fleet::from(skus::pair_a()).regions(), vec![Region::Caiso]);
    }

    #[test]
    fn concat_renumbers_ids_and_keeps_regions() {
        let a = Fleet::from(skus::pair_a()).with_uniform_region(Region::Tennessee);
        let b = Fleet::from(skus::pair_a()).with_uniform_region(Region::NewYork);
        let both = Fleet::concat(&[a.clone(), b]);
        assert_eq!(both.len(), 4);
        assert_eq!(both.node(NodeId(2)).region, Region::NewYork);
        assert_eq!(both.node(NodeId(2)).cpu, a.node(NodeId(0)).cpu);
        assert_eq!(both.regions(), vec![Region::Tennessee, Region::NewYork]);
        assert_eq!(
            both.nodes_in_region(Region::NewYork),
            vec![NodeId(2), NodeId(3)]
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn concat_rejects_no_nodes() {
        Fleet::concat(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_fleet() {
        Fleet::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "fleet ids must equal positions")]
    fn rejects_misnumbered_nodes() {
        let pair = skus::pair_a();
        Fleet::new(vec![pair.new, pair.old]);
    }
}

//! A memory-bounded warm pool: the set of containers kept alive on one
//! generation's node.
//!
//! Expiry — the most frequent event in a replay (every invocation lapses
//! every node's overdue containers before anything else happens) — runs
//! off a per-pool **expiry timeline**: a min-heap of `(expiry_ms,
//! FunctionId)` entries with *lazy invalidation*. Inserts push an entry;
//! removals (warm reuse, keep-alive replacement, transfer, revocation)
//! leave their entry behind as a tombstone that is recognized and
//! skipped when popped (the resident container's `expiry_ms` no longer
//! matches). [`WarmPool::expire_until`] is therefore O(1) when nothing
//! is due — a heap-top peek — instead of a scan of every resident
//! container, and pops only actually-lapsed containers otherwise. The
//! scan implementation survives behind [`ExpiryMode::Scan`] as the
//! bit-identity reference the property suite replays against.

use crate::container::WarmContainer;
use ecolife_trace::FunctionId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// How a pool finds its lapsed containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpiryMode {
    /// The expiry-timeline fast path (min-heap + lazy invalidation):
    /// `expire_until` peeks the heap top and pops only due entries.
    #[default]
    Timeline,
    /// The original full-pool scan — O(residents) per call. Kept as the
    /// reference implementation: the timeline must reproduce its
    /// records bit-for-bit (tests/expiry_timeline.rs, CI smoke bench).
    Scan,
}

/// Expiry-machinery observability counters (surfaced per run through
/// [`RunMetrics`](crate::RunMetrics)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpiryStats {
    /// Containers actually reclaimed by expiry (identical across modes).
    pub expired: u64,
    /// Timeline entries popped (valid + stale); `Timeline` mode only.
    pub timeline_pops: u64,
    /// Popped entries that were tombstones of removed/replaced
    /// containers (the lazy-invalidation overhead); `Timeline` only.
    pub stale_pops: u64,
    /// Residents examined by the reference scan; `Scan` mode only.
    pub scanned: u64,
}

impl ExpiryStats {
    /// Accumulate another pool's counters into this one.
    pub fn absorb(&mut self, other: ExpiryStats) {
        self.expired += other.expired;
        self.timeline_pops += other.timeline_pops;
        self.stale_pops += other.stale_pops;
        self.scanned += other.scanned;
    }
}

/// Warm pool with a hard memory budget. At most one container per
/// function per pool (re-keep-alive replaces the entry).
///
/// In a sharded run several pools share one physical node: each shard
/// owns a pool, and the engine charges the *other* shards' bytes against
/// this pool's budget through [`WarmPool::set_external_used_mib`] (a
/// start-of-period ledger snapshot). The external share counts toward
/// admission ([`WarmPool::fits`]) but is never mutated by this pool's
/// own inserts/removals. Sequential runs leave it at zero.
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    capacity_mib: u64,
    used_mib: u64,
    /// Bytes held on the same node by other shards' pools (MiB),
    /// refreshed from the memory ledger at each reconciliation.
    external_used_mib: u64,
    containers: HashMap<FunctionId, WarmContainer>,
    /// The expiry timeline: min-heap of `(expiry_ms, func)`. Entries are
    /// pushed on insert and lazily invalidated (skipped on pop) when the
    /// resident container for `func` is gone or carries a different
    /// expiry. Unused (empty) in [`ExpiryMode::Scan`].
    timeline: BinaryHeap<Reverse<(u64, FunctionId)>>,
    mode: ExpiryMode,
    stats: ExpiryStats,
    /// Net occupancy change (MiB) since the last
    /// [`WarmPool::take_period_delta_mib`] — the sharded engine's
    /// per-period admissions buffer, applied to the memory ledger in one
    /// pass at reconciliation instead of re-snapshotting every pool.
    period_delta_mib: i64,
}

impl WarmPool {
    pub fn new(capacity_mib: u64) -> Self {
        Self::with_mode(capacity_mib, ExpiryMode::Timeline)
    }

    /// A pool with an explicit expiry implementation (the engine threads
    /// [`SimConfig::expiry`](crate::SimConfig) through here).
    pub fn with_mode(capacity_mib: u64, mode: ExpiryMode) -> Self {
        WarmPool {
            capacity_mib,
            used_mib: 0,
            external_used_mib: 0,
            containers: HashMap::new(),
            timeline: BinaryHeap::new(),
            mode,
            stats: ExpiryStats::default(),
            period_delta_mib: 0,
        }
    }

    #[inline]
    pub fn capacity_mib(&self) -> u64 {
        self.capacity_mib
    }

    #[inline]
    pub fn used_mib(&self) -> u64 {
        self.used_mib
    }

    /// The expiry implementation this pool runs.
    #[inline]
    pub fn mode(&self) -> ExpiryMode {
        self.mode
    }

    /// Expiry-machinery counters accumulated so far.
    #[inline]
    pub fn expiry_stats(&self) -> ExpiryStats {
        self.stats
    }

    /// Other shards' bytes currently charged against this node's budget.
    #[inline]
    pub fn external_used_mib(&self) -> u64 {
        self.external_used_mib
    }

    /// Refresh the cross-shard pressure (ledger snapshot) this pool's
    /// admission decisions must respect.
    #[inline]
    pub fn set_external_used_mib(&mut self, mib: u64) {
        self.external_used_mib = mib;
    }

    /// Net occupancy change (MiB, signed) since the last call — and
    /// reset. The sharded engine drains this per period and applies it
    /// to the cross-shard memory ledger in one pass; every mutation path
    /// (insert, remove, expiry, drain) funds it, so
    /// `previous_published + delta == used_mib` always holds.
    #[inline]
    pub fn take_period_delta_mib(&mut self) -> i64 {
        std::mem::take(&mut self.period_delta_mib)
    }

    #[inline]
    pub fn free_mib(&self) -> u64 {
        self.capacity_mib
            .saturating_sub(self.used_mib + self.external_used_mib)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Whether `container` fits right now (accounting for an existing
    /// entry of the same function that would be replaced, and for the
    /// other shards' external share of the node).
    pub fn fits(&self, container: &WarmContainer) -> bool {
        let reclaimed = self
            .containers
            .get(&container.func)
            .map(|c| c.memory_mib)
            .unwrap_or(0);
        self.used_mib - reclaimed + self.external_used_mib + container.memory_mib
            <= self.capacity_mib
    }

    /// Insert a container. Returns the replaced entry for the same
    /// function, if any.
    ///
    /// # Errors
    /// Returns `Err(container)` without mutating when it does not fit.
    pub fn insert(
        &mut self,
        container: WarmContainer,
    ) -> Result<Option<WarmContainer>, WarmContainer> {
        if !self.fits(&container) {
            return Err(container);
        }
        if self.mode == ExpiryMode::Timeline {
            self.timeline
                .push(Reverse((container.expiry_ms, container.func)));
        }
        let old = self.containers.insert(container.func, container);
        if let Some(ref o) = old {
            // The replaced entry's timeline node becomes a tombstone
            // (its expiry no longer matches the resident container).
            self.used_mib -= o.memory_mib;
            self.period_delta_mib -= o.memory_mib as i64;
        }
        self.used_mib += container.memory_mib;
        self.period_delta_mib += container.memory_mib as i64;
        Ok(old)
    }

    /// Remove and return the container for `func`. Its timeline entry is
    /// left behind as a tombstone, recognized when popped.
    pub fn remove(&mut self, func: FunctionId) -> Option<WarmContainer> {
        let c = self.containers.remove(&func);
        if let Some(ref c) = c {
            self.used_mib -= c.memory_mib;
            self.period_delta_mib -= c.memory_mib as i64;
        }
        c
    }

    /// Container for `func`, if resident.
    pub fn get(&self, func: FunctionId) -> Option<&WarmContainer> {
        self.containers.get(&func)
    }

    /// Remove every container with `expiry_ms <= t_ms`, returning them
    /// in `FunctionId` order so the engine can settle their carbon.
    /// The order matters: settlement accumulates floats into per-node
    /// gram totals, and HashMap iteration order varies per instance —
    /// sorting here is what makes those sums bit-reproducible run to
    /// run (the determinism suite compares them exactly).
    ///
    /// Timeline mode answers the overwhelmingly common nothing-is-due
    /// case with one heap-top peek; the scan reference walks every
    /// resident. Both return the identical container sequence.
    pub fn expire_until(&mut self, t_ms: u64) -> Vec<WarmContainer> {
        match self.mode {
            ExpiryMode::Timeline => {
                // Fast path: nothing due (or nothing resident at all).
                match self.timeline.peek() {
                    Some(&Reverse((expiry, _))) if expiry <= t_ms => {}
                    _ => return Vec::new(),
                }
                let mut dead: Vec<WarmContainer> = Vec::new();
                while let Some(&Reverse((expiry, func))) = self.timeline.peek() {
                    if expiry > t_ms {
                        break;
                    }
                    self.timeline.pop();
                    self.stats.timeline_pops += 1;
                    // Valid only if the resident container still carries
                    // this exact expiry; anything else is a tombstone of
                    // a reused/replaced/transferred/revoked container.
                    match self.containers.get(&func) {
                        Some(c) if c.expiry_ms == expiry => {
                            let c = self.remove(func).expect("resident container");
                            dead.push(c);
                        }
                        _ => self.stats.stale_pops += 1,
                    }
                }
                // The heap yields (expiry, func) order; the engine pins
                // FunctionId order (see above).
                dead.sort_unstable_by_key(|c| c.func);
                self.stats.expired += dead.len() as u64;
                dead
            }
            ExpiryMode::Scan => {
                self.stats.scanned += self.containers.len() as u64;
                let mut expired: Vec<FunctionId> = self
                    .containers
                    .values()
                    .filter(|c| c.expiry_ms <= t_ms)
                    .map(|c| c.func)
                    .collect();
                expired.sort_unstable();
                self.stats.expired += expired.len() as u64;
                expired.into_iter().filter_map(|f| self.remove(f)).collect()
            }
        }
    }

    /// Drain every container (end-of-run settlement), in `FunctionId`
    /// order for the same bit-reproducibility reason as
    /// [`WarmPool::expire_until`].
    pub fn drain_all(&mut self) -> Vec<WarmContainer> {
        self.period_delta_mib -= self.used_mib as i64;
        self.used_mib = 0;
        self.timeline.clear();
        let mut drained: Vec<WarmContainer> = self.containers.drain().map(|(_, c)| c).collect();
        drained.sort_unstable_by_key(|c| c.func);
        drained
    }

    /// Iterate resident containers (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &WarmContainer> {
        self.containers.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(f: u32, mem: u64, since: u64, expiry: u64) -> WarmContainer {
        WarmContainer {
            func: FunctionId(f),
            memory_mib: mem,
            warm_since_ms: since,
            expiry_ms: expiry,
            origin_record: 0,
            transfer_latency_ms: 0,
        }
    }

    /// Run a test body against both expiry implementations.
    fn both_modes(test: impl Fn(fn(u64) -> WarmPool)) {
        test(|cap| WarmPool::with_mode(cap, ExpiryMode::Timeline));
        test(|cap| WarmPool::with_mode(cap, ExpiryMode::Scan));
    }

    #[test]
    fn insert_tracks_memory() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 400, 0, 100)).unwrap();
            p.insert(c(1, 500, 0, 100)).unwrap();
            assert_eq!(p.used_mib(), 900);
            assert_eq!(p.free_mib(), 100);
            assert_eq!(p.len(), 2);
        });
    }

    #[test]
    fn insert_rejects_over_capacity_without_mutation() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 800, 0, 100)).unwrap();
            let rejected = p.insert(c(1, 300, 0, 100));
            assert!(rejected.is_err());
            assert_eq!(p.used_mib(), 800);
            assert_eq!(p.len(), 1);
        });
    }

    #[test]
    fn replacing_same_function_reclaims_memory() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 800, 0, 100)).unwrap();
            // Same function, smaller footprint: must fit via reclaim.
            let old = p.insert(c(0, 600, 10, 200)).unwrap();
            assert_eq!(old.unwrap().memory_mib, 800);
            assert_eq!(p.used_mib(), 600);
            assert_eq!(p.len(), 1);
            assert_eq!(p.get(FunctionId(0)).unwrap().expiry_ms, 200);
        });
    }

    #[test]
    fn fits_accounts_for_replacement() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 900, 0, 100)).unwrap();
            assert!(p.fits(&c(0, 1_000, 0, 100)));
            assert!(!p.fits(&c(1, 200, 0, 100)));
        });
    }

    #[test]
    fn expire_until_removes_only_lapsed() {
        both_modes(|pool| {
            let mut p = pool(10_000);
            p.insert(c(0, 100, 0, 50)).unwrap();
            p.insert(c(1, 100, 0, 150)).unwrap();
            p.insert(c(2, 100, 0, 100)).unwrap();
            let dead = p.expire_until(100);
            // Returned in FunctionId order by contract (no re-sort here).
            assert_eq!(dead.len(), 2);
            assert_eq!(dead[0].func, FunctionId(0));
            assert_eq!(dead[1].func, FunctionId(2));
            assert_eq!(p.len(), 1);
            assert_eq!(p.used_mib(), 100);
            assert_eq!(p.expiry_stats().expired, 2);
        });
    }

    #[test]
    fn expire_order_is_function_id_not_expiry_time() {
        // f5 expires before f2, but a single expire_until call must
        // return FunctionId order — the settle order the sequential
        // engine pinned long before the timeline existed.
        both_modes(|pool| {
            let mut p = pool(10_000);
            p.insert(c(5, 100, 0, 10)).unwrap();
            p.insert(c(2, 100, 0, 20)).unwrap();
            let dead = p.expire_until(30);
            assert_eq!(dead[0].func, FunctionId(2));
            assert_eq!(dead[1].func, FunctionId(5));
        });
    }

    #[test]
    fn remove_missing_is_none() {
        both_modes(|pool| {
            let mut p = pool(100);
            assert!(p.remove(FunctionId(9)).is_none());
        });
    }

    #[test]
    fn drain_all_resets() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 100, 0, 50)).unwrap();
            p.insert(c(1, 100, 0, 50)).unwrap();
            let drained = p.drain_all();
            assert_eq!(drained.len(), 2);
            assert!(p.is_empty());
            assert_eq!(p.used_mib(), 0);
            // A drained pool's timeline holds no live entries: nothing
            // can "expire" afterwards.
            assert!(p.expire_until(u64::MAX).is_empty());
        });
    }

    #[test]
    fn external_pressure_counts_toward_admission() {
        both_modes(|pool| {
            let mut p = pool(1_000);
            p.insert(c(0, 400, 0, 100)).unwrap();
            assert_eq!(p.free_mib(), 600);
            p.set_external_used_mib(500);
            assert_eq!(p.free_mib(), 100);
            // 200 MiB no longer fits (400 own + 500 external + 200 > 1000)…
            assert!(p.insert(c(1, 200, 0, 100)).is_err());
            // …but replacing the resident 400-MiB entry still reclaims it.
            assert!(p.fits(&c(0, 500, 10, 200)));
            // Releasing the pressure restores admission; own usage was never
            // confused with the external share.
            p.set_external_used_mib(0);
            assert_eq!(p.used_mib(), 400);
            p.insert(c(1, 200, 0, 100)).unwrap();
            assert_eq!(p.used_mib(), 600);
        });
    }

    #[test]
    fn memory_invariant_under_churn() {
        // used_mib must always equal the sum of resident footprints.
        both_modes(|pool| {
            let mut p = pool(5_000);
            for i in 0..20u32 {
                let _ = p.insert(c(i % 7, 100 + (i as u64 * 37) % 400, 0, 1 + i as u64 * 10));
                let expected: u64 = p.iter().map(|c| c.memory_mib).sum();
                assert_eq!(p.used_mib(), expected);
                if i % 3 == 0 {
                    p.expire_until(i as u64 * 5);
                    let expected: u64 = p.iter().map(|c| c.memory_mib).sum();
                    assert_eq!(p.used_mib(), expected);
                }
            }
        });
    }

    #[test]
    fn timeline_skips_tombstones_of_removed_containers() {
        // Warm reuse: the container leaves via remove(); its timeline
        // entry must be recognized as stale, not resurrect an expiry.
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 100, 0, 50)).unwrap();
        assert!(p.remove(FunctionId(0)).is_some());
        assert!(p.expire_until(100).is_empty());
        let stats = p.expiry_stats();
        assert_eq!(stats.stale_pops, 1);
        assert_eq!(stats.expired, 0);
    }

    #[test]
    fn timeline_tracks_keepalive_extension() {
        // Re-keep-alive replaces the entry with a later expiry: the old
        // timeline node is a tombstone, the new one fires at the new time.
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 100, 0, 50)).unwrap();
        p.insert(c(0, 100, 10, 500)).unwrap(); // extension
        assert!(p.expire_until(100).is_empty(), "extended, must not lapse");
        assert_eq!(p.expiry_stats().stale_pops, 1, "old entry tombstoned");
        let dead = p.expire_until(500);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].expiry_ms, 500);
    }

    #[test]
    fn timeline_handles_reinserted_same_expiry() {
        // Remove + re-insert with the *same* expiry leaves two live-
        // looking heap entries for one container; exactly one may expire.
        let mut p = WarmPool::new(1_000);
        p.insert(c(0, 100, 0, 50)).unwrap();
        let taken = p.remove(FunctionId(0)).unwrap();
        p.insert(taken).unwrap();
        let dead = p.expire_until(50);
        assert_eq!(dead.len(), 1);
        assert!(p.is_empty());
        assert_eq!(p.expiry_stats().expired, 1);
        assert_eq!(p.expiry_stats().stale_pops, 1);
    }

    #[test]
    fn expiry_counters_split_by_mode() {
        let mut timeline = WarmPool::new(1_000);
        timeline.insert(c(0, 100, 0, 50)).unwrap();
        timeline.expire_until(10); // heap-top peek only — no pops
        timeline.expire_until(60);
        let t = timeline.expiry_stats();
        assert_eq!((t.expired, t.timeline_pops, t.scanned), (1, 1, 0));

        let mut scan = WarmPool::with_mode(1_000, ExpiryMode::Scan);
        scan.insert(c(0, 100, 0, 50)).unwrap();
        scan.expire_until(10);
        scan.expire_until(60);
        let s = scan.expiry_stats();
        assert_eq!((s.expired, s.timeline_pops), (1, 0));
        assert_eq!(s.scanned, 2, "one resident examined per call");
    }

    #[test]
    fn period_delta_follows_every_mutation_path() {
        let mut p = WarmPool::new(1_000);
        assert_eq!(p.take_period_delta_mib(), 0);
        p.insert(c(0, 400, 0, 100)).unwrap();
        p.insert(c(1, 300, 0, 50)).unwrap();
        assert_eq!(p.take_period_delta_mib(), 700);
        // Replacement: -400 + 250.
        p.insert(c(0, 250, 10, 200)).unwrap();
        assert_eq!(p.take_period_delta_mib(), -150);
        // Expiry of f1 releases 300.
        p.expire_until(50);
        assert_eq!(p.take_period_delta_mib(), -300);
        // Remove + drain.
        p.insert(c(2, 100, 0, 500)).unwrap();
        p.remove(FunctionId(2));
        p.drain_all();
        assert_eq!(p.take_period_delta_mib(), -250);
        assert_eq!(p.used_mib(), 0);
    }
}

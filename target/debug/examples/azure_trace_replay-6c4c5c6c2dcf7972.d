/root/repo/target/debug/examples/azure_trace_replay-6c4c5c6c2dcf7972.d: examples/azure_trace_replay.rs

/root/repo/target/debug/examples/azure_trace_replay-6c4c5c6c2dcf7972: examples/azure_trace_replay.rs

examples/azure_trace_replay.rs:

//! Region-keyed carbon-intensity bundles and the per-node resolver.
//!
//! A multi-region fleet needs one minute-resolution CI series *per grid
//! region*; [`CiBundle`] is that validated collection, and
//! [`CiProvider`] resolves it (or a single shared series — the paper's
//! single-region setup) per [`NodeId`] at observation time. Every CI
//! read in the simulator goes through the provider, so "which grid does
//! this node burn" is answered exactly once, at construction, instead of
//! being implicit in a shared global trace.

use crate::intensity::CarbonIntensityTrace;
use ecolife_hw::{Fleet, NodeId, Region};

/// Typed errors of CI plumbing: bundle construction and per-node
/// resolution. These are *construction-time* failures by design — a
/// mis-wired or too-short CI feed must never degrade into silently
/// frozen intensity mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum CiError {
    /// The bundle holds no series at all.
    Empty,
    /// Two series were registered for the same region.
    DuplicateRegion(Region),
    /// The bundle's series disagree on coverage: every region must span
    /// the same minutes, otherwise a multi-region comparison is lopsided
    /// and span validation is ambiguous.
    UnequalLength {
        region: Region,
        len_minutes: usize,
        expected_minutes: usize,
    },
    /// A fleet node's region has no series in the bundle.
    MissingRegion { node: NodeId, region: Region },
    /// The series for `region` ends before the workload does. Extend the
    /// feed (e.g. [`CarbonIntensityTrace::extend_cyclic`]) or trim the
    /// workload; the engine refuses to freeze the last sample silently.
    TooShort {
        region: Region,
        ci_ms: u64,
        required_ms: u64,
    },
}

impl std::fmt::Display for CiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CiError::Empty => write!(f, "carbon-intensity bundle holds no series"),
            CiError::DuplicateRegion(r) => {
                write!(f, "duplicate carbon-intensity series for region {r}")
            }
            CiError::UnequalLength {
                region,
                len_minutes,
                expected_minutes,
            } => write!(
                f,
                "region {region}'s series covers {len_minutes} min, others cover {expected_minutes} min"
            ),
            CiError::MissingRegion { node, region } => {
                write!(f, "node {node} is deployed in {region}, which has no CI series")
            }
            CiError::TooShort {
                region,
                ci_ms,
                required_ms,
            } => write!(
                f,
                "carbon-intensity series for {region} covers {ci_ms} ms but the workload spans \
                 {required_ms} ms; refusing to freeze the last sample — extend the series \
                 (e.g. extend_cyclic) or trim the workload"
            ),
        }
    }
}

impl std::error::Error for CiError {}

/// A validated, region-keyed collection of carbon-intensity series.
///
/// Invariants (checked at construction): non-empty, one series per
/// region, and every series covering the same number of minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct CiBundle {
    entries: Vec<(Region, CarbonIntensityTrace)>,
}

impl CiBundle {
    /// Build a bundle from (region, series) pairs.
    pub fn new(entries: Vec<(Region, CarbonIntensityTrace)>) -> Result<Self, CiError> {
        let expected = match entries.first() {
            None => return Err(CiError::Empty),
            Some((_, t)) => t.len_minutes(),
        };
        for (i, (region, trace)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(r, _)| r == region) {
                return Err(CiError::DuplicateRegion(*region));
            }
            if trace.len_minutes() != expected {
                return Err(CiError::UnequalLength {
                    region: *region,
                    len_minutes: trace.len_minutes(),
                    expected_minutes: expected,
                });
            }
        }
        Ok(CiBundle { entries })
    }

    /// Synthesize `minutes` of intensity for each region, deterministically
    /// from `seed` (each region's stream derives from its own profile, so
    /// the same seed yields the paper's five distinct feeds).
    pub fn synthetic(regions: &[Region], minutes: usize, seed: u64) -> Result<Self, CiError> {
        CiBundle::new(
            regions
                .iter()
                .map(|&r| (r, CarbonIntensityTrace::synthetic(r, minutes, seed)))
                .collect(),
        )
    }

    /// All five evaluated regions ([`Region::ALL`]), synthesized.
    pub fn synthetic_all(minutes: usize, seed: u64) -> Self {
        Self::synthetic(&Region::ALL, minutes, seed).expect("Region::ALL has no duplicates")
    }

    /// The series for `region`, if registered.
    pub fn get(&self, region: Region) -> Option<&CarbonIntensityTrace> {
        self.entries
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, t)| t)
    }

    /// Registered (region, series) pairs, in registration order.
    pub fn entries(&self) -> &[(Region, CarbonIntensityTrace)] {
        &self.entries
    }

    /// Minutes covered by every series (they are equal by construction).
    pub fn len_minutes(&self) -> usize {
        self.entries[0].1.len_minutes()
    }

    /// Milliseconds covered by every series.
    pub fn len_ms(&self) -> u64 {
        self.entries[0].1.len_ms()
    }
}

/// How long a carbon-intensity feed may serve last-known-good data
/// before the scheduler stops trusting it.
///
/// During a `CiOutage` the provider freezes each affected minute at the
/// reading taken when the outage began. Up to `max_stale_min` minutes of
/// that is tolerable — grid intensity moves slowly — but past the bound
/// the region is considered *blacked out* and the engine falls back to a
/// carbon-agnostic placement for the duration (counted as
/// `degraded_decisions` in `RunMetrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessPolicy {
    /// Minutes of last-known-good data the scheduler will still act on.
    pub max_stale_min: u64,
    /// Keep-alive minutes the carbon-agnostic fallback grants on the
    /// execution node (0 disables fallback keep-alives).
    pub fallback_keepalive_min: u64,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            max_stale_min: 15,
            fallback_keepalive_min: 10,
        }
    }
}

impl StalenessPolicy {
    /// Override the staleness bound.
    pub fn with_max_stale_min(mut self, minutes: u64) -> Self {
        self.max_stale_min = minutes;
        self
    }

    /// Override the fallback keep-alive duration.
    pub fn with_fallback_keepalive_min(mut self, minutes: u64) -> Self {
        self.fallback_keepalive_min = minutes;
        self
    }

    /// The staleness bound in milliseconds.
    pub fn max_stale_ms(&self) -> u64 {
        self.max_stale_min.saturating_mul(60_000)
    }
}

/// Per-node carbon-intensity resolution for one fleet: every node id maps
/// to the series of its deployment region. This is the object the
/// simulation engine (and schedulers, via `InvocationCtx::ci`) read CI
/// through — `at(node, t)` replaces the old fleet-wide `at(t)`.
///
/// Fault injection can overlay *degraded* data ([`CiProvider::apply_outages`]):
/// outage minutes are rewritten to the last-known-good reading, and every
/// read resolves through the overlay. With no outages applied the overlay
/// is absent and reads delegate to the original series bit-for-bit.
#[derive(Debug, Clone)]
pub struct CiProvider<'a> {
    /// Series per node, indexed by `NodeId`.
    series: Vec<&'a CarbonIntensityTrace>,
    /// Degraded overlay per node: `Some` only when an outage touches the
    /// node's region, holding a copy of its series with the outage
    /// minutes frozen at last-known-good.
    degraded: Vec<Option<CarbonIntensityTrace>>,
    /// Region tag per node, indexed by `NodeId`.
    regions: Vec<Region>,
    /// Distinct regions in first-appearance (node id) order, each with a
    /// representative node index — the iteration order for per-region
    /// global signals (EcoLife's ΔCI).
    distinct: Vec<(Region, usize)>,
    /// How long stale data stays actionable (see [`StalenessPolicy`]).
    staleness: StalenessPolicy,
}

impl<'a> CiProvider<'a> {
    /// Every node reads the same series, regardless of its region tag —
    /// the paper's single-region setup, and the compatibility path behind
    /// `Simulation::new(trace, ci, fleet)`.
    pub fn shared(ci: &'a CarbonIntensityTrace, fleet: &Fleet) -> Self {
        let regions: Vec<Region> = fleet.iter().map(|n| n.region).collect();
        let series = vec![ci; regions.len()];
        CiProvider {
            distinct: Self::distinct_of(&regions),
            degraded: (0..series.len()).map(|_| None).collect(),
            series,
            regions,
            staleness: StalenessPolicy::default(),
        }
    }

    /// Resolve each fleet node's region against `bundle`.
    pub fn from_bundle(bundle: &'a CiBundle, fleet: &Fleet) -> Result<Self, CiError> {
        let mut series = Vec::with_capacity(fleet.len());
        let mut regions = Vec::with_capacity(fleet.len());
        for node in fleet.iter() {
            let trace = bundle.get(node.region).ok_or(CiError::MissingRegion {
                node: node.id,
                region: node.region,
            })?;
            series.push(trace);
            regions.push(node.region);
        }
        Ok(CiProvider {
            distinct: Self::distinct_of(&regions),
            degraded: (0..series.len()).map(|_| None).collect(),
            series,
            regions,
            staleness: StalenessPolicy::default(),
        })
    }

    fn distinct_of(regions: &[Region]) -> Vec<(Region, usize)> {
        let mut out: Vec<(Region, usize)> = Vec::new();
        for (i, &r) in regions.iter().enumerate() {
            if !out.iter().any(|&(seen, _)| seen == r) {
                out.push((r, i));
            }
        }
        out
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.series.len()
    }

    /// The series `node` actually reads: the degraded overlay when an
    /// outage touches its region, the original otherwise.
    #[inline]
    fn eff(&self, idx: usize) -> &CarbonIntensityTrace {
        match &self.degraded[idx] {
            Some(patched) => patched,
            None => self.series[idx],
        }
    }

    /// Intensity on `node`'s grid at `t_ms`.
    #[inline]
    pub fn at(&self, node: NodeId, t_ms: u64) -> f64 {
        self.eff(node.index()).at(t_ms)
    }

    /// Time-weighted average intensity on `node`'s grid over `[t0, t1)`.
    #[inline]
    pub fn average_over(&self, node: NodeId, t0_ms: u64, t1_ms: u64) -> f64 {
        self.eff(node.index()).average_over(t0_ms, t1_ms)
    }

    /// The full series `node` reads (schedulers must not peek past the
    /// current simulated minute; oracle-family baselines get their future
    /// knowledge explicitly in `prepare`).
    #[inline]
    pub fn series(&self, node: NodeId) -> &CarbonIntensityTrace {
        self.eff(node.index())
    }

    /// The region `node` is deployed in.
    #[inline]
    pub fn region(&self, node: NodeId) -> Region {
        self.regions[node.index()]
    }

    /// Intensity at `t_ms` on every node's grid, indexed by `NodeId` —
    /// the per-node snapshot EPDM-style placement scores compare.
    pub fn at_each_node(&self, t_ms: u64) -> Vec<f64> {
        (0..self.series.len())
            .map(|i| self.eff(i).at(t_ms))
            .collect()
    }

    /// Distinct (region, series) pairs in first-appearance node order —
    /// the deterministic iteration order for per-region global signals.
    pub fn distinct_regions(&self) -> impl Iterator<Item = (Region, &CarbonIntensityTrace)> + '_ {
        self.distinct.iter().map(|&(r, i)| (r, self.eff(i)))
    }

    /// The shortest coverage (ms) across nodes — what span validation
    /// checks the workload against.
    pub fn min_len_ms(&self) -> u64 {
        self.series
            .iter()
            .map(|s| s.len_ms())
            .min()
            .expect("provider covers a non-empty fleet")
    }

    /// The staleness policy reads are governed by.
    #[inline]
    pub fn staleness(&self) -> StalenessPolicy {
        self.staleness
    }

    /// Override the staleness policy (see [`StalenessPolicy`]).
    pub fn with_staleness(mut self, policy: StalenessPolicy) -> Self {
        self.staleness = policy;
        self
    }

    /// Overlay CI-feed outages: for every `(region, from_ms, to_ms)`
    /// span, affected nodes read the last-known-good sample (the reading
    /// at the outage start) for every minute that *begins* inside the
    /// span. Healing is therefore observed at minute granularity — the
    /// native resolution of the feeds. Spans outside the series or for
    /// regions no node reads are ignored; with no applicable outage the
    /// overlay stays absent and reads are bit-identical to the original.
    pub fn apply_outages(&mut self, outages: &[(Region, u64, u64)]) {
        for idx in 0..self.series.len() {
            let region = self.regions[idx];
            let mut samples: Option<Vec<f64>> = None;
            for &(r, from_ms, to_ms) in outages {
                if r != region || to_ms <= from_ms {
                    continue;
                }
                let base = samples.get_or_insert_with(|| self.series[idx].samples().to_vec());
                let n = base.len();
                let from_min = ((from_ms / 60_000) as usize).min(n - 1);
                let stale = base[from_min];
                let mut m = from_min + 1;
                while m < n && (m as u64) * 60_000 < to_ms {
                    base[m] = stale;
                    m += 1;
                }
            }
            if let Some(samples) = samples {
                self.degraded[idx] = Some(CarbonIntensityTrace::from_samples(samples));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::skus;

    #[test]
    fn bundle_validates_shape() {
        assert_eq!(CiBundle::new(vec![]), Err(CiError::Empty));
        let t60 = CarbonIntensityTrace::constant(100.0, 60);
        let t61 = CarbonIntensityTrace::constant(100.0, 61);
        assert_eq!(
            CiBundle::new(vec![
                (Region::Caiso, t60.clone()),
                (Region::Caiso, t60.clone())
            ]),
            Err(CiError::DuplicateRegion(Region::Caiso))
        );
        assert_eq!(
            CiBundle::new(vec![(Region::Caiso, t60.clone()), (Region::Texas, t61)]),
            Err(CiError::UnequalLength {
                region: Region::Texas,
                len_minutes: 61,
                expected_minutes: 60,
            })
        );
        let ok = CiBundle::new(vec![(Region::Caiso, t60)]).unwrap();
        assert_eq!(ok.len_minutes(), 60);
        assert_eq!(ok.len_ms(), 60 * 60_000);
        assert!(ok.get(Region::Caiso).is_some());
        assert!(ok.get(Region::Texas).is_none());
    }

    #[test]
    fn ci_error_displays_and_is_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(CiError::Empty),
            Box::new(CiError::DuplicateRegion(Region::Caiso)),
            Box::new(CiError::UnequalLength {
                region: Region::Texas,
                len_minutes: 61,
                expected_minutes: 60,
            }),
            Box::new(CiError::MissingRegion {
                node: NodeId(3),
                region: Region::Florida,
            }),
            Box::new(CiError::TooShort {
                region: Region::NewYork,
                ci_ms: 60_000,
                required_ms: 120_000,
            }),
        ];
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("no series"));
        assert!(rendered[1].contains("duplicate carbon-intensity series"));
        assert!(rendered[2].contains("covers 61 min"));
        assert!(rendered[3].contains("has no CI series"));
        assert!(rendered[4].contains("refusing to freeze the last sample"));
    }

    #[test]
    fn synthetic_all_covers_every_region() {
        let b = CiBundle::synthetic_all(120, 7);
        for r in Region::ALL {
            assert_eq!(b.get(r).unwrap().len_minutes(), 120);
        }
        // Region feeds are genuinely distinct series.
        assert_ne!(b.get(Region::Caiso), b.get(Region::Florida));
    }

    #[test]
    fn shared_provider_reads_one_series_everywhere() {
        let ci = CarbonIntensityTrace::from_samples(vec![100.0, 200.0]);
        let fleet = skus::fleet_a();
        let p = CiProvider::shared(&ci, &fleet);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.at(NodeId(0), 70_000), 200.0);
        assert_eq!(p.at(NodeId(1), 0), 100.0);
        assert_eq!(p.at_each_node(0), vec![100.0, 100.0]);
        // fleet_a is single-region: one distinct signal.
        assert_eq!(p.distinct_regions().count(), 1);
        assert_eq!(p.min_len_ms(), 120_000);
    }

    #[test]
    fn bundle_provider_resolves_per_node_regions() {
        let bundle = CiBundle::new(vec![
            (Region::Texas, CarbonIntensityTrace::constant(400.0, 60)),
            (Region::NewYork, CarbonIntensityTrace::constant(200.0, 60)),
        ])
        .unwrap();
        let fleet = skus::fleet_a()
            .with_region(NodeId(0), Region::Texas)
            .with_region(NodeId(1), Region::NewYork);
        let p = CiProvider::from_bundle(&bundle, &fleet).unwrap();
        assert_eq!(p.at(NodeId(0), 0), 400.0);
        assert_eq!(p.at(NodeId(1), 0), 200.0);
        assert_eq!(p.region(NodeId(1)), Region::NewYork);
        assert_eq!(p.at_each_node(0), vec![400.0, 200.0]);
        let distinct: Vec<Region> = p.distinct_regions().map(|(r, _)| r).collect();
        assert_eq!(distinct, vec![Region::Texas, Region::NewYork]);
    }

    #[test]
    fn outage_overlay_freezes_last_known_good_per_minute() {
        let bundle = CiBundle::new(vec![
            (
                Region::Texas,
                CarbonIntensityTrace::from_samples(vec![400.0, 410.0, 420.0, 430.0]),
            ),
            (
                Region::NewYork,
                CarbonIntensityTrace::from_samples(vec![200.0, 210.0, 220.0, 230.0]),
            ),
        ])
        .unwrap();
        let fleet = skus::fleet_a()
            .with_region(NodeId(0), Region::Texas)
            .with_region(NodeId(1), Region::NewYork);
        let mut p = CiProvider::from_bundle(&bundle, &fleet).unwrap();
        // No outage: the overlay is absent and reads delegate exactly.
        p.apply_outages(&[(Region::Florida, 0, 240_000)]);
        assert_eq!(p.at(NodeId(0), 120_000), 420.0);
        // Outage over minutes 1..3 of Texas: the reading taken in the
        // minute the outage starts (410) is the last-known-good.
        p.apply_outages(&[(Region::Texas, 60_000, 180_000)]);
        assert_eq!(p.at(NodeId(0), 60_000), 410.0);
        assert_eq!(p.at(NodeId(0), 120_000), 410.0);
        assert_eq!(p.at(NodeId(0), 180_000), 430.0); // healed
        assert_eq!(p.at(NodeId(1), 120_000), 220.0); // other region live
        assert_eq!(p.at_each_node(120_000), vec![410.0, 220.0]);
        let texas = p
            .distinct_regions()
            .find(|&(r, _)| r == Region::Texas)
            .unwrap()
            .1;
        assert_eq!(texas.at(120_000), 410.0);
    }

    #[test]
    fn staleness_policy_defaults_and_builders() {
        let p = StalenessPolicy::default();
        assert_eq!(p.max_stale_min, 15);
        assert_eq!(p.max_stale_ms(), 15 * 60_000);
        let q = p.with_max_stale_min(3).with_fallback_keepalive_min(0);
        assert_eq!((q.max_stale_min, q.fallback_keepalive_min), (3, 0));
    }

    #[test]
    fn bundle_provider_rejects_uncovered_regions() {
        let bundle = CiBundle::new(vec![(
            Region::Texas,
            CarbonIntensityTrace::constant(400.0, 60),
        )])
        .unwrap();
        let fleet = skus::fleet_a().with_region(NodeId(1), Region::Texas);
        // Node 0 keeps the default CISO tag, which the bundle lacks.
        assert_eq!(
            CiProvider::from_bundle(&bundle, &fleet).unwrap_err(),
            CiError::MissingRegion {
                node: NodeId(0),
                region: Region::Caiso,
            }
        );
    }
}

//! Integration: the capacity planner end-to-end.
//!
//! The headline property: on a small plan space, every heuristic search
//! (PSO, GA, SA) converges to the **same optimum exhaustive enumeration
//! finds** — deterministically for a fixed seed, and identically whether
//! candidate evaluation fans out over threads or runs serially.

use ecolife::prelude::*;

fn setup() -> (Trace, CarbonIntensityTrace) {
    let trace = SynthTraceConfig {
        n_functions: 8,
        duration_min: 45,
        seed: 23,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 23);
    (trace, ci)
}

/// 2 SKUs × counts {0,1,2} with ≤3 total × 2 budgets = 14 feasible plans.
fn small_space() -> PlanSpace {
    PlanSpace::new(
        vec![Sku::I3Metal, Sku::M5znMetal],
        2,
        3,
        vec![4 * 1024, 8 * 1024],
    )
}

fn quick_config(parallel: bool) -> PlannerConfig {
    PlannerConfig {
        parallel,
        scheduler: EcoLifeConfig {
            pso_iters: 2,
            ..EcoLifeConfig::default()
        },
        ..PlannerConfig::default()
    }
}

#[test]
fn heuristics_match_exhaustive_on_a_small_space() {
    let (trace, ci) = setup();
    let space = small_space();
    assert!(space.plan_count() <= 64, "space too large for this test");

    let planner = Planner::new(space, &trace, &ci, quick_config(true));
    let truth = planner.search(SearchAlgorithm::Exhaustive, 0);
    assert_eq!(truth.simulations, 14);

    for (algo, iters) in [
        (SearchAlgorithm::Pso, 40),
        (SearchAlgorithm::Ga, 40),
        (SearchAlgorithm::Sa, 60),
    ] {
        let report = planner.search(algo, iters);
        assert_eq!(
            report.best_plan, truth.best_plan,
            "{} found {:?}, exhaustive found {:?}",
            report.algorithm, report.best_plan, truth.best_plan
        );
        assert_eq!(report.best_score, truth.best_score);
        // The whole space was already simulated: heuristics ride the memo
        // cache and never pay for a repeat candidate.
        assert_eq!(report.simulations, truth.simulations);
        assert!(report.cache_hits > 0);
    }
}

#[test]
fn search_is_deterministic_and_thread_count_independent() {
    let (trace, ci) = setup();
    for algo in [
        SearchAlgorithm::Exhaustive,
        SearchAlgorithm::Pso,
        SearchAlgorithm::Ga,
        SearchAlgorithm::Sa,
    ] {
        let run = |parallel: bool| {
            Planner::new(small_space(), &trace, &ci, quick_config(parallel)).search(algo, 25)
        };
        let parallel = run(true);
        let parallel_again = run(true);
        let serial = run(false);
        assert_eq!(
            parallel, parallel_again,
            "{} differs between identical runs",
            parallel.algorithm
        );
        // Outcome (plan and score) is identical at any thread count; the
        // bookkeeping counters legitimately differ (the batch path
        // answers repeats from cache, the serial path interleaves).
        assert_eq!(
            parallel.best_plan, serial.best_plan,
            "{} picks a different plan under parallel evaluation",
            parallel.algorithm
        );
        assert_eq!(
            parallel.best_score, serial.best_score,
            "{} scores diverge between parallel and serial evaluation",
            parallel.algorithm
        );
        assert_eq!(parallel.candidates, serial.candidates);
    }
}

#[test]
fn best_plan_beats_naive_single_node_buys() {
    let (trace, ci) = setup();
    let planner = Planner::new(small_space(), &trace, &ci, quick_config(true));
    let best = planner.search(SearchAlgorithm::Exhaustive, 0);
    // The optimum is at least as good as either one-node-of-one-SKU buy
    // at either budget — the trivial plans an operator would eyeball.
    for counts in [vec![1, 0], vec![0, 1]] {
        for budget in [4 * 1024, 8 * 1024] {
            let naive = FleetPlan {
                counts: counts.clone(),
                mem_budget_mib: budget,
            };
            let score = planner.evaluator().score(&naive);
            assert!(
                best.best_score.fitness_g <= score.fitness_g,
                "optimum {:.2} worse than naive {naive:?} at {:.2}",
                best.best_score.fitness_g,
                score.fitness_g
            );
        }
    }
}

#[test]
fn slo_tightening_shifts_the_frontier_toward_service() {
    // A Pareto-style sweep: tightening the P95 SLO can only hold or
    // improve the achieved P95 of the chosen plan, and can only hold or
    // worsen its carbon bill — the planner trades carbon for latency.
    let (trace, ci) = setup();
    let optimum_at = |slo_ms: u64| {
        let planner = Planner::new(
            small_space(),
            &trace,
            &ci,
            PlannerConfig {
                slo_p95_ms: slo_ms,
                ..quick_config(true)
            },
        );
        planner.search(SearchAlgorithm::Exhaustive, 0).best_score
    };
    let relaxed = optimum_at(60_000);
    let tight = optimum_at(2_000);
    assert!(tight.p95_service_ms <= relaxed.p95_service_ms);
    let carbon = |s: &PlanScore| s.sim_carbon_g + s.provisioned_embodied_g;
    assert!(carbon(&tight) >= carbon(&relaxed) - 1e-9);
}

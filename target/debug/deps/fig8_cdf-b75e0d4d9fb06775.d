/root/repo/target/debug/deps/fig8_cdf-b75e0d4d9fb06775.d: crates/bench/benches/fig8_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_cdf-b75e0d4d9fb06775.rmeta: crates/bench/benches/fig8_cdf.rs Cargo.toml

crates/bench/benches/fig8_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Live service + bounded executors (ISSUE 9).
//!
//! Four pins on the streaming/executor subsystem:
//!
//! 1. **Service ≡ batch under saturation** — a bursty workload on
//!    bounded executors with queue-aware EcoLife placement replays
//!    bit-identically (records, stream, chain tip) whether driven by
//!    the batch replayer or by the live service at producer-thread
//!    counts {1, 2, 4}.
//! 2. **Admission is bounded and deterministic** — queue depth never
//!    exceeds the configured bound, saturated nodes reject (typed,
//!    zero-cost, telemetered), and two identical runs agree on every
//!    record.
//! 3. **Carbon closure** — rejected invocations carry exactly zero
//!    carbon/energy/service, and the aggregate totals remain the sum
//!    over records.
//! 4. **Sharded executors stay thread-invariant** — shard-local
//!    executors at a fixed shard count emit identical streams at worker
//!    threads {1, 2, 4}.

use ecolife::prelude::*;
use ecolife::sim::MINUTE_MS;
use ecolife::telemetry::diff::first_divergence;

const QUEUE_CAP: usize = 8;

/// A catalog of four hefty functions: multi-second executions so a
/// tight arrival burst overlaps far past the fleet's core counts.
fn hog_catalog() -> WorkloadCatalog {
    WorkloadCatalog::new(vec![
        FunctionProfile::new("hog-a", 2_500, 900, 512, 0.6),
        FunctionProfile::new("hog-b", 3_000, 1_100, 640, 0.5),
        FunctionProfile::new("hog-c", 2_000, 800, 512, 0.7),
        FunctionProfile::new("hog-d", 3_500, 1_200, 768, 0.4),
    ])
}

/// 480 arrivals inside ~2.4 s of virtual time — each node's executor
/// (36 / 48 slots on pair A) is driven deep into its queue and past the
/// admission bound — followed by a sparse cooldown tail.
fn bursty_trace() -> Trace {
    let mut invocations = Vec::new();
    for i in 0..480u64 {
        invocations.push(Invocation {
            func: FunctionId((i % 4) as u32),
            t_ms: i * 5,
        });
    }
    for i in 0..6u64 {
        invocations.push(Invocation {
            func: FunctionId((i % 4) as u32),
            t_ms: MINUTE_MS + i * 10_000,
        });
    }
    Trace::new(hog_catalog(), invocations)
}

fn saturated_config() -> SimConfig {
    SimConfig::default().with_bounded_executors(ExecutorConfig {
        queue_cap: QUEUE_CAP,
    })
}

fn queue_aware_ecolife(fleet: &Fleet) -> EcoLife {
    EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().with_queue_aware_placement(),
    )
}

#[test]
fn service_replays_batch_bit_for_bit_under_saturation() {
    let trace = bursty_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();

    let mut batch_sink = CaptureSink::default();
    let batch = Simulation::new(&trace, &ci, fleet.clone())
        .with_config(saturated_config())
        .run_with_sink(&mut queue_aware_ecolife(&fleet), &mut batch_sink);
    assert!(
        batch.rejected > 0,
        "burst must overflow the admission bound"
    );
    assert!(batch.total_queue_ms() > 0, "burst must queue");

    let all = trace.invocations().to_vec();
    for producers in [1usize, 2, 4] {
        let (handles, source) = live_lanes(producers, 16);
        let chunk = all.len().div_ceil(producers);
        let (live, live_sink) = std::thread::scope(|scope| {
            for (handle, part) in handles.into_iter().zip(all.chunks(chunk)) {
                scope.spawn(move || {
                    for &inv in part {
                        handle.send(inv).unwrap();
                    }
                });
            }
            let mut sink = CaptureSink::default();
            let metrics = Service::new(trace.catalog().clone(), &ci, fleet.clone())
                .with_config(saturated_config())
                .serve_with_sink(source, &mut queue_aware_ecolife(&fleet), &mut sink)
                .unwrap();
            (metrics, sink)
        });
        assert_eq!(
            live.records, batch.records,
            "records diverged at {producers} producers"
        );
        assert_eq!(live.rejected, batch.rejected);
        assert_eq!(live.queue_ms_by_node, batch.queue_ms_by_node);
        assert_eq!(live.executor_peak_by_node, batch.executor_peak_by_node);
        if let Some(d) = first_divergence(&batch_sink.lines(), &live_sink.lines()) {
            panic!("stream diverged at {producers} producers: {d:?}");
        }
        assert_eq!(live_sink.tip(), batch_sink.tip());
    }
}

#[test]
fn admission_is_bounded_deterministic_and_carbon_closed() {
    let trace = bursty_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();
    let run = || {
        let mut sink = CaptureSink::default();
        let metrics = Simulation::new(&trace, &ci, fleet.clone())
            .with_config(saturated_config())
            .run_with_sink(&mut queue_aware_ecolife(&fleet), &mut sink);
        let lines: Vec<String> = sink.lines().iter().map(|s| s.to_string()).collect();
        (metrics, lines)
    };
    let (a, lines_a) = run();
    let (b, lines_b) = run();

    // Determinism: rejections (and everything else) repeat exactly.
    assert_eq!(a.records, b.records);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(lines_a, lines_b);
    assert!(a.rejected > 0);

    // Queue bound: no Enqueued/AdmissionRejected event ever reports a
    // depth beyond the configured cap, and rejections were telemetered.
    let mut saw_rejection = false;
    let mut max_depth = 0usize;
    for line in &lines_a {
        if line.contains("\"type\":\"AdmissionRejected\"") {
            saw_rejection = true;
        }
        if line.contains("\"type\":\"Enqueued\"") || line.contains("\"type\":\"AdmissionRejected\"")
        {
            let depth: usize = line
                .split("\"depth\":")
                .nth(1)
                .and_then(|rest| {
                    rest.split(|c: char| !c.is_ascii_digit())
                        .next()?
                        .parse()
                        .ok()
                })
                .expect("depth field");
            max_depth = max_depth.max(depth);
        }
    }
    assert!(saw_rejection, "rejections must reach the event stream");
    assert!(
        max_depth <= QUEUE_CAP,
        "queue depth {max_depth} escaped the bound {QUEUE_CAP}"
    );

    // Occupancy never exceeds each node's core-derived slot count.
    for (idx, &peak) in a.executor_peak_by_node.iter().enumerate() {
        let slots = fleet.node(NodeId(idx as u32)).executor_slots();
        assert!(peak as usize <= slots, "node {idx}: peak {peak} > {slots}");
        assert!(peak > 0, "burst must actually occupy node {idx}");
    }

    // Carbon closure: rejected records are exactly free, accepted ones
    // carry the queue delay inside their service time, and the run's
    // totals are the per-record sums.
    let mut queued = 0u64;
    for r in &a.records {
        if r.rejected {
            assert_eq!(r.service_ms, 0);
            assert_eq!(r.queue_ms, 0);
            assert_eq!(r.total_carbon_g(), 0.0);
            assert_eq!(r.energy_kwh, 0.0);
        } else {
            assert!(r.service_ms >= r.queue_ms);
            queued += r.queue_ms;
        }
    }
    assert_eq!(
        a.rejected,
        a.records.iter().filter(|r| r.rejected).count() as u64
    );
    assert_eq!(a.total_queue_ms(), queued);
    assert_eq!(queued, a.queue_ms_by_node.iter().sum::<u64>());
    let record_sum: f64 = a.records.iter().map(|r| r.total_carbon_g()).sum();
    assert!((a.total_carbon_g() - record_sum).abs() <= 1e-9 * record_sum.max(1.0));
}

#[test]
fn executors_off_keeps_the_service_on_the_classic_engine() {
    // Same bursty workload, no executors: service and batch agree, no
    // queueing artifacts exist anywhere, and the queue-aware flag is
    // inert (its signal reads zero), matching the classic placement.
    let trace = bursty_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();
    let mut batch_sink = CaptureSink::default();
    let classic = Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
        &mut batch_sink,
    );
    let mut live_sink = CaptureSink::default();
    let live = Service::new(trace.catalog().clone(), &ci, fleet.clone())
        .serve_with_sink(
            trace.source(),
            &mut queue_aware_ecolife(&fleet),
            &mut live_sink,
        )
        .unwrap();
    assert_eq!(live.records, classic.records);
    assert_eq!(live.rejected, 0);
    assert!(live.executor_peak_by_node.is_empty());
    assert_eq!(live.total_queue_ms(), 0);
    if let Some(d) = first_divergence(&batch_sink.lines(), &live_sink.lines()) {
        panic!("executors-off service diverged from the classic engine: {d:?}");
    }
    assert_eq!(live_sink.tip(), batch_sink.tip());
}

#[test]
fn sharded_executors_are_thread_invariant() {
    let trace = bursty_trace();
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a();
    let mut baseline: Option<(Vec<String>, RunMetrics)> = None;
    for threads in [1usize, 2, 4] {
        let mut sink = CaptureSink::default();
        let metrics = Simulation::new(&trace, &ci, fleet.clone())
            .with_config(saturated_config())
            .run_sharded_with_sink(
                |_| {
                    EcoLife::new(
                        fleet.clone(),
                        EcoLifeConfig::default().with_queue_aware_placement(),
                    )
                },
                &ShardOptions::new(4).with_threads(threads),
                &mut sink,
            );
        let lines: Vec<String> = sink.lines().iter().map(|s| s.to_string()).collect();
        match &baseline {
            None => {
                // Shard-local executors see only their shard's load, so
                // the burst still queues (each shard holds a whole
                // function's arrival stream).
                assert!(metrics.total_queue_ms() > 0);
                baseline = Some((lines, metrics));
            }
            Some((ref_lines, ref_metrics)) => {
                assert_eq!(
                    metrics.records, ref_metrics.records,
                    "records diverged at {threads} threads"
                );
                assert_eq!(metrics.rejected, ref_metrics.rejected);
                assert_eq!(metrics.queue_ms_by_node, ref_metrics.queue_ms_by_node);
                let refs: Vec<&str> = ref_lines.iter().map(|s| s.as_str()).collect();
                let news: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
                if let Some(d) = first_divergence(&refs, &news) {
                    panic!("stream diverged at {threads} threads: {d:?}");
                }
            }
        }
    }
}

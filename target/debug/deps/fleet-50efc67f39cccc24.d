/root/repo/target/debug/deps/fleet-50efc67f39cccc24.d: tests/fleet.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-50efc67f39cccc24.rmeta: tests/fleet.rs Cargo.toml

tests/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/tune-591bfae3a4ed6a3d.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-591bfae3a4ed6a3d: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:

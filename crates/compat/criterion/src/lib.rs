//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`] with
//! `sample_size` and `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple mean over `sample_size` timed runs after one
//! warm-up run — good enough to compare schemes and spot regressions, with
//! none of criterion's statistical machinery. Figure-printing code in the
//! bench targets is unaffected: it runs before timing either way.

use std::time::Instant;

/// Bench harness configuration and runner (subset of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per bench function.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_ns: 0 };
        // Warm-up run, untimed.
        f(&mut b);
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed_ns = 0;
            f(&mut b);
            samples_ns.push(b.elapsed_ns);
        }
        let mean = samples_ns.iter().sum::<u128>() as f64 / samples_ns.len() as f64;
        let min = *samples_ns.iter().min().unwrap_or(&0);
        let max = *samples_ns.iter().max().unwrap_or(&0);
        println!(
            "bench {id:<40} mean {:>12} min {:>12} max {:>12}  ({} samples)",
            fmt_ns(mean),
            fmt_ns(min as f64),
            fmt_ns(max as f64),
            samples_ns.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timing context handed to bench closures (subset of
/// `criterion::Bencher`).
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` once under the timer.
    ///
    /// Criterion iterates adaptively; this stand-in times a single call
    /// per sample, which keeps total bench time bounded for the heavy
    /// whole-simulation benches this workspace has.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns += start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// Subset of `criterion::criterion_group!` (struct form and list form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Subset of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("compat/noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_accumulates_time() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0;
        c.bench_function("compat/count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }
}

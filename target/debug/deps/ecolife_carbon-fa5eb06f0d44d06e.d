/root/repo/target/debug/deps/ecolife_carbon-fa5eb06f0d44d06e.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/debug/deps/libecolife_carbon-fa5eb06f0d44d06e.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

//! Grid regions: where a node is deployed, and therefore which grid's
//! carbon intensity its executions and keep-alives burn.
//!
//! The paper's Fig. 14 robustness study evaluates five grid regions
//! (Tennessee, Texas, Florida, New York, California). Historically the
//! whole cluster lived in one region; since the multi-region fleet
//! refactor every [`HardwareNode`](crate::HardwareNode) carries its own
//! [`Region`], so a single fleet can span grids and placement trades
//! grid mixes, not just hardware generations. The region *type* lives
//! here in `hw` (the node carries it); the carbon-intensity *series* for
//! a region lives in `ecolife-carbon`, which synthesizes each region's
//! published statistics from [`RegionProfile`].

/// A grid region with a distinct carbon-intensity profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// California ISO — the paper's default region ("CAL" in Fig. 14).
    Caiso,
    /// Tennessee ("TEN").
    Tennessee,
    /// Texas ("TEX").
    Texas,
    /// Florida ("FLA").
    Florida,
    /// New York ("NY").
    NewYork,
}

impl Region {
    /// All five evaluated regions, in Fig. 14 order (TEN TEX FLA NY CAL).
    pub const ALL: [Region; 5] = [
        Region::Tennessee,
        Region::Texas,
        Region::Florida,
        Region::NewYork,
        Region::Caiso,
    ];

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Region::Caiso => "CAL",
            Region::Tennessee => "TEN",
            Region::Texas => "TEX",
            Region::Florida => "FLA",
            Region::NewYork => "NY",
        }
    }

    /// The generation profile for this region: per-region parameters
    /// matching the published statistics (CISO has a pronounced solar
    /// "duck curve" — large diurnal swing, ~6.75% mean hourly
    /// fluctuation, σ≈59 — the south-eastern grids are flat and
    /// carbon-heavy, and NY sits low with moderate swing).
    pub fn profile(self) -> RegionProfile {
        match self {
            // Solar-heavy: deep midday dip, evening ramp, high variance.
            Region::Caiso => RegionProfile {
                mean_g_per_kwh: 260.0,
                diurnal_amplitude: 110.0,
                secondary_amplitude: 35.0,
                noise_sd: 14.0,
                phase_min: 0.0,
            },
            // Nuclear/hydro + gas: mid-high, flat.
            Region::Tennessee => RegionProfile {
                mean_g_per_kwh: 415.0,
                diurnal_amplitude: 30.0,
                secondary_amplitude: 10.0,
                noise_sd: 6.0,
                phase_min: 120.0,
            },
            // Wind-heavy: mid, large swings driven by wind ramps.
            Region::Texas => RegionProfile {
                mean_g_per_kwh: 390.0,
                diurnal_amplitude: 70.0,
                secondary_amplitude: 30.0,
                noise_sd: 12.0,
                phase_min: 300.0,
            },
            // Gas-dominated: high, flat.
            Region::Florida => RegionProfile {
                mean_g_per_kwh: 430.0,
                diurnal_amplitude: 25.0,
                secondary_amplitude: 8.0,
                noise_sd: 5.0,
                phase_min: 60.0,
            },
            // Hydro/nuclear mix: low, moderate swing.
            Region::NewYork => RegionProfile {
                mean_g_per_kwh: 215.0,
                diurnal_amplitude: 45.0,
                secondary_amplitude: 15.0,
                noise_sd: 8.0,
                phase_min: 200.0,
            },
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of the synthetic carbon-intensity process:
/// `ci(t) = mean + A₁·sin(2π(t−φ)/day) + A₂·sin(4π(t−φ)/day) + AR(1) noise`,
/// clamped to a 20 g/kWh floor (the generator lives in `ecolife-carbon`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionProfile {
    pub mean_g_per_kwh: f64,
    pub diurnal_amplitude: f64,
    pub secondary_amplitude: f64,
    pub noise_sd: f64,
    pub phase_min: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_labels_match_fig14() {
        let labels: Vec<_> = Region::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["TEN", "TEX", "FLA", "NY", "CAL"]);
    }

    #[test]
    fn display_uses_labels() {
        assert_eq!(Region::Caiso.to_string(), "CAL");
        assert_eq!(Region::NewYork.to_string(), "NY");
    }

    #[test]
    fn profiles_are_distinct_and_positive() {
        for r in Region::ALL {
            let p = r.profile();
            assert!(p.mean_g_per_kwh > 0.0);
            assert!(p.noise_sd > 0.0);
        }
        assert!(
            Region::Florida.profile().mean_g_per_kwh > Region::NewYork.profile().mean_g_per_kwh
        );
    }
}

//! Vanilla Particle Swarm Optimization (Sec. IV-C "Basics of Particle
//! Swarm Optimization").
//!
//! Update rules, per particle and iteration:
//!
//! ```text
//! V_{t+1} = ω·V_t + c1·r1·(X_pbest − X_t) + c2·r2·(X_gbest − X_t)
//! X_{t+1} = X_t + V_{t+1}
//! ```
//!
//! with `r1, r2 ~ U(0,1)` drawn per dimension, positions clamped to the
//! search space, and velocities clamped to half the per-dimension extent
//! (standard practice to avoid swarm explosion).

use crate::space::SearchSpace;
use crate::{BatchOptimizer, Optimizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// PSO hyper-parameters. The paper uses 15 particles, ω ∈ [0.5, 1],
/// c1, c2 ∈ [0.3, 1] (Sec. V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsoConfig {
    pub n_particles: usize,
    pub inertia: f64,
    pub cognitive: f64,
    pub social: f64,
    pub seed: u64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            n_particles: 15,
            inertia: 0.75,
            cognitive: 0.65,
            social: 0.65,
            seed: 0x9504_1f0e,
        }
    }
}

/// One massless particle.
#[derive(Debug, Clone)]
pub(crate) struct Particle {
    pub position: Vec<f64>,
    pub velocity: Vec<f64>,
    pub best_position: Vec<f64>,
    pub best_fitness: f64,
}

/// The swarm.
#[derive(Debug, Clone)]
pub struct Pso {
    pub(crate) space: SearchSpace,
    pub(crate) particles: Vec<Particle>,
    pub(crate) gbest_position: Vec<f64>,
    pub(crate) gbest_fitness: f64,
    pub(crate) rng: SmallRng,
    pub inertia: f64,
    pub cognitive: f64,
    pub social: f64,
    iterations: u64,
}

impl Pso {
    /// Initialize `config.n_particles` particles uniformly over `space`.
    /// Fitness is lazily evaluated on the first [`Optimizer::step`].
    pub fn new(space: SearchSpace, config: PsoConfig) -> Self {
        assert!(config.n_particles >= 2, "a swarm needs ≥2 particles");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let particles: Vec<Particle> = (0..config.n_particles)
            .map(|_| {
                let position = space.sample(&mut rng);
                let velocity = vec![0.0; space.dims()];
                Particle {
                    best_position: position.clone(),
                    best_fitness: f64::INFINITY,
                    position,
                    velocity,
                }
            })
            .collect();
        let gbest_position = particles[0].position.clone();
        Pso {
            space,
            particles,
            gbest_position,
            gbest_fitness: f64::INFINITY,
            rng,
            inertia: config.inertia,
            cognitive: config.cognitive,
            social: config.social,
            iterations: 0,
        }
    }

    /// Number of completed iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of particles.
    pub fn n_particles(&self) -> usize {
        self.particles.len()
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Evaluate fitness at every particle, updating pbest/gbest.
    pub(crate) fn evaluate<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        for p in &mut self.particles {
            let f = fitness(&p.position);
            if f < p.best_fitness {
                p.best_fitness = f;
                p.best_position.clone_from(&p.position);
            }
            if f < self.gbest_fitness {
                self.gbest_fitness = f;
                self.gbest_position.clone_from(&p.position);
            }
        }
    }

    /// Record externally computed fitness values (aligned with particle
    /// order), updating pbest/gbest — the `tell`-side half of
    /// [`Pso::evaluate`].
    fn record_fitnesses(&mut self, fitnesses: &[f64]) {
        assert_eq!(
            fitnesses.len(),
            self.particles.len(),
            "tell: got {} fitness values for {} particles",
            fitnesses.len(),
            self.particles.len()
        );
        for (p, &f) in self.particles.iter_mut().zip(fitnesses) {
            if f < p.best_fitness {
                p.best_fitness = f;
                p.best_position.clone_from(&p.position);
            }
            if f < self.gbest_fitness {
                self.gbest_fitness = f;
                self.gbest_position.clone_from(&p.position);
            }
        }
    }

    /// Move every particle per the velocity/position update rules.
    pub(crate) fn move_particles(&mut self) {
        let dims = self.space.dims();
        for p in &mut self.particles {
            for d in 0..dims {
                let r1: f64 = self.rng.gen();
                let r2: f64 = self.rng.gen();
                let v = self.inertia * p.velocity[d]
                    + self.cognitive * r1 * (p.best_position[d] - p.position[d])
                    + self.social * r2 * (self.gbest_position[d] - p.position[d]);
                // Velocity clamp at half the dimension extent.
                let vmax = self.space.extent(d) * 0.5;
                p.velocity[d] = v.clamp(-vmax, vmax);
                p.position[d] += p.velocity[d];
            }
            self.space.clamp(&mut p.position);
        }
    }
}

impl BatchOptimizer for Pso {
    fn ask(&self) -> Vec<Vec<f64>> {
        self.particles.iter().map(|p| p.position.clone()).collect()
    }

    fn tell(&mut self, fitnesses: &[f64]) {
        self.record_fitnesses(fitnesses);
        self.move_particles();
        self.iterations += 1;
    }
}

impl Optimizer for Pso {
    fn step<F: Fn(&[f64]) -> f64>(&mut self, fitness: &F) {
        self.evaluate(fitness);
        self.move_particles();
        self.iterations += 1;
    }

    fn best_position(&self) -> &[f64] {
        &self.gbest_position
    }

    fn best_fitness(&self) -> f64 {
        self.gbest_fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn space3() -> SearchSpace {
        SearchSpace::new(vec![(-10.0, 10.0); 3])
    }

    #[test]
    fn converges_on_sphere() {
        let mut pso = Pso::new(space3(), PsoConfig::default());
        let (best, f) = pso.run(&sphere, 120);
        assert!(f < 1e-3, "fitness {f}");
        assert!(best.iter().all(|v| v.abs() < 0.1), "{best:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = Pso::new(
                space3(),
                PsoConfig {
                    seed,
                    ..Default::default()
                },
            );
            p.run(&sphere, 30)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }

    #[test]
    fn best_fitness_is_monotone_nonincreasing() {
        let mut pso = Pso::new(space3(), PsoConfig::default());
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            pso.step(&sphere);
            assert!(pso.best_fitness() <= last);
            last = pso.best_fitness();
        }
    }

    #[test]
    fn positions_stay_in_space() {
        let space = SearchSpace::new(vec![(0.0, 1.0), (0.0, 10.0)]);
        let mut pso = Pso::new(space.clone(), PsoConfig::default());
        let shifted = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 7.0).powi(2);
        for _ in 0..40 {
            pso.step(&shifted);
            for p in &pso.particles {
                assert!(space.contains(&p.position), "{:?}", p.position);
            }
        }
    }

    #[test]
    fn finds_offset_optimum_in_ecolife_like_space() {
        let space = SearchSpace::ecolife(11);
        let mut pso = Pso::new(space, PsoConfig::default());
        // Optimum at (old hardware, period index 8).
        let f = |x: &[f64]| (x[0] - 0.2).powi(2) + ((x[1] - 8.0) / 10.0).powi(2);
        let (best, _) = pso.run(&f, 80);
        assert!(best[0] < 0.5);
        assert!((best[1] - 8.0).abs() < 1.0, "{best:?}");
    }

    #[test]
    fn iteration_counter_advances() {
        let mut pso = Pso::new(space3(), PsoConfig::default());
        assert_eq!(pso.iterations(), 0);
        pso.run(&sphere, 7);
        assert_eq!(pso.iterations(), 7);
        assert_eq!(pso.n_particles(), 15);
    }

    #[test]
    fn ask_tell_is_equivalent_to_step() {
        let mut stepped = Pso::new(space3(), PsoConfig::default());
        let mut batched = Pso::new(space3(), PsoConfig::default());
        for _ in 0..20 {
            stepped.step(&sphere);
            let batch = batched.ask();
            let fitnesses: Vec<f64> = batch.iter().map(|x| sphere(x)).collect();
            batched.tell(&fitnesses);
        }
        assert_eq!(stepped.best_position(), batched.best_position());
        assert_eq!(stepped.best_fitness(), batched.best_fitness());
        assert_eq!(stepped.iterations(), batched.iterations());
    }

    #[test]
    #[should_panic(expected = "tell: got")]
    fn tell_rejects_misaligned_batch() {
        let mut pso = Pso::new(space3(), PsoConfig::default());
        pso.tell(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "≥2 particles")]
    fn rejects_tiny_swarm() {
        Pso::new(
            space3(),
            PsoConfig {
                n_particles: 1,
                ..Default::default()
            },
        );
    }
}

//! Warm-pool adjustment: the priority-eviction mechanism of Sec. IV-C
//! (Fig. 6).
//!
//! When a keep-alive does not fit its target pool, EcoLife ranks every
//! resident container *plus the incoming one* by the benefit of keeping
//! it warm (service-time + carbon difference between a cold and a warm
//! start, per memory unit), greedily packs the pool by descending
//! priority, displaces the losers, and hands the engine an explicit
//! transfer-target ranking — the remaining fleet nodes, cheapest
//! keep-alive first — so displaced containers land on the least costly
//! pool with room (the two-node case: "evicted function is kept warm in
//! the other generation's memory if there is enough space").

use crate::objective::CostModel;
use ecolife_hw::NodeId;
use ecolife_sim::{AdjustPlan, OverflowCtx};
use ecolife_trace::{FunctionId, WorkloadCatalog};

/// Build the adjustment plan for an overflow, with every candidate's
/// cold-vs-warm benefit weighted equally (used by the brute-force
/// baselines, which re-derive keep-alive value per invocation anyway).
pub fn priority_adjustment(
    cost: &CostModel,
    catalog: &WorkloadCatalog,
    ctx: &OverflowCtx<'_>,
) -> AdjustPlan {
    priority_adjustment_weighted(cost, catalog, ctx, &|_| 1.0)
}

/// Build the adjustment plan for an overflow.
///
/// Packing is by priority *density* (benefit per MiB): with a hard memory
/// budget, value per byte is the quantity that maximizes total retained
/// benefit under greedy packing. `reuse_weight` scales each function's
/// benefit by the probability its warm container is actually reused —
/// EcoLife feeds its online `P(warm)` estimate here, so a huge-benefit
/// container for a function that has gone quiet ranks below a modest
/// container for a drumbeat function.
pub fn priority_adjustment_weighted(
    cost: &CostModel,
    catalog: &WorkloadCatalog,
    ctx: &OverflowCtx<'_>,
    reuse_weight: &dyn Fn(FunctionId) -> f64,
) -> AdjustPlan {
    let targets = cost.transfer_ranking(ctx.location, &ctx.ci_by_node);
    priority_adjustment_with_targets(cost, catalog, ctx, reuse_weight, targets)
}

/// [`priority_adjustment_weighted`] with a precomputed transfer-target
/// ranking — the ranking depends only on `(overflowing node, per-node
/// intensity)` and intensities move at most once per minute, so EcoLife
/// serves it from the [`ObjectiveTables`](crate::objective::ObjectiveTables)
/// memo instead of re-sorting the fleet on every displaced container.
pub fn priority_adjustment_with_targets(
    cost: &CostModel,
    catalog: &WorkloadCatalog,
    ctx: &OverflowCtx<'_>,
    reuse_weight: &dyn Fn(FunctionId) -> f64,
    transfer_targets: Vec<NodeId>,
) -> AdjustPlan {
    struct Candidate {
        func: FunctionId,
        memory_mib: u64,
        density: f64,
        incoming: bool,
    }

    let pool = ctx.cluster.pool(ctx.location);
    let ci_by_node = &ctx.ci_by_node;
    let mut candidates: Vec<Candidate> = pool
        .iter()
        .map(|c| {
            let f = catalog.profile(c.func);
            Candidate {
                func: c.func,
                memory_mib: c.memory_mib,
                density: reuse_weight(c.func) * cost.keepalive_benefit(ctx.location, f, ci_by_node)
                    / c.memory_mib.max(1) as f64,
                incoming: false,
            }
        })
        .collect();
    let incoming_profile = catalog.profile(ctx.incoming_func);
    candidates.push(Candidate {
        func: ctx.incoming_func,
        memory_mib: ctx.incoming_memory_mib,
        density: reuse_weight(ctx.incoming_func)
            * cost.keepalive_benefit(ctx.location, incoming_profile, ci_by_node)
            / ctx.incoming_memory_mib.max(1) as f64,
        incoming: true,
    });

    // Highest benefit density first; ties broken by function id for
    // determinism.
    candidates.sort_by(|a, b| {
        b.density
            .partial_cmp(&a.density)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.func.cmp(&b.func))
    });

    let capacity = pool.capacity_mib();
    let mut used = 0u64;
    let mut keep_incoming = false;
    let mut displace = Vec::new();
    for c in &candidates {
        if used + c.memory_mib <= capacity {
            used += c.memory_mib;
            if c.incoming {
                keep_incoming = true;
            }
        } else if !c.incoming {
            displace.push(c.func);
        }
    }

    AdjustPlan {
        displace,
        place_incoming: keep_incoming,
        transfer_targets: Some(transfer_targets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_carbon::CarbonModel;
    use ecolife_hw::{skus, Generation};
    use ecolife_sim::{Cluster, WarmContainer};

    fn catalog() -> WorkloadCatalog {
        WorkloadCatalog::sebs()
    }

    fn cost() -> CostModel {
        CostModel::new(
            skus::pair_a(),
            CarbonModel::default(),
            0.5,
            0.5,
            50,
            600_000,
        )
    }

    fn container(cat: &WorkloadCatalog, name: &str, expiry: u64) -> WarmContainer {
        let (id, p) = cat.by_name(name).unwrap();
        WarmContainer {
            func: id,
            memory_mib: p.memory_mib,
            warm_since_ms: 0,
            expiry_ms: expiry,
            origin_record: 0,
            transfer_latency_ms: 0,
        }
    }

    #[test]
    fn incoming_with_high_benefit_displaces_low_benefit_resident() {
        let cat = catalog();
        // Pool of 4 GiB: dna-visualization (4096 MiB, long exec but modest
        // cold-start benefit per MiB) is resident; image-recognition
        // (1024 MiB, 4 s cold start vs 0.8 s exec → huge benefit density)
        // arrives.
        let pair = skus::pair_a().with_keepalive_budgets_mib(4_096, 4_096);
        let mut cluster = Cluster::new(pair);
        cluster
            .pool_mut(Generation::New)
            .insert(container(&cat, "504.dna-visualization", 600_000))
            .unwrap();
        let (inc_id, inc_p) = cat.by_name("411.image-recognition").unwrap();
        let ctx = OverflowCtx {
            location: Generation::New.into(),
            incoming_func: inc_id,
            incoming_memory_mib: inc_p.memory_mib,
            t_ms: 1_000,
            ci_now: 300.0,
            ci_by_node: vec![300.0, 300.0],
            cluster: &cluster,
        };
        let plan = priority_adjustment(&cost(), &cat, &ctx);
        assert!(plan.place_incoming);
        let (dna_id, _) = cat.by_name("504.dna-visualization").unwrap();
        assert_eq!(plan.displace, vec![dna_id]);
    }

    #[test]
    fn incoming_with_low_benefit_is_not_placed() {
        let cat = catalog();
        // Pool of 1 GiB holds image-recognition (1024 MiB, high benefit);
        // dna-visualization (4096 MiB — can never fit anyway) arrives.
        let pair = skus::pair_a().with_keepalive_budgets_mib(1_024, 1_024);
        let mut cluster = Cluster::new(pair);
        cluster
            .pool_mut(Generation::New)
            .insert(container(&cat, "411.image-recognition", 600_000))
            .unwrap();
        let (dna_id, dna_p) = cat.by_name("504.dna-visualization").unwrap();
        let ctx = OverflowCtx {
            location: Generation::New.into(),
            incoming_func: dna_id,
            incoming_memory_mib: dna_p.memory_mib,
            t_ms: 1_000,
            ci_now: 300.0,
            ci_by_node: vec![300.0, 300.0],
            cluster: &cluster,
        };
        let plan = priority_adjustment(&cost(), &cat, &ctx);
        assert!(!plan.place_incoming);
        assert!(plan.displace.is_empty(), "resident should be retained");
    }

    #[test]
    fn packing_respects_capacity() {
        let cat = catalog();
        let pair = skus::pair_a().with_keepalive_budgets_mib(640, 640);
        let mut cluster = Cluster::new(pair);
        // 512 + 128 = 640 fills the pool exactly.
        cluster
            .pool_mut(Generation::Old)
            .insert(container(&cat, "220.video-processing", 600_000))
            .unwrap();
        cluster
            .pool_mut(Generation::Old)
            .insert(container(&cat, "210.thumbnailer", 600_000))
            .unwrap();
        let (inc_id, inc_p) = cat.by_name("311.compression").unwrap();
        let ctx = OverflowCtx {
            location: Generation::Old.into(),
            incoming_func: inc_id,
            incoming_memory_mib: inc_p.memory_mib,
            t_ms: 0,
            ci_now: 200.0,
            ci_by_node: vec![200.0, 200.0],
            cluster: &cluster,
        };
        let plan = priority_adjustment(&cost(), &cat, &ctx);
        // Whatever the ranking, the kept set must fit in 640 MiB.
        let displaced: std::collections::HashSet<_> = plan.displace.iter().copied().collect();
        let mut kept: u64 = cluster
            .pool(Generation::Old)
            .iter()
            .filter(|c| !displaced.contains(&c.func))
            .map(|c| c.memory_mib)
            .sum();
        if plan.place_incoming {
            kept += inc_p.memory_mib;
        }
        assert!(kept <= 640, "kept {kept} MiB > capacity");
    }

    #[test]
    fn plan_is_deterministic() {
        let cat = catalog();
        let pair = skus::pair_a().with_keepalive_budgets_mib(1_024, 1_024);
        let mut cluster = Cluster::new(pair);
        cluster
            .pool_mut(Generation::New)
            .insert(container(&cat, "210.thumbnailer", 600_000))
            .unwrap();
        cluster
            .pool_mut(Generation::New)
            .insert(container(&cat, "110.dynamic-html", 600_000))
            .unwrap();
        let (inc_id, inc_p) = cat.by_name("220.video-processing").unwrap();
        let ctx = OverflowCtx {
            location: Generation::New.into(),
            incoming_func: inc_id,
            incoming_memory_mib: inc_p.memory_mib,
            t_ms: 0,
            ci_now: 250.0,
            ci_by_node: vec![250.0, 250.0],
            cluster: &cluster,
        };
        let a = priority_adjustment(&cost(), &cat, &ctx);
        let b = priority_adjustment(&cost(), &cat, &ctx);
        assert_eq!(a, b);
    }
}

//! Fig. 14 — EcoLife across grid regions (TEN, TEX, FLA, NY, CAL).
//!
//! Paper shape: EcoLife stays within 7% (service) and 6% (carbon) of the
//! Oracle regardless of the region's carbon-intensity profile.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_carbon::Region;
use ecolife_core::{compare, runner::parallel_map};
use std::hint::black_box;

fn print_fig14() {
    println!("\n=== Fig. 14: EcoLife vs Oracle across grid regions ===");
    println!(
        "{:<6} {:>10} {:>16} {:>16}",
        "region", "mean CI", "svc vs Oracle", "CO2 vs Oracle"
    );
    let rows = parallel_map(Region::ALL.to_vec(), |region| {
        let setup = EvalSetup::standard().with_region(region);
        let mean_ci = setup.ci.mean();
        let oracle = setup.run(&mut setup.oracle());
        let eco = setup.run(&mut setup.ecolife());
        (region, mean_ci, compare(&eco, &oracle, &oracle))
    });
    for (region, mean_ci, c) in rows {
        println!(
            "{:<6} {:>10.0} {:>15.1}% {:>15.1}%",
            region.label(),
            mean_ci,
            c.service_increase_pct,
            c.carbon_increase_pct
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig14();
    let setup = EvalSetup::quick().with_region(Region::Texas);
    c.bench_function("fig14/texas_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.ecolife())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/ecolife_carbon-058fe94491b0ce91.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/ecolife_carbon-058fe94491b0ce91: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

/root/repo/target/debug/examples/carbon_region_study-01d13e2b1d3dedc3.d: examples/carbon_region_study.rs

/root/repo/target/debug/examples/carbon_region_study-01d13e2b1d3dedc3: examples/carbon_region_study.rs

examples/carbon_region_study.rs:

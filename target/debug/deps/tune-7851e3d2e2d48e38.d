/root/repo/target/debug/deps/tune-7851e3d2e2d48e38.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/debug/deps/libtune-7851e3d2e2d48e38.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_sim-9dd5a5e02a3f4250.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/ecolife_sim-9dd5a5e02a3f4250: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

/root/repo/target/debug/deps/ecolife_hw-19b3f5a2d91329cc.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/debug/deps/ecolife_hw-19b3f5a2d91329cc: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:

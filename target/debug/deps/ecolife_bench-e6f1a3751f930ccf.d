/root/repo/target/debug/deps/ecolife_bench-e6f1a3751f930ccf.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_bench-e6f1a3751f930ccf.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

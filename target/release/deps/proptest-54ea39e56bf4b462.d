/root/repo/target/release/deps/proptest-54ea39e56bf4b462.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-54ea39e56bf4b462.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-54ea39e56bf4b462.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

//! Grid carbon-intensity time series.
//!
//! The paper feeds EcoLife minute-resolution carbon intensity from
//! Electricity Maps [37], primarily CISO (California ISO), plus Tennessee,
//! Texas, Florida, and New York for the Fig. 14 robustness study. We
//! reproduce those feeds with a seeded synthetic generator whose per-region
//! parameters match the published statistics: CISO has a pronounced solar
//! "duck curve" (large diurnal swing, ~6.75% mean hourly fluctuation,
//! σ≈59), the south-eastern grids are flat and carbon-heavy, and NY sits
//! low with moderate swing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minutes per day, the fundamental period of the diurnal cycle.
const MIN_PER_DAY: f64 = 24.0 * 60.0;

/// A grid region with a distinct carbon-intensity profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// California ISO — the paper's default region ("CAL" in Fig. 14).
    Caiso,
    /// Tennessee ("TEN").
    Tennessee,
    /// Texas ("TEX").
    Texas,
    /// Florida ("FLA").
    Florida,
    /// New York ("NY").
    NewYork,
}

impl Region {
    /// All five evaluated regions, in Fig. 14 order (TEN TEX FLA NY CAL).
    pub const ALL: [Region; 5] = [
        Region::Tennessee,
        Region::Texas,
        Region::Florida,
        Region::NewYork,
        Region::Caiso,
    ];

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Region::Caiso => "CAL",
            Region::Tennessee => "TEN",
            Region::Texas => "TEX",
            Region::Florida => "FLA",
            Region::NewYork => "NY",
        }
    }

    /// The generation profile for this region.
    pub fn profile(self) -> RegionProfile {
        match self {
            // Solar-heavy: deep midday dip, evening ramp, high variance.
            Region::Caiso => RegionProfile {
                mean_g_per_kwh: 260.0,
                diurnal_amplitude: 110.0,
                secondary_amplitude: 35.0,
                noise_sd: 14.0,
                phase_min: 0.0,
            },
            // Nuclear/hydro + gas: mid-high, flat.
            Region::Tennessee => RegionProfile {
                mean_g_per_kwh: 415.0,
                diurnal_amplitude: 30.0,
                secondary_amplitude: 10.0,
                noise_sd: 6.0,
                phase_min: 120.0,
            },
            // Wind-heavy: mid, large swings driven by wind ramps.
            Region::Texas => RegionProfile {
                mean_g_per_kwh: 390.0,
                diurnal_amplitude: 70.0,
                secondary_amplitude: 30.0,
                noise_sd: 12.0,
                phase_min: 300.0,
            },
            // Gas-dominated: high, flat.
            Region::Florida => RegionProfile {
                mean_g_per_kwh: 430.0,
                diurnal_amplitude: 25.0,
                secondary_amplitude: 8.0,
                noise_sd: 5.0,
                phase_min: 60.0,
            },
            // Hydro/nuclear mix: low, moderate swing.
            Region::NewYork => RegionProfile {
                mean_g_per_kwh: 215.0,
                diurnal_amplitude: 45.0,
                secondary_amplitude: 15.0,
                noise_sd: 8.0,
                phase_min: 200.0,
            },
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of the synthetic carbon-intensity process:
/// `ci(t) = mean + A₁·sin(2π(t−φ)/day) + A₂·sin(4π(t−φ)/day) + AR(1) noise`,
/// clamped to a 20 g/kWh floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionProfile {
    pub mean_g_per_kwh: f64,
    pub diurnal_amplitude: f64,
    pub secondary_amplitude: f64,
    pub noise_sd: f64,
    pub phase_min: f64,
}

/// A minute-resolution carbon-intensity series (gCO2/kWh).
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonIntensityTrace {
    /// One sample per minute, starting at simulation time 0.
    samples: Vec<f64>,
}

impl CarbonIntensityTrace {
    /// Wrap an explicit series. Panics on an empty series — a scheduler
    /// with no CI signal is meaningless.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(
            !samples.is_empty(),
            "carbon-intensity trace must be non-empty"
        );
        assert!(
            samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "carbon intensity must be finite and non-negative"
        );
        CarbonIntensityTrace { samples }
    }

    /// A constant-intensity trace (used by the Fig. 3 CI=50/CI=300 cases).
    pub fn constant(ci: f64, minutes: usize) -> Self {
        Self::from_samples(vec![ci; minutes.max(1)])
    }

    /// Generate `minutes` of synthetic intensity for `region`,
    /// deterministically from `seed`.
    pub fn synthetic(region: Region, minutes: usize, seed: u64) -> Self {
        let p = region.profile();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_c1a0);
        let mut noise = 0.0f64;
        // AR(1) with coefficient 0.92: slow-moving grid-mix drift.
        let rho = 0.92f64;
        let innov_sd = p.noise_sd * (1.0 - rho * rho).sqrt();
        let samples = (0..minutes.max(1))
            .map(|m| {
                let t = m as f64;
                let w = 2.0 * std::f64::consts::PI * (t - p.phase_min) / MIN_PER_DAY;
                // Box-Muller normal innovation.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                noise = rho * noise + innov_sd * z;
                let ci = p.mean_g_per_kwh
                    + p.diurnal_amplitude * w.sin()
                    + p.secondary_amplitude * (2.0 * w).sin()
                    + noise;
                ci.max(20.0)
            })
            .collect();
        CarbonIntensityTrace { samples }
    }

    /// Parse an Electricity Maps-style CSV export: one `minute,ci` pair per
    /// line; a header line and blank lines are skipped.
    pub fn parse_csv(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let first = parts.next().unwrap_or("").trim();
            if ln == 0 && first.parse::<f64>().is_err() {
                continue; // header
            }
            let ci_field = parts
                .next()
                .ok_or_else(|| format!("line {}: missing intensity column", ln + 1))?
                .trim();
            let ci: f64 = ci_field
                .parse()
                .map_err(|e| format!("line {}: bad intensity {ci_field:?}: {e}", ln + 1))?;
            if !ci.is_finite() || ci < 0.0 {
                return Err(format!("line {}: intensity out of range: {ci}", ln + 1));
            }
            samples.push(ci);
        }
        if samples.is_empty() {
            return Err("no samples in CSV".into());
        }
        Ok(CarbonIntensityTrace { samples })
    }

    /// Number of minutes covered.
    #[inline]
    pub fn len_minutes(&self) -> usize {
        self.samples.len()
    }

    /// Duration covered in milliseconds.
    #[inline]
    pub fn len_ms(&self) -> u64 {
        self.samples.len() as u64 * 60_000
    }

    /// Intensity at time `t_ms` (clamped to the last sample beyond the end,
    /// matching how a scheduler would hold the latest reading).
    #[inline]
    pub fn at(&self, t_ms: u64) -> f64 {
        let idx = (t_ms / 60_000) as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Time-weighted average intensity over `[t0_ms, t1_ms)`. This is the
    /// quantity multiplied into the operational-carbon formula for a phase
    /// spanning that interval.
    pub fn average_over(&self, t0_ms: u64, t1_ms: u64) -> f64 {
        if t1_ms <= t0_ms {
            return self.at(t0_ms);
        }
        let mut acc = 0.0f64;
        let mut t = t0_ms;
        while t < t1_ms {
            let minute_end = (t / 60_000 + 1) * 60_000;
            let seg_end = minute_end.min(t1_ms);
            acc += self.at(t) * (seg_end - t) as f64;
            t = seg_end;
        }
        acc / (t1_ms - t0_ms) as f64
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation of all samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Mean absolute hour-over-hour fluctuation, as a percentage — the
    /// statistic the paper quotes for CISO (≈6.75%).
    pub fn mean_hourly_fluctuation_pct(&self) -> f64 {
        let hours: Vec<f64> = self
            .samples
            .chunks(60)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        if hours.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in hours.windows(2) {
            acc += ((w[1] - w[0]) / w[0]).abs();
        }
        100.0 * acc / (hours.len() - 1) as f64
    }

    /// Raw samples (read-only).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let t = CarbonIntensityTrace::constant(300.0, 100);
        assert_eq!(t.at(0), 300.0);
        assert_eq!(t.at(99 * 60_000), 300.0);
        assert_eq!(t.average_over(0, 50 * 60_000 + 123), 300.0);
        assert_eq!(t.std_dev(), 0.0);
    }

    #[test]
    fn at_clamps_past_the_end() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 200.0]);
        assert_eq!(t.at(10_000_000), 200.0);
    }

    #[test]
    fn average_over_weights_by_time() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 300.0]);
        // 30 s at 100 + 60 s at 300 over [30s, 120s) → (100*30 + 300*60)/90.
        let avg = t.average_over(30_000, 120_000);
        assert!((avg - (100.0 * 30.0 + 300.0 * 60.0) / 90.0).abs() < 1e-9);
    }

    #[test]
    fn average_over_degenerate_interval_returns_point_value() {
        let t = CarbonIntensityTrace::from_samples(vec![100.0, 300.0]);
        assert_eq!(t.average_over(70_000, 70_000), 300.0);
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let a = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 7);
        let b = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 7);
        let c = CarbonIntensityTrace::synthetic(Region::Caiso, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_respects_region_means() {
        for region in Region::ALL {
            let t = CarbonIntensityTrace::synthetic(region, 3 * 1440, 42);
            let mean = t.mean();
            let target = region.profile().mean_g_per_kwh;
            assert!(
                (mean - target).abs() < target * 0.10,
                "{region}: mean {mean:.1} vs target {target:.1}"
            );
        }
    }

    #[test]
    fn caiso_fluctuates_more_than_florida() {
        let cal = CarbonIntensityTrace::synthetic(Region::Caiso, 3 * 1440, 1);
        let fla = CarbonIntensityTrace::synthetic(Region::Florida, 3 * 1440, 1);
        assert!(cal.std_dev() > 2.0 * fla.std_dev());
        assert!(cal.mean_hourly_fluctuation_pct() > fla.mean_hourly_fluctuation_pct());
    }

    #[test]
    fn caiso_hourly_fluctuation_near_paper_statistic() {
        // Paper: CISO carbon intensity fluctuates by an average of 6.75%
        // hourly with σ ≈ 59. Accept a generous band — this is calibration,
        // not a bit-exact target.
        let cal = CarbonIntensityTrace::synthetic(Region::Caiso, 7 * 1440, 3);
        let fluct = cal.mean_hourly_fluctuation_pct();
        assert!(
            (2.0..=14.0).contains(&fluct),
            "hourly fluctuation {fluct:.2}% outside band"
        );
        let sd = cal.std_dev();
        assert!((30.0..=110.0).contains(&sd), "σ = {sd:.1} outside band");
    }

    #[test]
    fn intensities_never_negative() {
        for region in Region::ALL {
            let t = CarbonIntensityTrace::synthetic(region, 1440, 99);
            assert!(t.samples().iter().all(|&s| s >= 20.0));
        }
    }

    #[test]
    fn parse_csv_with_header() {
        let t = CarbonIntensityTrace::parse_csv("minute,ci\n0,120.5\n1,130.0\n").unwrap();
        assert_eq!(t.len_minutes(), 2);
        assert_eq!(t.at(0), 120.5);
        assert_eq!(t.at(60_000), 130.0);
    }

    #[test]
    fn parse_csv_without_header() {
        let t = CarbonIntensityTrace::parse_csv("0,100\n1,200\n\n2,300\n").unwrap();
        assert_eq!(t.len_minutes(), 3);
    }

    #[test]
    fn parse_csv_rejects_garbage() {
        assert!(CarbonIntensityTrace::parse_csv("0,abc").is_err());
        assert!(CarbonIntensityTrace::parse_csv("").is_err());
        assert!(CarbonIntensityTrace::parse_csv("0,-5").is_err());
        assert!(CarbonIntensityTrace::parse_csv("0").is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_samples_panic() {
        CarbonIntensityTrace::from_samples(vec![]);
    }

    #[test]
    fn region_labels_match_fig14() {
        let labels: Vec<_> = Region::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["TEN", "TEX", "FLA", "NY", "CAL"]);
    }

    #[test]
    fn len_ms_is_minutes_times_60k() {
        let t = CarbonIntensityTrace::constant(100.0, 5);
        assert_eq!(t.len_ms(), 300_000);
    }
}

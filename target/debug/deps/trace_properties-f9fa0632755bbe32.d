/root/repo/target/debug/deps/trace_properties-f9fa0632755bbe32.d: crates/trace/tests/trace_properties.rs

/root/repo/target/debug/deps/trace_properties-f9fa0632755bbe32: crates/trace/tests/trace_properties.rs

crates/trace/tests/trace_properties.rs:

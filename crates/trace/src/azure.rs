//! Parser for the Microsoft Azure Functions 2019 trace schema [26].
//!
//! The public dataset ships per-function rows with hashed identifiers and
//! 1440 per-minute invocation counts:
//!
//! ```text
//! HashOwner,HashApp,HashFunction,Trigger,1,2,3,...,1440
//! a1b2...,c3d4...,e5f6...,http,0,2,0,1,...
//! ```
//!
//! plus companion files with per-function duration percentiles and
//! per-app memory percentiles. This module parses the invocation schema,
//! accepts optional `duration_ms`/`memory_mib` columns (our exporter
//! format), and maps every trace function onto the closest SeBS catalog
//! profile by (memory, duration) — the rule the paper states in Sec. V.
//!
//! Per-minute counts are expanded to invocation timestamps spread
//! deterministically within the minute (seeded low-discrepancy offsets),
//! matching how the paper replays the trace in its simulation campaign.

use crate::invocation::{Invocation, Trace};
use crate::loader::TraceLoader;
use crate::workload::WorkloadCatalog;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One parsed trace row before catalog mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureFunctionRow {
    pub owner: String,
    pub app: String,
    pub function: String,
    pub trigger: String,
    /// Invocation counts for each minute of the day covered by the file.
    pub per_minute: Vec<u32>,
    /// Average duration (ms) if the export carries it.
    pub duration_ms: Option<u64>,
    /// Allocated memory (MiB) if the export carries it.
    pub memory_mib: Option<u64>,
}

impl AzureFunctionRow {
    /// Total invocations across the day.
    pub fn total_invocations(&self) -> u64 {
        self.per_minute.iter().map(|&c| c as u64).sum()
    }
}

/// Parse the Azure invocations-per-minute CSV.
///
/// Recognized headers: the four id/trigger columns, then either numeric
/// minute columns (`1`..`1440`) or our extended export that prefixes
/// `duration_ms` and `memory_mib` before the minute columns.
pub fn parse_invocations_csv(text: &str) -> Result<Vec<AzureFunctionRow>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty trace file")?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 5 {
        return Err(format!("header has only {} columns", cols.len()));
    }
    let lower: Vec<String> = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
    let idx_of = |name: &str| lower.iter().position(|c| c == name);
    let (io, ia, ifn, itr) = (
        idx_of("hashowner").ok_or("missing HashOwner column")?,
        idx_of("hashapp").ok_or("missing HashApp column")?,
        idx_of("hashfunction").ok_or("missing HashFunction column")?,
        idx_of("trigger").ok_or("missing Trigger column")?,
    );
    let idur = idx_of("duration_ms");
    let imem = idx_of("memory_mib");
    // Minute columns are exactly the headers that parse as positive ints.
    let minute_cols: Vec<usize> = cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.parse::<u32>().map(|v| v >= 1).unwrap_or(false))
        .map(|(i, _)| i)
        .collect();
    if minute_cols.is_empty() {
        return Err("no per-minute count columns found".into());
    }

    let mut rows = Vec::new();
    for (ln, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != cols.len() {
            return Err(format!(
                "line {}: {} fields, expected {}",
                ln + 2,
                fields.len(),
                cols.len()
            ));
        }
        let parse_u64 = |i: usize| -> Result<u64, String> {
            fields[i]
                .parse::<u64>()
                .map_err(|e| format!("line {}: bad number {:?}: {e}", ln + 2, fields[i]))
        };
        let per_minute = minute_cols
            .iter()
            .map(|&i| {
                fields[i]
                    .parse::<u32>()
                    .map_err(|e| format!("line {}: bad count {:?}: {e}", ln + 2, fields[i]))
            })
            .collect::<Result<Vec<_>, _>>()?;
        rows.push(AzureFunctionRow {
            owner: fields[io].to_string(),
            app: fields[ia].to_string(),
            function: fields[ifn].to_string(),
            trigger: fields[itr].to_string(),
            per_minute,
            duration_ms: idur.map(parse_u64).transpose()?,
            memory_mib: imem.map(parse_u64).transpose()?,
        });
    }
    Ok(rows)
}

/// Expand parsed rows into a [`Trace`] against `catalog`.
///
/// Functions without duration/memory metadata draw defaults typical of
/// the Azure distribution (median duration ≈ 1 s, median memory 170 MiB).
/// Within each minute bucket the `count` invocations are placed at evenly
/// spaced offsets with a seeded jitter, which preserves per-minute counts
/// exactly while avoiding artificial collisions at minute boundaries.
pub fn rows_to_trace(rows: &[AzureFunctionRow], catalog: &WorkloadCatalog, seed: u64) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA2u64.rotate_left(32));
    // The schema states the total up front (per-minute counts), so the
    // loader's one allocation is exact — a day of Azure traffic expands
    // with zero regrowth and a single end validation.
    let total: u64 = rows.iter().map(|r| r.total_invocations()).sum();
    let mut loader = TraceLoader::with_capacity(total as usize);
    for row in rows {
        let duration = row.duration_ms.unwrap_or(1_000);
        let memory = row.memory_mib.unwrap_or(170);
        let func = catalog.closest_match(memory, duration);
        for (minute, &count) in row.per_minute.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let base = minute as u64 * 60_000;
            let slot = 60_000 / count as u64;
            for j in 0..count as u64 {
                let jitter = rng.gen_range(0..slot.max(1));
                loader.push(Invocation {
                    func,
                    t_ms: base + j * slot + jitter,
                });
            }
        }
    }
    debug_assert_eq!(loader.len(), total as usize);
    loader.finish(catalog.clone())
}

/// Convenience: parse + expand in one call.
pub fn parse_trace(text: &str, catalog: &WorkloadCatalog, seed: u64) -> Result<Trace, String> {
    let rows = parse_invocations_csv(text)?;
    Ok(rows_to_trace(&rows, catalog, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
HashOwner,HashApp,HashFunction,Trigger,duration_ms,memory_mib,1,2,3
o1,a1,f1,http,2000,512,2,0,1
o1,a1,f2,timer,12000,4096,0,1,0
";

    const SAMPLE_NO_META: &str = "\
HashOwner,HashApp,HashFunction,Trigger,1,2
o1,a1,f1,queue,1,3
";

    #[test]
    fn parses_rows_with_metadata() {
        let rows = parse_invocations_csv(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].per_minute, vec![2, 0, 1]);
        assert_eq!(rows[0].duration_ms, Some(2000));
        assert_eq!(rows[0].memory_mib, Some(512));
        assert_eq!(rows[0].total_invocations(), 3);
        assert_eq!(rows[1].trigger, "timer");
    }

    #[test]
    fn parses_rows_without_metadata() {
        let rows = parse_invocations_csv(SAMPLE_NO_META).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].duration_ms, None);
        assert_eq!(rows[0].total_invocations(), 4);
    }

    #[test]
    fn expansion_preserves_per_minute_counts() {
        let catalog = WorkloadCatalog::sebs();
        let trace = parse_trace(SAMPLE, &catalog, 1).unwrap();
        assert_eq!(trace.len(), 4);
        // Minute buckets: 2 in minute 0, 1 in minute 1, 1 in minute 2.
        let per_min = trace.invocations_per_window(60_000);
        assert_eq!(per_min, vec![2, 1, 1]);
    }

    #[test]
    fn mapping_uses_closest_profile() {
        let catalog = WorkloadCatalog::sebs();
        let trace = parse_trace(SAMPLE, &catalog, 1).unwrap();
        // The 12 s / 4 GiB row must land on dna-visualization.
        let (dna, _) = catalog.by_name("504.dna-visualization").unwrap();
        assert!(trace.invocations().iter().any(|i| i.func == dna));
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let catalog = WorkloadCatalog::sebs();
        let a = parse_trace(SAMPLE, &catalog, 7).unwrap();
        let b = parse_trace(SAMPLE, &catalog, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_missing_columns() {
        assert!(parse_invocations_csv("a,b,c\n1,2,3").is_err());
        assert!(parse_invocations_csv("").is_err());
        let bad = "HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http";
        assert!(parse_invocations_csv(bad).is_err(), "field count mismatch");
    }

    #[test]
    fn rejects_non_numeric_counts() {
        let bad = "HashOwner,HashApp,HashFunction,Trigger,1\no1,a1,f1,http,x";
        assert!(parse_invocations_csv(bad).is_err());
    }
}

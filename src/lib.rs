//! # EcoLife — carbon-aware serverless function scheduling
//!
//! A full reproduction of *"EcoLife: Carbon-Aware Serverless Function
//! Scheduling for Sustainable Computing"* (SC 2024): a scheduler that
//! co-optimizes service time and carbon footprint by deciding, per
//! serverless function, **where** (old- vs new-generation hardware) and
//! **how long** to keep the function warm, using a per-function Dynamic
//! Particle Swarm Optimizer with a perception–response mechanism and a
//! priority-eviction warm-pool adjustment.
//!
//! This meta-crate re-exports the public API of the workspace:
//!
//! * [`hw`] — multi-generation hardware models (Table I pairs, power,
//!   embodied carbon, performance scaling);
//! * [`carbon`] — carbon-intensity traces (5 grid regions) and the
//!   serverless carbon-footprint model;
//! * [`trace`] — SeBS workload catalog, Azure trace parser, synthetic
//!   Azure-like trace generator, inter-arrival statistics;
//! * [`sim`] — the discrete-event serverless cluster simulator;
//! * [`pso`] — PSO / Dynamic PSO / GA / SA optimizers;
//! * [`core`] — the EcoLife scheduler, every baseline of the paper's
//!   evaluation, and the experiment runner.
//!
//! ## Quickstart
//!
//! ```
//! use ecolife::prelude::*;
//!
//! // A synthetic Azure-like trace over the SeBS workload catalog.
//! let trace = SynthTraceConfig::small(42).generate(&WorkloadCatalog::sebs());
//! // California carbon intensity, hardware pair A (i3.metal / m5zn.metal).
//! let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 42);
//! let pair = skus::pair_a();
//!
//! let mut ecolife = EcoLife::new(pair.clone(), EcoLifeConfig::default());
//! let (summary, _) = run_scheme(&trace, &ci, &pair, &mut ecolife);
//! assert!(summary.total_carbon_g > 0.0);
//! ```

pub use ecolife_carbon as carbon;
pub use ecolife_core as core;
pub use ecolife_hw as hw;
pub use ecolife_pso as pso;
pub use ecolife_sim as sim;
pub use ecolife_trace as trace;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use ecolife_carbon::{CarbonIntensityTrace, CarbonModel, CarbonModelConfig, Region};
    pub use ecolife_core::{
        compare, run_scheme, BruteForce, Comparison, CostModel, EcoLife, EcoLifeConfig,
        FixedPolicy, OptTarget, RunSummary,
    };
    pub use ecolife_core::report::{
        placements_to_markdown, summaries_to_csv, summaries_to_markdown,
    };
    pub use ecolife_hw::{skus, Generation, HardwareNode, HardwarePair, PairId};
    pub use ecolife_pso::{
        DpsoConfig, DynamicPso, GaConfig, GeneticAlgorithm, Optimizer, Pso, PsoConfig, SaConfig,
        SearchSpace, SimulatedAnnealing,
    };
    pub use ecolife_sim::{RunMetrics, Scheduler, SimConfig, Simulation, MINUTE_MS};
    pub use ecolife_trace::{
        FunctionId, FunctionProfile, Invocation, SynthTraceConfig, Trace, WorkloadCatalog,
    };
}

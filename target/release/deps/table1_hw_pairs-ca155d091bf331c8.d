/root/repo/target/release/deps/table1_hw_pairs-ca155d091bf331c8.d: crates/bench/benches/table1_hw_pairs.rs

/root/repo/target/release/deps/table1_hw_pairs-ca155d091bf331c8: crates/bench/benches/table1_hw_pairs.rs

crates/bench/benches/table1_hw_pairs.rs:

//! The comparison schemes of Sec. V.

pub mod fixed;
pub mod oracle;

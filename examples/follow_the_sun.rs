//! Follow the sun: priced cross-region migration over a five-region
//! fleet with time-zone-shifted diurnal load.
//!
//! Five regions (TEN TEX FLA NY CAL), each contributing a synthetic
//! Azure-like arrival stream phase-shifted by its "time zone"
//! ([`SynthTraceConfig::phase_offset_min`]), replayed against
//! Electricity Maps-style CSV intensity feeds
//! ([`CarbonIntensityTrace::parse_csv`] + [`CiBundle`]). The engine's
//! periodic re-placement pass ([`SimConfig::with_replacement_every_min`])
//! drains long-lived warm pools toward the cleanest grid — but a
//! migration is no longer free: it pays egress grams at the *source*
//! grid ([`TransferCost`]) and a re-warm latency charged to the next
//! service. Mid-trace, one Tennessee node leaves the fleet for
//! maintenance and rejoins two hours later
//! ([`Simulation::with_membership`]); its pool drains through the same
//! priced ranking.
//!
//! The example pins the migration economics both ways:
//!
//! * **cheap egress** (below the grid swing): the pass migrates
//!   (`transfers > 0`) and the fleet's total carbon — egress included —
//!   beats the same run with the pass disabled;
//! * **dear egress** (above any possible keep-alive saving): the pass
//!   never fires a migration, and the run's records are bit-identical
//!   to the pass-disabled baseline;
//! * the sequential and sharded engines emit **byte-identical** golden
//!   streams at worker-thread counts 1, 2, and 4.
//!
//! Run with: `cargo run --release --example follow_the_sun`

use ecolife::prelude::*;
use ecolife::telemetry::diff::first_divergence;

/// One day of Electricity Maps-style CSV for `region`: a pure sinusoid
/// on the region's published mean/amplitude (deterministic — no noise,
/// so the example's economics are exactly reproducible).
fn region_csv(region: Region, minutes: usize) -> String {
    let p = region.profile();
    let mut out = String::from("minute,gco2_per_kwh\n");
    for m in 0..minutes {
        let w = 2.0 * std::f64::consts::PI * (m as f64 - p.phase_min) / 1440.0;
        let ci = (p.mean_g_per_kwh + p.diurnal_amplitude * w.sin()).max(20.0);
        out.push_str(&format!("{m},{ci:.3}\n"));
    }
    out
}

/// Five phase-shifted diurnal streams merged into one trace: region
/// `i`'s workload is the same generator rotated `i`/5 of a day, so the
/// fleet always has one region near its local peak.
fn merged_diurnal_trace(duration_min: u64) -> Trace {
    let base = WorkloadCatalog::sebs();
    let mut catalog = WorkloadCatalog::default();
    let mut invocations: Vec<Invocation> = Vec::new();
    for (i, _region) in Region::ALL.iter().enumerate() {
        let stream = SynthTraceConfig {
            n_functions: 8,
            duration_min,
            seed: 0x50_1A_12 + i as u64,
            phase_offset_min: i as u64 * duration_min / 5,
            ..Default::default()
        }
        .generate(&base);
        let offset = catalog.len() as u32;
        for (_, profile) in stream.catalog().iter() {
            catalog.push(profile.clone());
        }
        invocations.extend(stream.invocations().iter().map(|inv| Invocation {
            func: FunctionId(inv.func.0 + offset),
            t_ms: inv.t_ms,
        }));
    }
    Trace::new(catalog, invocations)
}

fn main() {
    let duration_min = 720u64;
    let trace = merged_diurnal_trace(duration_min);
    let bundle = CiBundle::new(
        Region::ALL
            .iter()
            .map(|&r| {
                let csv = region_csv(r, duration_min as usize + 20);
                (
                    r,
                    CarbonIntensityTrace::parse_csv(&csv).expect("well-formed synthetic CSV"),
                )
            })
            .collect::<Vec<_>>(),
    )
    .expect("five distinct regions, equal spans");

    // Ample budgets: memory pressure never binds, so every migration in
    // this example is an economics decision, not an eviction.
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(64 * 1024);

    // Node 0 (Tennessee, old generation) leaves for maintenance at hour
    // 5 and rejoins at hour 7; its warm pool drains through the priced
    // ranking on the way out.
    let membership = MembershipPlan::default()
        .leave(5 * 60 * MINUTE_MS, NodeId(0))
        .join(7 * 60 * MINUTE_MS, NodeId(0));

    let cheap = TransferCost {
        egress_kwh_per_mib: 2.0e-9,
        latency_ms: 50,
    };
    let dear = TransferCost {
        egress_kwh_per_mib: 1.0,
        latency_ms: 50,
    };

    let run = |transfer: TransferCost, replacement_every_min: u64| -> RunMetrics {
        let config = SimConfig::default()
            .with_transfer_cost(transfer)
            .with_replacement_every_min(replacement_every_min);
        let mut scheduler = EcoLife::new(
            fleet.clone(),
            EcoLifeConfig::default().with_transfer_cost(transfer),
        );
        Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .expect("bundle covers the workload span")
            .with_config(config)
            .with_membership(membership.clone())
            .run(&mut scheduler)
    };

    let baseline = run(cheap, 0); // pass disabled, migrations still priced
    let priced = run(cheap, 10); // follow the sun every 10 minutes
    let dear_run = run(dear, 10); // egress dwarfs any grid swing

    println!(
        "follow_the_sun: {} invocations over {} nodes / 5 regions, {}h horizon\n",
        trace.len(),
        fleet.len(),
        duration_min / 60
    );
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "run", "carbon g", "transfers", "egress g"
    );
    for (name, m) in [
        ("no re-placement (baseline)", &baseline),
        ("re-placement, cheap egress", &priced),
        ("re-placement, dear egress", &dear_run),
    ] {
        println!(
            "{:<34} {:>12.3} {:>12} {:>12.6}",
            name,
            m.total_carbon_g(),
            m.transfers,
            m.transfer_g
        );
    }

    // Cheap egress: the sun is worth chasing. The pass migrates, and the
    // whole bill — egress and re-warm latency included — goes down.
    assert!(
        priced.transfers > baseline.transfers,
        "cheap egress must trigger re-placement migrations \
         ({} vs baseline {})",
        priced.transfers,
        baseline.transfers
    );
    assert!(
        priced.transfer_g > 0.0,
        "priced migrations must charge egress"
    );
    assert!(
        priced.total_carbon_g() < baseline.total_carbon_g(),
        "migration must pay off when the grid swing exceeds the egress price \
         ({:.3} g vs {:.3} g)",
        priced.total_carbon_g(),
        baseline.total_carbon_g()
    );

    // Dear egress: no keep-alive saving can cover it, so the pass never
    // moves a container and the replay is bit-identical to the
    // pass-disabled baseline.
    assert_eq!(
        dear_run.transfers, baseline.transfers,
        "over-priced egress must suppress every re-placement migration"
    );
    assert_eq!(
        dear_run.records, baseline.records,
        "with no migrations the pass must be invisible, record for record"
    );

    // The priced, membership-churned, re-placed run stays bit-identical
    // between the sequential engine and the sharded engine at any worker
    // count: identical golden streams, byte for byte.
    let config = SimConfig::default()
        .with_transfer_cost(cheap)
        .with_replacement_every_min(10);
    let mut seq_sink = CaptureSink::default();
    let mut seq_sched = EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().with_transfer_cost(cheap),
    );
    let seq = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .expect("bundle covers the workload span")
        .with_config(config)
        .with_membership(membership.clone())
        .run_with_sink(&mut seq_sched, &mut seq_sink);
    for threads in [1usize, 2, 4] {
        let mut sink = CaptureSink::default();
        let opts = ShardOptions::new(4).with_threads(threads);
        let sharded = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .expect("bundle covers the workload span")
            .with_config(config)
            .with_membership(membership.clone())
            .run_sharded_with_sink(
                |_| {
                    EcoLife::new(
                        fleet.clone(),
                        EcoLifeConfig::default().with_transfer_cost(cheap),
                    )
                },
                &opts,
                &mut sink,
            );
        assert_eq!(sharded.records, seq.records, "{threads}-thread records");
        if let Some(d) = first_divergence(&seq_sink.lines(), &sink.lines()) {
            panic!("{threads}-thread stream diverged: {d:?}");
        }
        assert_eq!(sink.tip(), seq_sink.tip(), "{threads}-thread chain tip");
    }
    println!(
        "\nasserted: cheap egress migrates and saves; dear egress never moves;\n\
         sequential and 4-shard streams are byte-identical at 1/2/4 worker threads\n\
         (chain tip {})",
        seq_sink.tip().unwrap_or("<empty>")
    );
}

//! Chaos day: a five-region fleet survives a crash, a stale grid feed,
//! and an inter-region partition — deterministically.
//!
//! The scenario is the `chaos_day` golden workload
//! ([`ecolife::golden::chaos_day_parts`]): sixty minutes of synthetic
//! Azure-like load over ten nodes in five regions, hit by
//! ([`ecolife::golden::chaos_day_faults`]):
//!
//! * a **CI outage** in Tennessee from minute 5 to 45 — the feed serves
//!   last-known-good data until the [`StalenessPolicy`] bound (15 min),
//!   then the region is blacked out and placements fall back to a
//!   carbon-agnostic policy (`degraded_decisions`);
//! * an **inter-region partition** isolating Tennessee from minute 21
//!   to 44 — displacement transfers out of the region find every target
//!   unreachable and re-probe after deterministic virtual-clock
//!   backoffs (`transfer_retries`);
//! * two **node crashes** (nodes 0 and 1, overlapping the partition) —
//!   each loses its warm pool ungracefully (`lost_warm_mib`), drains
//!   its executor queue, and bounces arrivals as zero-carbon
//!   `CrashRejected` records.
//!
//! The example pins two things:
//!
//! * **graceful degradation bounds the damage** — the same chaos
//!   replayed with the fallback keep-alive disabled (a blackout that
//!   just stops granting keep-alives) cold-starts more and serves
//!   slower than the default policy;
//! * **chaos is replayable** — the sequential and sharded engines emit
//!   byte-identical golden streams through the whole fault timeline.
//!
//! Run with: `cargo run --release --example chaos_day`

use ecolife::golden::{chaos_day_faults, chaos_day_parts, ChaosScheduler};
use ecolife::prelude::*;
use ecolife::telemetry::diff::first_divergence;

fn main() {
    let (trace, bundle, fleet, cost) = chaos_day_parts();
    let config = SimConfig::default().with_transfer_cost(cost);

    let run = |staleness: StalenessPolicy| -> RunMetrics {
        Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .expect("bundle covers the workload span")
            .with_config(config)
            .with_faults(chaos_day_faults())
            .with_staleness(staleness)
            .run(&mut ChaosScheduler::new(&fleet))
    };

    // Graceful: past the staleness bound, placements go carbon-agnostic
    // but functions stay warm on their execution node for 10 minutes.
    let graceful = run(StalenessPolicy::default());
    // Naive: the blackout also stops granting keep-alives, so every
    // degraded invocation's function goes cold.
    let naive = run(StalenessPolicy::default().with_fallback_keepalive_min(0));

    println!(
        "chaos_day: {} invocations over {} nodes / 5 regions, 1h horizon",
        trace.len(),
        fleet.len(),
    );
    println!(
        "faults: CI outage TEN 5–45m, partition TEN 21–44m, crashes node0 21–44m node1 41–50m\n"
    );
    println!(
        "survived: lost_warm_mib={} crash_rejected={} stale_ci_minutes={} \
         degraded_decisions={} transfer_retries={}\n",
        graceful.lost_warm_mib,
        graceful.crash_rejected,
        graceful.stale_ci_minutes,
        graceful.degraded_decisions,
        graceful.transfer_retries,
    );
    println!(
        "{:<30} {:>12} {:>12} {:>14}",
        "degradation policy", "cold starts", "warm rate", "mean service ms"
    );
    for (name, m) in [
        ("graceful (10m fallback KA)", &graceful),
        ("naive (no fallback KA)", &naive),
    ] {
        println!(
            "{:<30} {:>12} {:>11.1}% {:>14.1}",
            name,
            m.cold_starts(),
            100.0 * m.warm_rate(),
            m.mean_service_ms(),
        );
    }

    // Every fault surface actually fired — a chaos day where nothing
    // went wrong demonstrates nothing.
    assert!(graceful.lost_warm_mib > 0, "crashes must lose warm state");
    assert!(
        graceful.stale_ci_minutes > 0,
        "the outage must serve stale CI"
    );
    assert!(
        graceful.degraded_decisions > 0,
        "the outage must out-stale the policy bound"
    );
    assert!(
        graceful.transfer_retries > 0,
        "the partition must force transfer retries"
    );
    assert_eq!(
        graceful.records.len(),
        trace.len(),
        "every arrival is accounted for, crash-rejected ones included"
    );

    // Graceful degradation bounds the damage: the carbon-agnostic
    // fallback keeps working sets warm through the blackout, so it
    // cold-starts less and serves faster than just shedding keep-alives.
    assert!(
        graceful.cold_starts() < naive.cold_starts(),
        "fallback keep-alives must absorb cold starts ({} vs {})",
        graceful.cold_starts(),
        naive.cold_starts()
    );
    assert!(
        graceful.total_service_ms() < naive.total_service_ms(),
        "bounded damage must show up in service time ({} ms vs {} ms)",
        graceful.total_service_ms(),
        naive.total_service_ms()
    );

    // And the whole chaos timeline replays bit-identically sequential
    // vs sharded: same records, same golden stream, same chain tip.
    let mut seq_sink = CaptureSink::default();
    let seq = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .expect("bundle covers the workload span")
        .with_config(config)
        .with_faults(chaos_day_faults())
        .run_with_sink(&mut ChaosScheduler::new(&fleet), &mut seq_sink);
    for threads in [1usize, 2, 4] {
        let mut sink = CaptureSink::default();
        let sharded = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .expect("bundle covers the workload span")
            .with_config(config)
            .with_faults(chaos_day_faults())
            .run_sharded_with_sink(
                |_| ChaosScheduler::new(&fleet),
                &ShardOptions::new(8).with_threads(threads),
                &mut sink,
            );
        assert_eq!(sharded.records, seq.records, "{threads}-thread records");
        assert_eq!(sharded.lost_warm_mib, seq.lost_warm_mib);
        assert_eq!(sharded.transfer_retries, seq.transfer_retries);
        if let Some(d) = first_divergence(&seq_sink.lines(), &sink.lines()) {
            panic!("{threads}-thread chaos stream diverged: {d:?}");
        }
        assert_eq!(sink.tip(), seq_sink.tip(), "{threads}-thread chain tip");
    }
    println!(
        "\nasserted: graceful degradation cold-starts less and serves faster than\n\
         shedding keep-alives; the chaos replay is byte-identical sequential vs\n\
         8 shards at 1/2/4 worker threads (chain tip {})",
        seq_sink.tip().unwrap_or("<empty>")
    );
}

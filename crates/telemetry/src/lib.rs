//! # ecolife-telemetry — the replay engine's golden-trace event stream
//!
//! TRACE-style observability for the EcoLife replay core: every
//! observable engine action — scheduler decisions, cold starts and warm
//! hits, container expiries/releases/transfers/revocations, per-region
//! CI observations, run and period boundaries — becomes one line of an
//! append-only JSONL stream with monotonic sequence numbers and a
//! SHA-256 hash chain. *If it wasn't emitted by the runtime, it didn't
//! happen.*
//!
//! The pieces:
//!
//! * [`Event`] / [`EventKey`] — the taxonomy and the canonical merge key
//!   that makes the sharded engine's stream byte-identical to the
//!   sequential reference (see [`event`] module docs);
//! * [`finalize`] — sort, number, hash-chain, and emit a collected run;
//! * [`EventSink`] — [`NullSink`] (zero-cost: collection compiles out),
//!   [`JsonlSink`] (buffered file), [`CaptureSink`] (in-memory, tests);
//! * [`verify_lines`] — re-walk a stream's hash chain;
//! * [`diff_lines`] — first divergent sequence number between two runs;
//! * [`GoldenSnapshot`] — the tiny `(workload, events, tip)` baseline
//!   format checked into `tests/golden/`;
//! * `ecolife-trace` (`src/bin/`) — `tail` / `filter` / `verify` /
//!   `diff` over stream files.
//!
//! This crate is dependency-free (the SHA-256 is vendored, like the
//! workspace's other offline stand-ins) and engine-agnostic: the sim
//! crate emits, everything downstream only reads lines.

pub mod chain;
pub mod diff;
pub mod event;
pub mod golden;
pub mod json;
pub mod sha256;
pub mod sink;

pub use chain::{
    finalize, verify_lines, ChainError, ChainSummary, ChainWalker, SequencedEvent, GENESIS,
};
pub use diff::{diff_lines, first_divergence, pretty, Divergence};
pub use event::{lane, Event, EventKey, ReleaseCause};
pub use golden::GoldenSnapshot;
pub use json::{field, str_field, u64_field};
pub use sha256::{sha256, sha256_hex};
pub use sink::{CaptureSink, EventSink, JsonlSink, NullSink};

/root/repo/target/release/deps/ecolife_trace-4eb2195417b43d91.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

/root/repo/target/release/deps/ecolife_trace-4eb2195417b43d91: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:

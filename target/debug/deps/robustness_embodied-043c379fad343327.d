/root/repo/target/debug/deps/robustness_embodied-043c379fad343327.d: crates/bench/benches/robustness_embodied.rs Cargo.toml

/root/repo/target/debug/deps/librobustness_embodied-043c379fad343327.rmeta: crates/bench/benches/robustness_embodied.rs Cargo.toml

crates/bench/benches/robustness_embodied.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! An old/new hardware pair — the unit of deployment EcoLife schedules over.

use crate::{Generation, HardwareNode};

/// Identifier of one of the Table I multi-generation pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairId {
    A,
    B,
    C,
}

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PairId::A => write!(f, "Pair A"),
            PairId::B => write!(f, "Pair B"),
            PairId::C => write!(f, "Pair C"),
        }
    }
}

/// One old-generation node plus one new-generation node.
///
/// The paper's evaluation (and this reproduction) deploys one node of each
/// generation; Sec. VI-C notes EcoLife generalizes to multiple pairs by
/// maintaining multiple warm pools — the cluster abstraction in
/// `ecolife-sim` is keyed by [`Generation`] so that extension stays open.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwarePair {
    pub id: PairId,
    pub old: HardwareNode,
    pub new: HardwareNode,
}

impl HardwarePair {
    /// Construct a pair, validating the generation tags.
    ///
    /// # Panics
    /// Panics if `old`/`new` carry the wrong [`Generation`] tag — a pair
    /// with swapped roles would silently invert every trade-off downstream.
    pub fn new(id: PairId, old: HardwareNode, new: HardwareNode) -> Self {
        assert_eq!(old.generation, Generation::Old, "old node mis-tagged");
        assert_eq!(new.generation, Generation::New, "new node mis-tagged");
        HardwarePair { id, old, new }
    }

    /// Node for a generation.
    #[inline]
    pub fn node(&self, generation: Generation) -> &HardwareNode {
        match generation {
            Generation::Old => &self.old,
            Generation::New => &self.new,
        }
    }

    /// Mutable node accessor (used by memory-budget sweeps).
    #[inline]
    pub fn node_mut(&mut self, generation: Generation) -> &mut HardwareNode {
        match generation {
            Generation::Old => &mut self.old,
            Generation::New => &mut self.new,
        }
    }

    /// Apply keep-alive memory budgets (MiB) to both nodes — the Fig. 11
    /// "old/new" memory sweep knob.
    pub fn with_keepalive_budgets_mib(mut self, old_mib: u64, new_mib: u64) -> Self {
        self.old.keepalive_mem_mib = old_mib;
        self.new.keepalive_mem_mib = new_mib;
        self
    }

    /// Collapse the pair to a single generation (both slots host the same
    /// hardware) — used by the Eco-Old / Eco-New robustness baselines
    /// (Fig. 12), which run EcoLife's machinery on homogeneous hardware.
    pub fn homogeneous(&self, generation: Generation) -> HardwarePair {
        let src = self.node(generation).clone();
        let mut old = src.clone();
        old.generation = Generation::Old;
        let mut new = src;
        new.generation = Generation::New;
        HardwarePair {
            id: self.id,
            old,
            new,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skus;

    #[test]
    fn node_accessor_routes_by_generation() {
        let p = skus::pair_a();
        assert_eq!(p.node(Generation::Old).cpu.name, "Intel Xeon E5-2686");
        assert_eq!(
            p.node(Generation::New).cpu.name,
            "Intel Xeon Platinum 8252C"
        );
    }

    #[test]
    #[should_panic(expected = "old node mis-tagged")]
    fn constructor_rejects_swapped_generations() {
        let p = skus::pair_a();
        let mut old = p.new.clone();
        old.generation = Generation::New;
        HardwarePair::new(PairId::A, old, p.old);
    }

    #[test]
    fn budgets_apply_to_both_nodes() {
        let p = skus::pair_a().with_keepalive_budgets_mib(15 * 1024, 20 * 1024);
        assert_eq!(p.old.keepalive_mem_mib, 15 * 1024);
        assert_eq!(p.new.keepalive_mem_mib, 20 * 1024);
    }

    #[test]
    fn homogeneous_duplicates_one_generation() {
        let p = skus::pair_a().homogeneous(Generation::New);
        assert_eq!(p.old.cpu.name, p.new.cpu.name);
        assert_eq!(p.old.generation, Generation::Old);
        assert_eq!(p.new.generation, Generation::New);
        assert_eq!(p.old.cpu.name, "Intel Xeon Platinum 8252C");
    }

    #[test]
    fn display_names() {
        assert_eq!(PairId::A.to_string(), "Pair A");
        assert_eq!(PairId::B.to_string(), "Pair B");
        assert_eq!(PairId::C.to_string(), "Pair C");
    }
}

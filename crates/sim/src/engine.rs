//! The trace replay engine.
//!
//! One pass over the invocation stream; for every invocation:
//!
//! 1. lapse expired containers (settling their keep-alive carbon against
//!    the invocation that scheduled them);
//! 2. classify warm/cold (a warm container is consumed by the start);
//! 3. ask the [`Scheduler`] for execution placement and keep-alive
//!    (execution is forced to the warm location when one exists —
//!    Sec. IV-D);
//! 4. account service time (setup + cold start + execution on the chosen
//!    generation) and service carbon (Sec. II model, time-averaged CI);
//! 5. install the keep-alive container, running the scheduler's warm-pool
//!    adjustment on overflow.
//!
//! At end of trace, still-warm containers are settled at their expiry —
//! every scheduled keep-alive is fully charged, so schedulers cannot game
//! the horizon.

use crate::cluster::Cluster;
use crate::container::WarmContainer;
use crate::metrics::{InvocationRecord, RunMetrics};
use crate::scheduler::{InvocationCtx, OverflowAction, OverflowCtx, Scheduler};
use ecolife_carbon::{CarbonIntensityTrace, CarbonModel};
use ecolife_hw::{Generation, HardwareNode, HardwarePair, PerfModel};
use ecolife_trace::Trace;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Fixed platform overhead added to every service time (queuing +
    /// setup delay; the paper's service time "includes queuing delay,
    /// setup delay, cold start (if applicable), and execution time").
    pub setup_delay_ms: u64,
    /// The carbon model (embodied scaling etc.).
    pub carbon_model: CarbonModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            setup_delay_ms: 50,
            carbon_model: CarbonModel::default(),
        }
    }
}

/// A configured simulation, ready to run against any scheduler.
pub struct Simulation<'a> {
    trace: &'a Trace,
    ci: &'a CarbonIntensityTrace,
    pair: HardwarePair,
    config: SimConfig,
}

impl<'a> Simulation<'a> {
    pub fn new(trace: &'a Trace, ci: &'a CarbonIntensityTrace, pair: HardwarePair) -> Self {
        Simulation {
            trace,
            ci,
            pair,
            config: SimConfig::default(),
        }
    }

    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Run `scheduler` over the trace, producing the full metrics.
    pub fn run<S: Scheduler>(&self, scheduler: &mut S) -> RunMetrics {
        let mut cluster = Cluster::new(self.pair.clone());
        let mut metrics = RunMetrics::default();
        metrics.records.reserve(self.trace.len());
        scheduler.prepare(self.trace);

        for (index, inv) in self.trace.invocations().iter().enumerate() {
            let t = inv.t_ms;
            let profile = self.trace.catalog().profile(inv.func);

            // (1) Lapse expired containers.
            for generation in Generation::ALL {
                let expired = cluster.pool_mut(generation).expire_until(t);
                for c in expired {
                    self.settle(&c, cluster.node(generation), c.expiry_ms, &mut metrics);
                }
            }

            // (2) Warm or cold?
            let warm_at = cluster.warm_location(inv.func, t);

            // (3) Scheduler decision (timed: this is the paper's
            // decision-making overhead).
            let decision = {
                let ctx = InvocationCtx {
                    index,
                    func: inv.func,
                    profile,
                    t_ms: t,
                    warm_at,
                    ci_now: self.ci.at(t),
                    cluster: &cluster,
                };
                let started = std::time::Instant::now();
                let d = scheduler.decide(&ctx);
                metrics.decision_overhead_ns += started.elapsed().as_nanos() as u64;
                d
            };

            let exec_loc = warm_at.unwrap_or(decision.exec);
            let warm = warm_at.is_some();

            // A consumed warm container is settled up to the reuse instant.
            if warm {
                if let Some(c) = cluster.pool_mut(exec_loc).remove(inv.func) {
                    self.settle(&c, cluster.node(exec_loc), t, &mut metrics);
                }
            }

            // (4) Service time and carbon.
            let node = cluster.node(exec_loc);
            let work_ms = if warm {
                PerfModel::warm_service_ms(node, profile.base_exec_ms, profile.cpu_sensitivity)
            } else {
                PerfModel::cold_service_ms(
                    node,
                    profile.base_exec_ms,
                    profile.base_cold_ms,
                    profile.cpu_sensitivity,
                )
            };
            let service_ms = work_ms + self.config.setup_delay_ms;
            let ci_avg = self.ci.average_over(t, t + service_ms);
            let service_carbon = self.config.carbon_model.active_phase(
                node,
                profile.memory_mib,
                service_ms,
                ci_avg,
            );
            let energy_kwh =
                self.config
                    .carbon_model
                    .active_energy_kwh(node, profile.memory_mib, service_ms);

            metrics.records.push(InvocationRecord {
                func: inv.func,
                t_ms: t,
                exec_location: exec_loc,
                warm,
                service_ms,
                service_carbon,
                keepalive_carbon: ecolife_carbon::CarbonFootprint::ZERO,
                energy_kwh,
            });

            // (5) Install the keep-alive.
            if let Some(ka) = decision.keepalive {
                if ka.duration_ms > 0 {
                    let end_of_service = t + service_ms;
                    let container = WarmContainer {
                        func: inv.func,
                        memory_mib: profile.memory_mib,
                        warm_since_ms: end_of_service,
                        expiry_ms: end_of_service + ka.duration_ms,
                        origin_record: index,
                    };
                    self.install_keepalive(
                        container,
                        ka.location,
                        t,
                        scheduler,
                        &mut cluster,
                        &mut metrics,
                    );
                }
            }

            // Let online schedulers learn from the outcome.
            let ctx = InvocationCtx {
                index,
                func: inv.func,
                profile,
                t_ms: t,
                warm_at,
                ci_now: self.ci.at(t),
                cluster: &cluster,
            };
            scheduler.observe(&ctx, service_ms, warm);
        }

        // End-of-run settlement: every live keep-alive is charged in full.
        for generation in Generation::ALL {
            let remaining = cluster.pool_mut(generation).drain_all();
            for c in remaining {
                self.settle(&c, self.pair.node(generation), c.expiry_ms, &mut metrics);
            }
        }

        metrics
    }

    /// Insert `container` into `location`'s pool, running the scheduler's
    /// warm-pool adjustment when it does not fit.
    fn install_keepalive<S: Scheduler>(
        &self,
        container: WarmContainer,
        location: Generation,
        t: u64,
        scheduler: &mut S,
        cluster: &mut Cluster,
        metrics: &mut RunMetrics,
    ) {
        // Settle a replaced container of the same function (its keep-alive
        // ends now).
        if cluster.pool(location).get(container.func).is_some() {
            if let Some(old) = cluster.pool_mut(location).remove(container.func) {
                self.settle(&old, cluster.node(location), t, metrics);
            }
        }

        let container = match cluster.pool_mut(location).insert(container) {
            Ok(_) => return,
            Err(c) => c,
        };

        // Overflow: ask the scheduler.
        let action = {
            let ctx = OverflowCtx {
                location,
                incoming_func: container.func,
                incoming_memory_mib: container.memory_mib,
                t_ms: t,
                ci_now: self.ci.at(t),
                cluster,
            };
            scheduler.on_pool_overflow(&ctx)
        };

        match action {
            OverflowAction::Drop => {
                metrics.evicted_functions += 1;
            }
            OverflowAction::Adjust(plan) => {
                let other = location.other();
                for func in plan.displace {
                    let Some(mut displaced) = cluster.pool_mut(location).remove(func) else {
                        continue; // plan referenced a non-resident function
                    };
                    // Its stay on this generation ends now.
                    self.settle(&displaced, cluster.node(location), t, metrics);
                    // Restart the remaining keep-alive on the other node.
                    displaced.warm_since_ms = t;
                    if displaced.expiry_ms > t
                        && cluster.pool_mut(other).insert(displaced).is_ok()
                    {
                        metrics.transfers += 1;
                    } else {
                        metrics.evicted_functions += 1;
                    }
                }
                if plan.place_incoming {
                    if cluster.pool_mut(location).insert(container).is_err() {
                        metrics.evicted_functions += 1;
                    }
                } else {
                    metrics.evicted_functions += 1;
                }
            }
        }
    }

    /// Charge a container's keep-alive period `[warm_since, end)` to its
    /// origin record.
    fn settle(
        &self,
        container: &WarmContainer,
        node: &HardwareNode,
        end_ms: u64,
        metrics: &mut RunMetrics,
    ) {
        let duration = container.resident_ms(end_ms);
        if duration == 0 {
            return;
        }
        let ci_avg = self
            .ci
            .average_over(container.warm_since_ms, container.warm_since_ms + duration);
        let fp = self.config.carbon_model.keepalive_phase(
            node,
            container.memory_mib,
            duration,
            ci_avg,
        );
        let rec = &mut metrics.records[container.origin_record];
        rec.keepalive_carbon += fp;
        rec.energy_kwh += self.config.carbon_model.keepalive_energy_kwh(
            node,
            container.memory_mib,
            duration,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AdjustPlan, Decision, KeepAliveChoice};
    use crate::MINUTE_MS;
    use ecolife_hw::skus;
    use ecolife_trace::{FunctionId, FunctionProfile, Invocation, WorkloadCatalog};

    /// Fixed policy: execute on `exec`, keep alive `ka_min` minutes on
    /// `ka_loc`.
    struct Fixed {
        exec: Generation,
        ka_loc: Generation,
        ka_min: u64,
        overflow: OverflowAction,
    }

    impl Fixed {
        fn new(exec: Generation, ka_loc: Generation, ka_min: u64) -> Self {
            Fixed {
                exec,
                ka_loc,
                ka_min,
                overflow: OverflowAction::Drop,
            }
        }
    }

    impl Scheduler for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
            Decision {
                exec: self.exec,
                keepalive: (self.ka_min > 0).then_some(KeepAliveChoice {
                    location: self.ka_loc,
                    duration_ms: self.ka_min * MINUTE_MS,
                }),
            }
        }
        fn on_pool_overflow(&mut self, _ctx: &OverflowCtx<'_>) -> OverflowAction {
            self.overflow.clone()
        }
    }

    fn one_func_catalog() -> WorkloadCatalog {
        WorkloadCatalog::new(vec![FunctionProfile::new("f", 1_000, 2_000, 512, 0.64)])
    }

    fn trace_of(times: &[u64]) -> Trace {
        Trace::new(
            one_func_catalog(),
            times
                .iter()
                .map(|&t| Invocation {
                    func: FunctionId(0),
                    t_ms: t,
                })
                .collect(),
        )
    }

    fn ci300() -> CarbonIntensityTrace {
        CarbonIntensityTrace::constant(300.0, 600)
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm_within_keepalive() {
        let trace = trace_of(&[0, 2 * MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        assert_eq!(m.invocations(), 2);
        assert!(!m.records[0].warm);
        assert!(m.records[1].warm);
        // Warm service = exec only + setup; cold includes the cold start.
        assert!(m.records[1].service_ms < m.records[0].service_ms);
        assert_eq!(m.records[1].service_ms, 1_000 + 50);
        assert_eq!(m.records[0].service_ms, 2_000 + 1_000 + 50);
    }

    #[test]
    fn reinvocation_after_expiry_is_cold() {
        let trace = trace_of(&[0, 15 * MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        assert!(!m.records[1].warm);
        assert_eq!(m.warm_starts(), 0);
    }

    #[test]
    fn keepalive_carbon_attributed_to_scheduling_invocation() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::New, 10));
        // The sole record carries its own 10-minute keep-alive.
        assert!(m.records[0].keepalive_carbon.total_g() > 0.0);
        // Order of magnitude: ~2 W for 600 s at 300 g/kWh ≈ 0.1 g plus
        // embodied.
        let ka = m.records[0].keepalive_carbon.total_g();
        assert!((0.02..1.0).contains(&ka), "keep-alive carbon {ka}");
    }

    #[test]
    fn warm_reuse_truncates_keepalive_charge() {
        let ci = ci300();
        let pair = skus::pair_a();
        // Reuse after 2 of 10 scheduled minutes…
        let t_short = trace_of(&[0, 2 * MINUTE_MS]);
        let m_short =
            Simulation::new(&t_short, &ci, pair.clone()).run(&mut Fixed::new(
                Generation::New,
                Generation::New,
                10,
            ));
        // …must charge less than lapsing the full 10 minutes.
        let t_lapse = trace_of(&[0]);
        let m_lapse = Simulation::new(&t_lapse, &ci, pair).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        let short_ka = m_short.records[0].keepalive_carbon.total_g();
        let lapse_ka = m_lapse.records[0].keepalive_carbon.total_g();
        assert!(short_ka < 0.5 * lapse_ka, "{short_ka} vs {lapse_ka}");
    }

    #[test]
    fn warm_location_overrides_exec_decision() {
        // Keep alive on OLD but the policy wants to execute on NEW: the
        // engine must execute the warm start on OLD (Sec. IV-D).
        let trace = trace_of(&[0, MINUTE_MS]);
        let ci = ci300();
        let sim = Simulation::new(&trace, &ci, skus::pair_a());
        let m = sim.run(&mut Fixed::new(Generation::New, Generation::Old, 10));
        assert_eq!(m.records[1].exec_location, Generation::Old);
        assert!(m.records[1].warm);
    }

    #[test]
    fn execution_on_old_is_slower() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let pair = skus::pair_a();
        let m_old = Simulation::new(&trace, &ci, pair.clone())
            .run(&mut Fixed::new(Generation::Old, Generation::Old, 0));
        let m_new = Simulation::new(&trace, &ci, pair)
            .run(&mut Fixed::new(Generation::New, Generation::New, 0));
        assert!(m_old.records[0].service_ms > m_new.records[0].service_ms);
    }

    #[test]
    fn overflow_drop_counts_eviction() {
        // Pool too small for the 512-MiB container.
        let pair = skus::pair_a().with_keepalive_budgets_mib(256, 256);
        let trace = trace_of(&[0]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, pair).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        assert_eq!(m.evicted_functions, 1);
        assert_eq!(m.records[0].keepalive_carbon.total_g(), 0.0);
    }

    #[test]
    fn overflow_adjust_transfers_to_other_pool() {
        // Two functions of 512 MiB each; the new pool only fits one.
        let catalog = WorkloadCatalog::new(vec![
            FunctionProfile::new("a", 1_000, 2_000, 512, 0.5),
            FunctionProfile::new("b", 1_000, 2_000, 512, 0.5),
        ]);
        let trace = Trace::new(
            catalog,
            vec![
                Invocation {
                    func: FunctionId(0),
                    t_ms: 0,
                },
                Invocation {
                    func: FunctionId(1),
                    t_ms: 10_000,
                },
            ],
        );
        let ci = ci300();
        let pair = skus::pair_a().with_keepalive_budgets_mib(512, 512);

        struct Adjusting;
        impl Scheduler for Adjusting {
            fn name(&self) -> &'static str {
                "adjusting"
            }
            fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
                Decision {
                    exec: Generation::New,
                    keepalive: Some(KeepAliveChoice {
                        location: Generation::New,
                        duration_ms: 10 * MINUTE_MS,
                    }),
                }
            }
            fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
                // Displace whatever is resident; place the incoming.
                let resident: Vec<_> =
                    ctx.cluster.pool(ctx.location).iter().map(|c| c.func).collect();
                OverflowAction::Adjust(AdjustPlan {
                    displace: resident,
                    place_incoming: true,
                })
            }
        }

        let m = Simulation::new(&trace, &ci, pair).run(&mut Adjusting);
        assert_eq!(m.transfers, 1);
        assert_eq!(m.evicted_functions, 0);
        // Both invocations still carry keep-alive carbon: one on new, the
        // transferred one split across generations.
        assert!(m.records[0].keepalive_carbon.total_g() > 0.0);
        assert!(m.records[1].keepalive_carbon.total_g() > 0.0);
    }

    #[test]
    fn no_keepalive_means_no_keepalive_carbon() {
        let trace = trace_of(&[0, MINUTE_MS]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            0,
        ));
        assert_eq!(m.total_keepalive_carbon_g(), 0.0);
        assert_eq!(m.warm_starts(), 0);
    }

    #[test]
    fn energy_accumulates_service_and_keepalive() {
        let trace = trace_of(&[0]);
        let ci = ci300();
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            10,
        ));
        let service_only = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
            Generation::New,
            Generation::New,
            0,
        ));
        assert!(m.total_energy_kwh() > service_only.total_energy_kwh());
    }

    #[test]
    fn deterministic_run() {
        let trace = trace_of(&[0, 30_000, 90_000, 200_000]);
        let ci = ci300();
        let run = || {
            Simulation::new(&trace, &ci, skus::pair_a()).run(&mut Fixed::new(
                Generation::New,
                Generation::New,
                5,
            ))
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.evicted_functions, b.evicted_functions);
    }
}

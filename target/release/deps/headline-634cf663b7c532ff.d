/root/repo/target/release/deps/headline-634cf663b7c532ff.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-634cf663b7c532ff: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:

//! Fig. 1 — keep-alive vs service carbon footprint as the keep-alive
//! period grows from 2 to 10 minutes, for the three motivation functions
//! on A_NEW.
//!
//! Paper shape to reproduce: the keep-alive share of the total footprint
//! grows strongly with the period (Graph-BFS: 18% of the total at 2 min
//! → 52% at 10 min), and beyond a few minutes the keep-alive carbon
//! often exceeds the service carbon.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_carbon::CarbonModel;
use ecolife_hw::{skus, PerfModel};
use ecolife_trace::WorkloadCatalog;
use std::hint::black_box;

const CI: f64 = 300.0;
const FUNCS: [&str; 3] = [
    "220.video-processing",
    "503.graph-bfs",
    "504.dna-visualization",
];

fn print_fig1() {
    let catalog = WorkloadCatalog::sebs();
    let model = CarbonModel::default();
    let node = &skus::pair_a().new;
    println!("\n=== Fig. 1: keep-alive vs service CO2 on A_NEW (CI = {CI} g/kWh) ===");
    println!(
        "{:<24} {:>6} {:>14} {:>14} {:>9}",
        "function", "k min", "keepalive g", "service g", "ka share"
    );
    for name in FUNCS {
        let (_, f) = catalog.by_name(name).unwrap();
        let service_ms =
            PerfModel::cold_service_ms(node, f.base_exec_ms, f.base_cold_ms, f.cpu_sensitivity);
        let service = model
            .active_phase(node, f.memory_mib, service_ms, CI)
            .total_g();
        for k_min in [2u64, 4, 6, 8, 10] {
            let ka = model
                .keepalive_phase(node, f.memory_mib, k_min * 60_000, CI)
                .total_g();
            println!(
                "{:<24} {:>6} {:>14.4} {:>14.4} {:>8.1}%",
                name,
                k_min,
                ka,
                service,
                100.0 * ka / (ka + service)
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig1();
    let model = CarbonModel::default();
    let node = skus::pair_a().new;
    c.bench_function("fig1/keepalive_phase_eval", |b| {
        b.iter(|| black_box(model.keepalive_phase(&node, 512, 600_000, CI)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

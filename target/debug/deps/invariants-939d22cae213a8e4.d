/root/repo/target/debug/deps/invariants-939d22cae213a8e4.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-939d22cae213a8e4: tests/invariants.rs

tests/invariants.rs:

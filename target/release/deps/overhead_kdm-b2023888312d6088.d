/root/repo/target/release/deps/overhead_kdm-b2023888312d6088.d: crates/bench/benches/overhead_kdm.rs Cargo.toml

/root/repo/target/release/deps/liboverhead_kdm-b2023888312d6088.rmeta: crates/bench/benches/overhead_kdm.rs Cargo.toml

crates/bench/benches/overhead_kdm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

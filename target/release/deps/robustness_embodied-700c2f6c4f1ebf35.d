/root/repo/target/release/deps/robustness_embodied-700c2f6c4f1ebf35.d: crates/bench/benches/robustness_embodied.rs

/root/repo/target/release/deps/robustness_embodied-700c2f6c4f1ebf35: crates/bench/benches/robustness_embodied.rs

crates/bench/benches/robustness_embodied.rs:

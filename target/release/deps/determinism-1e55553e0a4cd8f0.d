/root/repo/target/release/deps/determinism-1e55553e0a4cd8f0.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-1e55553e0a4cd8f0: tests/determinism.rs

tests/determinism.rs:

//! The repository's golden-trace workloads: three small, fully
//! deterministic runs — one per flagship example — whose complete event
//! streams are checked into `tests/golden/` as `<name>.jsonl` plus a
//! `<name>.golden` summary (event count + chain-tip hash).
//!
//! Any engine change that alters observable behavior moves a hash and
//! fails both the `tests/golden_traces.rs` pin and the CI
//! `golden-traces` job, which reports the *first divergent event* via
//! [`ecolife_telemetry::diff_lines`]. Intentional changes regenerate
//! the baselines with `cargo run --release --bin golden_traces -- emit`.
//!
//! The workloads are scaled-down twins of `examples/quickstart.rs`,
//! `examples/fleet_cluster.rs`, and `examples/carbon_region_study.rs`
//! (same fleets, schedulers, and seeds; shorter traces keep the
//! checked-in streams small). `fleet_cluster` runs through the
//! *sharded* engine on purpose: its golden pins the
//! sharded-equals-sequential stream discipline at a fixed shard layout.

use ecolife_carbon::{CarbonIntensityTrace, CiBundle, Region, TransferCost};
use ecolife_core::{EcoLife, EcoLifeConfig};
use ecolife_hw::{skus, Fleet, NodeId};
use ecolife_sim::{
    AdjustPlan, CaptureSink, Decision, FaultPlan, InvocationCtx, KeepAliveChoice, MembershipPlan,
    OverflowAction, OverflowCtx, Scheduler, ShardOptions, SimConfig, Simulation, MINUTE_MS,
};
use ecolife_telemetry::GoldenSnapshot;
use ecolife_trace::{
    FunctionId, FunctionProfile, Invocation, SynthTraceConfig, Trace, WorkloadCatalog,
};

/// The golden workload names, in emission order.
pub const GOLDEN_WORKLOADS: [&str; 5] = [
    "quickstart",
    "fleet_cluster",
    "carbon_region_study",
    "follow_the_sun",
    "chaos_day",
];

/// The function the chaos scenario displaces off node 1 while Tennessee
/// is partitioned ("chaos-victim" in the catalog). Its id is chosen so
/// it lands in the same `FunctionId`-hash shard as [`CHAOS_OVERFLOW`]
/// at shard counts 1, 2, *and* 8 — the displacement is then visible to
/// exactly the shard that triggers it, which is what keeps the chaos
/// stream bit-identical at every tested shard layout.
pub const CHAOS_VICTIM: FunctionId = FunctionId(13);

/// The function whose keep-alive overflows node 1's pool and displaces
/// [`CHAOS_VICTIM`] ("chaos-glutton": its footprint equals the whole
/// per-node budget, so the insert fails whenever *anything* is
/// resident — a fact every shard can see through the shared memory
/// ledger, regardless of which shard owns the residents).
pub const CHAOS_OVERFLOW: FunctionId = FunctionId(16);

/// The per-node keep-alive budget of the chaos fleet. Sized above the
/// *worst-case* simultaneous footprint of every traced function, so the
/// only pool overflow in the whole run is the engineered one
/// ([`CHAOS_OVERFLOW`]'s whole-budget container) — overflow resolution
/// is the one engine path whose outcome could otherwise depend on which
/// shard owns which resident.
pub const CHAOS_BUDGET_MIB: u64 = 12 * 1024;

/// The deterministic scheduler of the chaos scenario. Every choice is a
/// pure function of the invocation (warm location, function id) — never
/// of pool contents — so any shard/thread layout replays it
/// bit-identically. Placement sticks to the warm node, else spreads by
/// function id; overflow drops the incoming keep-alive, except for
/// [`CHAOS_OVERFLOW`], which displaces [`CHAOS_VICTIM`] onto the
/// engine's transfer path — mid-partition, with the only same-region
/// target crashed, that transfer has nowhere reachable to go and walks
/// the plan's bounded retry schedule instead.
#[derive(Debug, Clone)]
pub struct ChaosScheduler {
    nodes: usize,
}

impl ChaosScheduler {
    /// A scheduler for `fleet` (only its node count matters).
    pub fn new(fleet: &Fleet) -> Self {
        ChaosScheduler { nodes: fleet.len() }
    }
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> &'static str {
        "ChaosScheduler"
    }

    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        let exec = ctx
            .warm_at
            .unwrap_or(NodeId(((ctx.func.0 as usize * 7 + 3) % self.nodes) as u32));
        Decision {
            exec,
            keepalive: Some(KeepAliveChoice {
                location: exec,
                duration_ms: 5 * MINUTE_MS,
            }),
        }
    }

    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        if ctx.incoming_func == CHAOS_OVERFLOW {
            OverflowAction::Adjust(AdjustPlan {
                displace: vec![CHAOS_VICTIM],
                place_incoming: false,
                transfer_targets: None, // every other node, id order
            })
        } else {
            OverflowAction::Drop
        }
    }
}

/// The `chaos_day` fault timeline, shared by the golden workload, the
/// chaos identity tests, and `examples/chaos_day.rs`: a CI-feed outage
/// over Tennessee (home of the degraded fallback's preferred node), a
/// partition isolating Tennessee from the rest of the fleet, and two
/// ungraceful node crashes — the Tennessee i3.metal for the whole
/// partition span (so a displacement off node 1 has no reachable
/// target anywhere and the retry schedule fires), and the Tennessee
/// m5zn.metal late in the degraded window (so the fallback keep-alives
/// it accumulated are lost instantly).
pub fn chaos_day_faults() -> FaultPlan {
    FaultPlan::default()
        .with_seed(0xC4A05)
        .ci_outage(Region::Tennessee, 5 * MINUTE_MS, 45 * MINUTE_MS)
        .partition(vec![Region::Tennessee], 21 * MINUTE_MS, 44 * MINUTE_MS)
        .crash(NodeId(0), 21 * MINUTE_MS, 44 * MINUTE_MS)
        .crash(NodeId(1), 41 * MINUTE_MS, 50 * MINUTE_MS)
}

/// The `chaos_day` scenario minus the faults: trace, CI bundle, fleet,
/// and transfer pricing. Split out so tests can run the identical
/// workload with and without a [`FaultPlan`].
///
/// The trace is a 60-minute synthetic stream over the SeBS catalog plus
/// two "needle" functions timed against [`chaos_day_faults`]:
/// `chaos-victim` ([`CHAOS_VICTIM`]) cold-starts at minute 22 — inside
/// the degraded window, so its keep-alive lands on node 1 — and
/// `chaos-glutton` ([`CHAOS_OVERFLOW`]) follows at minute 25 with a
/// whole-budget footprint, forcing the one engineered overflow while
/// Tennessee is partitioned and its other node is down.
pub fn chaos_day_parts() -> (Trace, CiBundle, Fleet, TransferCost) {
    let base = SynthTraceConfig {
        n_functions: 12,
        duration_min: 60,
        seed: 0xC4A0,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let mut catalog = WorkloadCatalog::default();
    for (_, profile) in base.catalog().iter() {
        catalog.push(profile.clone());
    }
    // Ids 12/14/15 are inert spacers: they pin CHAOS_VICTIM and
    // CHAOS_OVERFLOW to ids that hash to one shard at 1/2/8 shards.
    catalog.push(FunctionProfile::new("chaos-spacer-a", 100, 500, 128, 0.3));
    catalog.push(FunctionProfile::new("chaos-victim", 150, 600, 512, 0.3));
    catalog.push(FunctionProfile::new("chaos-spacer-b", 100, 500, 128, 0.3));
    catalog.push(FunctionProfile::new("chaos-spacer-c", 100, 500, 128, 0.3));
    catalog.push(FunctionProfile::new(
        "chaos-glutton",
        4_000,
        3_000,
        CHAOS_BUDGET_MIB,
        0.5,
    ));
    let mut invocations = base.invocations().to_vec();
    invocations.push(Invocation {
        func: CHAOS_VICTIM,
        t_ms: 22 * MINUTE_MS + 1_000,
    });
    invocations.push(Invocation {
        func: CHAOS_OVERFLOW,
        t_ms: 25 * MINUTE_MS + 1_000,
    });
    let trace = Trace::new(catalog, invocations);
    let bundle = CiBundle::synthetic_all(80, 0xC4A0);
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(CHAOS_BUDGET_MIB);
    let cost = TransferCost {
        egress_kwh_per_mib: 2.0e-9,
        latency_ms: 50,
    };
    (trace, bundle, fleet, cost)
}

/// Replay one golden workload and capture its full event stream.
///
/// Panics on an unknown name — the caller iterates
/// [`GOLDEN_WORKLOADS`].
pub fn run_golden(name: &str) -> CaptureSink {
    let mut sink = CaptureSink::default();
    match name {
        // examples/quickstart.rs in miniature: pair-A fleet, CISO grid,
        // EcoLife, sequential engine.
        "quickstart" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 42,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 42);
            let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(
                &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &mut sink,
            );
        }
        // examples/fleet_cluster.rs in miniature: three CPU generations,
        // EcoLife — replayed through the *sharded* engine so the golden
        // also pins the merged-stream discipline.
        "fleet_cluster" => {
            let trace = SynthTraceConfig {
                n_functions: 10,
                duration_min: 45,
                seed: 7,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 60, 7);
            let fleet = skus::fleet_of(&[
                ecolife_hw::Sku::I3Metal,
                ecolife_hw::Sku::M5Metal,
                ecolife_hw::Sku::M5znMetal,
            ])
            .with_uniform_keepalive_budget_mib(10 * 1024);
            Simulation::new(&trace, &ci, fleet.clone()).run_sharded_with_sink(
                |_| EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                &ShardOptions::new(4).with_threads(2),
                &mut sink,
            );
        }
        // examples/carbon_region_study.rs in miniature: the ten-node
        // five-region fleet, one free EcoLife, per-node grid series.
        "carbon_region_study" => {
            let trace = SynthTraceConfig {
                n_functions: 8,
                duration_min: 45,
                seed: 1234,
                ..Default::default()
            }
            .generate(&WorkloadCatalog::sebs());
            let bundle = CiBundle::synthetic_all(60, 1234);
            let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(12 * 1024);
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .run_with_sink(
                    &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
                    &mut sink,
                );
        }
        // examples/follow_the_sun.rs in miniature: priced migrations,
        // the engine's periodic re-placement pass, and a mid-trace
        // leave/join, over the five-region fleet with phase-shifted
        // diurnal arrivals. This golden pins the priced-migration
        // economics end to end: egress grams, latency debt, membership
        // drains, and their event-stream keys.
        "follow_the_sun" => {
            let base = WorkloadCatalog::sebs();
            let mut catalog = WorkloadCatalog::default();
            let mut invocations: Vec<Invocation> = Vec::new();
            for i in 0..5u64 {
                let stream = SynthTraceConfig {
                    n_functions: 4,
                    duration_min: 60,
                    seed: 0x50_1A_12 + i,
                    phase_offset_min: i * 12,
                    ..Default::default()
                }
                .generate(&base);
                let offset = catalog.len() as u32;
                for (_, profile) in stream.catalog().iter() {
                    catalog.push(profile.clone());
                }
                invocations.extend(stream.invocations().iter().map(|inv| Invocation {
                    func: FunctionId(inv.func.0 + offset),
                    t_ms: inv.t_ms,
                }));
            }
            let trace = Trace::new(catalog, invocations);
            let bundle = CiBundle::synthetic_all(80, 99);
            let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(64 * 1024);
            let cost = TransferCost {
                egress_kwh_per_mib: 2.0e-9,
                latency_ms: 50,
            };
            let membership = MembershipPlan::default()
                .leave(20 * 60_000, NodeId(0))
                .join(40 * 60_000, NodeId(0));
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .with_config(
                    SimConfig::default()
                        .with_transfer_cost(cost)
                        .with_replacement_every_min(10),
                )
                .with_membership(membership)
                .run_with_sink(
                    &mut EcoLife::new(
                        fleet.clone(),
                        EcoLifeConfig::default().with_transfer_cost(cost),
                    ),
                    &mut sink,
                );
        }
        // examples/chaos_day.rs in miniature: the five-region fleet
        // under the shared chaos timeline ([`chaos_day_faults`]) — a CI
        // outage that forces degraded carbon-agnostic decisions, a
        // partition that strands a displacement on the deterministic
        // retry schedule, and two crashes that drain warm pools
        // ungracefully. This golden pins the whole fault surface:
        // crash/outage/partition skeleton events, crash drains,
        // TransferRetried scheduling, crash-rejected executions, and
        // the degraded-decision fallback — byte-identical however the
        // run is sharded (see `tests/faults.rs`).
        "chaos_day" => {
            let (trace, bundle, fleet, cost) = chaos_day_parts();
            Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .expect("five-region bundle covers the fleet")
                .with_config(SimConfig::default().with_transfer_cost(cost))
                .with_faults(chaos_day_faults())
                .run_with_sink(&mut ChaosScheduler::new(&fleet), &mut sink);
        }
        other => panic!("unknown golden workload '{other}'"),
    }
    sink
}

/// The `<name>.golden` summary for a captured stream.
pub fn snapshot(name: &str, sink: &CaptureSink) -> GoldenSnapshot {
    let tip = sink
        .tip()
        .expect("golden workloads emit at least RunStarted/RunEnded");
    GoldenSnapshot {
        workload: name.to_string(),
        events: sink.len() as u64,
        tip: tip.to_string(),
    }
}

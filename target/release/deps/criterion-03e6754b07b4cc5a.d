/root/repo/target/release/deps/criterion-03e6754b07b4cc5a.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-03e6754b07b4cc5a.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

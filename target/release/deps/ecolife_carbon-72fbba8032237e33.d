/root/repo/target/release/deps/ecolife_carbon-72fbba8032237e33.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/ecolife_carbon-72fbba8032237e33: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

//! The planner's genome: one candidate fleet composition.

/// One point of the capacity-planning search space: how many nodes of
/// each offering to provision, and the uniform per-node keep-alive
/// memory budget to configure them with.
///
/// The genome is pure integers (`counts` are per-offering node counts
/// in the owning [`PlanSpace`](crate::PlanSpace)'s offering order — one
/// count per SKU on a single-region space, one per (SKU, region)
/// otherwise), which gives every plan a stable
/// [`genome_key`](FleetPlan::genome_key) — the memo key that lets
/// repeated candidates skip re-simulation. Interpreting a genome —
/// materializing the fleet, pricing its embodied carbon, describing it
/// — is the owning space's job
/// ([`PlanSpace::materialize`](crate::PlanSpace::materialize),
/// [`PlanSpace::provisioned_embodied_g`](crate::PlanSpace::provisioned_embodied_g),
/// [`PlanSpace::describe_plan`](crate::PlanSpace::describe_plan)), so
/// there is exactly one decoding of counts into hardware.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FleetPlan {
    /// Node count per offering, in the owning space's offering order.
    pub counts: Vec<u32>,
    /// Warm-pool memory budget applied to every provisioned node (MiB).
    pub mem_budget_mib: u64,
}

impl FleetPlan {
    /// Total provisioned nodes.
    pub fn total_nodes(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// A stable 64-bit key of the integer genome (FNV-1a over counts and
    /// budget) — the memo-cache key. Collisions are theoretically
    /// possible but the cache stores the genome alongside the score and
    /// verifies equality, so a collision costs a re-simulation, never a
    /// wrong answer.
    pub fn genome_key(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for &c in &self.counts {
            eat(c as u64);
        }
        eat(self.mem_budget_mib);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_nodes_sums_counts() {
        let plan = FleetPlan {
            counts: vec![1, 2, 0],
            mem_budget_mib: 4_096,
        };
        assert_eq!(plan.total_nodes(), 3);
        assert_eq!(
            FleetPlan {
                counts: vec![0, 0],
                mem_budget_mib: 1,
            }
            .total_nodes(),
            0
        );
    }

    #[test]
    fn genome_keys_distinguish_plans() {
        let a = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 4_096,
        };
        let b = FleetPlan {
            counts: vec![2, 1],
            mem_budget_mib: 4_096,
        };
        let c = FleetPlan {
            counts: vec![1, 2],
            mem_budget_mib: 8_192,
        };
        assert_eq!(a.genome_key(), a.clone().genome_key());
        assert_ne!(a.genome_key(), b.genome_key());
        assert_ne!(a.genome_key(), c.genome_key());
    }
}

/root/repo/target/debug/deps/ecolife_hw-2108cec3127a98fb.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

/root/repo/target/debug/deps/libecolife_hw-2108cec3127a98fb.rmeta: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:

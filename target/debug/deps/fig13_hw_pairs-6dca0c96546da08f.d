/root/repo/target/debug/deps/fig13_hw_pairs-6dca0c96546da08f.d: crates/bench/benches/fig13_hw_pairs.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_hw_pairs-6dca0c96546da08f.rmeta: crates/bench/benches/fig13_hw_pairs.rs Cargo.toml

crates/bench/benches/fig13_hw_pairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

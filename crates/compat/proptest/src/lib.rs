//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its test suites use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, [`Just`],
//! ranged strategies for integers and floats, tuple strategies,
//! `prop::collection::vec`, and `prop_map`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its sampled inputs but is
//!   not minimized;
//! * **fixed derivation of case seeds** — case `i` of test `name` draws
//!   from a generator seeded with `hash(name) ^ i`, so failures are
//!   reproducible run-to-run without a persistence file.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property (subset of `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
///
/// Object-safe: `prop_map` carries a `Sized` bound so strategies of one
/// value type can be boxed and unioned by `prop_oneof!`.
pub trait Strategy {
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Derive a strategy by mapping sampled values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// The `prop::` namespace (subset).
pub mod prop {
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy producing `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// Vectors of `len` elements sampled from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Drive one property over `config.cases` sampled cases.
///
/// Used by the [`proptest!`] expansion; not part of the public proptest
/// API surface.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: FNV-1a over the test name.
    let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x100_0000_01b3);
    }
    for i in 0..config.cases {
        let mut rng = SmallRng::seed_from_u64(name_hash ^ (i as u64).wrapping_mul(0x9E37_79B9));
        if let Err(e) = case(&mut rng) {
            panic!(
                "property '{test_name}' failed at case {i}/{}: {e}",
                config.cases
            );
        }
    }
}

/// The property-test macro (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                // Rendered before the body runs: the body may move the args.
                let __proptest_inputs: String =
                    format!(concat!("inputs: ", $(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                __proptest_result.map_err(|e| {
                    $crate::TestCaseError::fail(format!("{e}\n{__proptest_inputs}"))
                })
            });
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f escaped: {f}");
        }

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0u32..5, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b), 1..10)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|x| (0.0..6.0).contains(x)));
        }

        #[test]
        fn oneof_covers_options(c in prop_oneof![Just(Coin::Heads), Just(Coin::Tails)]) {
            prop_assert!(c == Coin::Heads || c == Coin::Tails);
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            fn helper(x: u32) -> Result<(), TestCaseError> {
                prop_assert!(x < 10);
                Ok(())
            }
            helper(x)?;
            prop_assert_eq!(x.min(9), x);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed at case 0")]
    fn failures_panic_with_case_info() {
        crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}

//! Property suite for the sharded replay engine: random workloads and
//! fleets, three invariants (ISSUE 3):
//!
//! 1. **merge exactness** — with pools roomy enough that no node ever
//!    overflows, the merged per-shard metrics equal the whole-run
//!    (sequential) metrics, record for record;
//! 2. **capacity after reconciliation** — under arbitrary (including
//!    brutal) memory pressure, no node's post-reconciliation occupancy
//!    ever exceeds its keep-alive budget;
//! 3. **carbon accounting closure** — `carbon_g_by_node` sums to the
//!    run's total carbon, sequential or sharded, pressured or not.
//!
//! The big million-invocation replay rides at the bottom, `#[ignore]`d
//! in debug builds and exercised by the `test-release` CI job.

use ecolife::prelude::*;
use ecolife::sim::{shard_of, ShardOptions};
use proptest::prelude::*;

/// A random fleet of 1–4 nodes drawn from the SKU catalog (duplicates
/// allowed — horizontal scale-out), with one shared keep-alive budget.
fn fleet_from(sku_picks: &[usize], budget_mib: u64) -> Fleet {
    let catalog = skus::catalog();
    let skus: Vec<Sku> = sku_picks
        .iter()
        .map(|&i| catalog[i % catalog.len()])
        .collect();
    skus::fleet_of(&skus).with_uniform_keepalive_budget_mib(budget_mib)
}

fn workload(n_functions: usize, duration_min: u64, seed: u64) -> (Trace, CarbonIntensityTrace) {
    let trace = SynthTraceConfig {
        n_functions,
        duration_min,
        seed,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, duration_min as usize + 30, seed);
    (trace, ci)
}

/// One record's deterministic fields: everything but wall-clock noise.
type Outcome = (FunctionId, u64, NodeId, bool, u64, f64, f64);

/// Strip wall-clock noise (decision overhead) for exact comparison.
fn comparable(m: &RunMetrics) -> (Vec<Outcome>, u64, u64) {
    (
        m.records
            .iter()
            .map(|r| {
                (
                    r.func,
                    r.t_ms,
                    r.exec_location,
                    r.warm,
                    r.service_ms,
                    r.service_carbon.total_g(),
                    r.keepalive_carbon.total_g(),
                )
            })
            .collect(),
        m.evicted_functions,
        m.transfers,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (1) Merge exactness in the no-overflow regime, engine-only
    /// (fixed policy): any workload, any fleet, any shard count.
    #[test]
    fn merged_shard_metrics_equal_whole_run_metrics(
        seed in 0u64..1_000_000,
        n_functions in 2usize..16,
        duration_min in 20u64..90,
        sku_picks in prop::collection::vec(0usize..4, 1..5),
        shards in 2usize..9,
    ) {
        let (trace, ci) = workload(n_functions, duration_min, seed);
        // Roomy pools: the whole catalog warm at once fits every node.
        let fleet = fleet_from(&sku_picks, 64 * 1024);
        let sim = Simulation::new(&trace, &ci, fleet.clone());

        let mut fixed = FixedPolicy::pinned(fleet.newest(), 10);
        let sequential = sim.run(&mut fixed);
        let sharded = sim.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(shards),
        );

        prop_assert_eq!(sharded.reconcile_revocations, 0);
        prop_assert_eq!(comparable(&sharded), comparable(&sequential));
        // Aggregate views agree too (float sums to tolerance).
        prop_assert!((sharded.total_carbon_g() - sequential.total_carbon_g()).abs() < 1e-9);
        prop_assert_eq!(sharded.warm_starts(), sequential.warm_starts());
        for (a, b) in sharded.keepalive_g_by_node.iter().zip(&sequential.keepalive_g_by_node) {
            prop_assert!((a - b).abs() < 1e-9, "per-node keep-alive drifted: {} vs {}", a, b);
        }
    }

    /// (1b) Merge exactness holds for the full stateful scheduler too:
    /// per-function DPSO + predictors + global ΔCI, sharded, equals the
    /// sequential EcoLife bit for bit (fewer, smaller cases — each is a
    /// real EcoLife replay).
    #[test]
    fn ecolife_shards_exactly(
        seed in 0u64..100_000,
        n_functions in 2usize..10,
        sku_picks in prop::collection::vec(0usize..4, 1..4),
        shards in prop_oneof![Just(2usize), Just(3usize), Just(8usize)],
    ) {
        let (trace, ci) = workload(n_functions, 30, seed);
        let fleet = fleet_from(&sku_picks, 64 * 1024);
        let config = EcoLifeConfig { pso_iters: 2, ..EcoLifeConfig::default() };
        let sim = Simulation::new(&trace, &ci, fleet.clone());

        let sequential = sim.run(&mut EcoLife::new(fleet.clone(), config.clone()));
        let sharded = sim.run_sharded(
            |_| EcoLife::new(fleet.clone(), config.clone()),
            &ShardOptions::new(shards),
        );
        prop_assert_eq!(comparable(&sharded), comparable(&sequential));
    }

    /// (2) Capacity after reconciliation + (3) carbon closure, under
    /// arbitrary pressure: tiny pools force constant overflow, stale
    /// snapshots, revocations — capacity must still hold at every
    /// reconciliation, and the books must still balance.
    #[test]
    fn pressured_shards_respect_capacity_and_close_the_books(
        seed in 0u64..1_000_000,
        n_functions in 4usize..20,
        sku_picks in prop::collection::vec(0usize..4, 1..4),
        budget_mib in 512u64..6_000,
        shards in 2usize..9,
        period_min in prop_oneof![Just(1u64), Just(5u64)],
    ) {
        let (trace, ci) = workload(n_functions, 45, seed);
        let fleet = fleet_from(&sku_picks, budget_mib);
        let sim = Simulation::new(&trace, &ci, fleet.clone());
        let m = sim.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(shards).with_period_ms(period_min * MINUTE_MS),
        );

        // Capacity invariant at every reconciliation boundary.
        prop_assert_eq!(m.ledger_peak_mib.len(), fleet.len());
        for (peak, node) in m.ledger_peak_mib.iter().zip(fleet.iter()) {
            prop_assert!(
                *peak <= node.keepalive_mem_mib,
                "node {:?}: post-reconciliation occupancy {} exceeds budget {}",
                node.id, peak, node.keepalive_mem_mib
            );
        }

        // Carbon closure: per-node grams sum to the run total, and the
        // keep-alive split stays consistent with the records.
        prop_assert_eq!(m.invocations(), trace.len());
        let by_node = m.carbon_g_by_node();
        let total = m.total_carbon_g();
        prop_assert!(
            (by_node.iter().sum::<f64>() - total).abs() < 1e-6 * total.max(1.0),
            "per-node carbon {:?} does not sum to total {}", by_node, total
        );
        let ka_by_node: f64 = m.keepalive_g_by_node.iter().sum();
        let ka_records = m.total_keepalive_carbon_g();
        prop_assert!(
            (ka_by_node - ka_records).abs() < 1e-6 * ka_records.max(1.0),
            "hosted keep-alive {} vs attributed {}", ka_by_node, ka_records
        );
    }

    /// Shard assignment is a pure function of the id — the partition the
    /// whole design rests on.
    #[test]
    fn shard_partition_is_total_and_stable(f in 0u32..100_000, shards in 1usize..64) {
        let s = shard_of(FunctionId(f), shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_of(FunctionId(f), shards));
    }
}

/// The production-scale lockdown: a >10⁶-invocation synthetic workload
/// replayed sequentially and over 8 shards must agree record for record
/// (roomy pools), with the sharded path additionally pinned across
/// worker-thread counts. Debug builds skip it (minutes of unoptimized
/// simulation); the `test-release` CI job runs it.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "million-invocation replay; run under --release"
)]
fn million_invocation_sharded_replay_matches_sequential() {
    let trace = SynthTraceConfig::million(3).generate_scaled(&WorkloadCatalog::sebs());
    assert!(trace.len() >= 1_000_000, "only {} invocations", trace.len());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, 3);
    // Budget above the whole catalog's worst-case resident set (6k
    // functions × ≤5 GiB): the run must stay overflow-free by
    // construction, since this test pins the *exact*-equality regime.
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(32_000_000);
    let sim = Simulation::new(&trace, &ci, fleet.clone());

    let mut fixed = FixedPolicy::pinned(fleet.newest(), 10);
    let sequential = sim.run(&mut fixed);
    assert_eq!(
        (sequential.transfers, sequential.evicted_functions),
        (0, 0),
        "pools sized to keep the million-invocation run overflow-free"
    );

    let run = |threads: usize| {
        sim.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(8).with_threads(threads),
        )
    };
    let sharded = run(1);
    assert_eq!(sharded.reconcile_revocations, 0);
    assert_eq!(comparable(&sharded), comparable(&sequential));
    assert_eq!(comparable(&run(4)), comparable(&sharded));
}

/root/repo/target/debug/deps/ecolife_hw-7ea06b9376b0f9a5.d: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs Cargo.toml

/root/repo/target/debug/deps/libecolife_hw-7ea06b9376b0f9a5.rmeta: crates/hw/src/lib.rs crates/hw/src/cpu.rs crates/hw/src/dram.rs crates/hw/src/fleet.rs crates/hw/src/node.rs crates/hw/src/pair.rs crates/hw/src/perf.rs crates/hw/src/power.rs crates/hw/src/skus.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/cpu.rs:
crates/hw/src/dram.rs:
crates/hw/src/fleet.rs:
crates/hw/src/node.rs:
crates/hw/src/pair.rs:
crates/hw/src/perf.rs:
crates/hw/src/power.rs:
crates/hw/src/skus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

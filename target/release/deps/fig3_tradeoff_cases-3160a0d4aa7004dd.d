/root/repo/target/release/deps/fig3_tradeoff_cases-3160a0d4aa7004dd.d: crates/bench/benches/fig3_tradeoff_cases.rs

/root/repo/target/release/deps/fig3_tradeoff_cases-3160a0d4aa7004dd: crates/bench/benches/fig3_tradeoff_cases.rs

crates/bench/benches/fig3_tradeoff_cases.rs:

//! §IV-C comparison — PSO vs Genetic Algorithm vs Simulated Annealing on
//! the keep-alive scheduling objective.
//!
//! Paper numbers: PSO beats the GA (crossover 0.6, mutation 0.01,
//! population 15) by 17.4% carbon / 7.2% service, and SA (T0=100,
//! T_stop=1, α=0.9) by 6.2% carbon / 13.46% service. We reproduce the
//! comparison on a *dynamic sequence* of real EcoLife objective
//! landscapes (one per invocation of a representative function as CI and
//! arrival statistics evolve) — the regime PSO's exploration/exploitation
//! balance is chosen for — and time one iteration of each optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_carbon::{CarbonIntensityTrace, CarbonModel, Region};
use ecolife_core::CostModel;
use ecolife_hw::{skus, Generation};
use ecolife_pso::space::decode;
use ecolife_pso::{
    GaConfig, GeneticAlgorithm, Optimizer, Pso, PsoConfig, SaConfig, SearchSpace,
    SimulatedAnnealing,
};
use ecolife_trace::WorkloadCatalog;
use std::hint::black_box;

/// The evolving per-invocation objective for one representative function.
struct LandscapeSequence {
    cost: CostModel,
    ci: CarbonIntensityTrace,
    profile: ecolife_trace::FunctionProfile,
}

impl LandscapeSequence {
    fn new() -> Self {
        let catalog = WorkloadCatalog::sebs();
        let (_, profile) = catalog.by_name("220.video-processing").unwrap();
        LandscapeSequence {
            cost: CostModel::new(
                skus::pair_a(),
                CarbonModel::default(),
                0.5,
                0.5,
                50,
                600_000,
            ),
            ci: CarbonIntensityTrace::synthetic(Region::Caiso, 1_440, 77),
            profile: profile.clone(),
        }
    }

    /// Objective at simulated minute `t_min` with warm-probability drift
    /// (the function's rhythm slowly changes over the day).
    fn fitness_at(&self, t_min: usize) -> impl Fn(&[f64]) -> f64 + '_ {
        let ci = self.cost.uniform_ci(self.ci.at(t_min as u64 * 60_000));
        // Arrival rhythm drifts: p(warm | k) saturates faster early in
        // the day, slower later.
        let rate_scale = 1.0 + (t_min as f64 / 240.0).sin() * 0.6;
        move |x: &[f64]| {
            let l = if decode::location_is_new(x[0]) {
                Generation::New
            } else {
                Generation::Old
            };
            let idx = decode::period_index(x[1], 11);
            let k_ms = idx as u64 * 60_000;
            let mean_gap_ms = 150_000.0 * rate_scale;
            let p_warm = 1.0 - (-(k_ms as f64) / mean_gap_ms).exp();
            let resident = mean_gap_ms.min(k_ms as f64);
            self.cost
                .expected_objective(&self.profile, l, k_ms, p_warm, resident, &ci, None)
        }
    }

    /// Run an optimizer through the day: 96 landscape changes (every 15
    /// simulated minutes), 8 iterations each; return the mean achieved
    /// objective across landscapes.
    fn run_through<O: Optimizer>(&self, opt: &mut O) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for step in 0..96 {
            let f = self.fitness_at(step * 15);
            for _ in 0..8 {
                opt.step(&f);
            }
            total += f(opt.best_position());
            n += 1;
        }
        total / n as f64
    }
}

fn print_comparison() {
    let seq = LandscapeSequence::new();
    let space = SearchSpace::ecolife(11);

    let pso_score = seq.run_through(&mut Pso::new(space.clone(), PsoConfig::default()));
    let ga_score = seq.run_through(&mut GeneticAlgorithm::new(
        space.clone(),
        GaConfig::default(),
    ));
    let sa_score = seq.run_through(&mut SimulatedAnnealing::new(space, SaConfig::default()));

    println!("\n=== §IV-C: optimizer comparison on the dynamic keep-alive objective ===");
    println!("mean achieved objective (lower is better):");
    println!("  PSO {pso_score:.5}");
    println!(
        "  GA  {ga_score:.5}  (PSO better by {:+.1}%; paper: 17.4% carbon / 7.2% service)",
        100.0 * (ga_score / pso_score - 1.0)
    );
    println!(
        "  SA  {sa_score:.5}  (PSO better by {:+.1}%; paper: 6.2% carbon / 13.46% service)\n",
        100.0 * (sa_score / pso_score - 1.0)
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let seq = LandscapeSequence::new();
    let space = SearchSpace::ecolife(11);
    let f = seq.fitness_at(0);

    c.bench_function("optimizers/pso_step", |b| {
        let mut pso = Pso::new(space.clone(), PsoConfig::default());
        b.iter(|| {
            pso.step(&f);
            black_box(pso.best_fitness())
        })
    });
    c.bench_function("optimizers/ga_step", |b| {
        let mut ga = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        b.iter(|| {
            ga.step(&f);
            black_box(ga.best_fitness())
        })
    });
    c.bench_function("optimizers/sa_step", |b| {
        let mut sa = SimulatedAnnealing::new(space.clone(), SaConfig::default());
        b.iter(|| {
            sa.step(&f);
            black_box(sa.best_fitness())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

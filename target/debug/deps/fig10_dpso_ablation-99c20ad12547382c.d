/root/repo/target/debug/deps/fig10_dpso_ablation-99c20ad12547382c.d: crates/bench/benches/fig10_dpso_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_dpso_ablation-99c20ad12547382c.rmeta: crates/bench/benches/fig10_dpso_ablation.rs Cargo.toml

crates/bench/benches/fig10_dpso_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

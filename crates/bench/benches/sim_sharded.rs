//! Sharded replay engine throughput: 1 vs N shards on a
//! million-invocation synthetic trace.
//!
//! The simulator is the inner loop of everything above it (every planner
//! fitness evaluation is a replay), so this bench tracks the one number
//! the sharding tentpole exists for: wall-clock over a ≥10⁶-invocation
//! workload, sequential vs `Simulation::run_sharded` at 8 shards — for
//! the bare engine (fixed policy) and for the full EcoLife scheduler
//! (per-function DPSO, the realistic hot path). Headline numbers land in
//! `BENCH_sim.json` at the repo root, alongside the host's CPU budget:
//! shards only buy wall-clock on real cores, so the recorded
//! `host_cpus` is what any speedup claim must be read against (a 1-CPU
//! container measures parity; the sharded path's work distribution and
//! determinism are locked by the test suite either way).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecolife_carbon::{CarbonIntensityTrace, Region};
use ecolife_core::{EcoLife, EcoLifeConfig, FixedPolicy};
use ecolife_hw::{skus, Fleet};
use ecolife_sim::{ShardOptions, Simulation};
use ecolife_trace::{SynthTraceConfig, Trace, WorkloadCatalog};
use std::time::Instant;

/// The benchmark's shard fan-out width (and target worker count).
const SHARDS: usize = 8;

fn million_setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig::million(41).generate_scaled(&WorkloadCatalog::sebs());
    assert!(trace.len() >= 1_000_000, "only {} invocations", trace.len());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, 41);
    // Pools sized so the million-invocation run never overflows: the
    // bench measures replay throughput, not eviction churn (the
    // contention path has its own adversarial + property tests).
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(32_000_000);
    (trace, ci, fleet)
}

fn wall_ms<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn write_json() {
    let (trace, ci, fleet) = million_setup();
    let sim = Simulation::new(&trace, &ci, fleet.clone());
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = SHARDS.min(host_cpus);

    // Bare engine (fixed 10-minute policy): replay overhead only.
    let engine_seq_ms = wall_ms(|| {
        let mut s = FixedPolicy::pinned(fleet.newest(), 10);
        black_box(sim.run(&mut s));
    });
    let engine_sharded_ms = wall_ms(|| {
        black_box(sim.run_sharded(
            |_| FixedPolicy::pinned(fleet.newest(), 10),
            &ShardOptions::new(SHARDS).with_threads(threads),
        ));
    });

    // Full EcoLife (per-function DPSO per decision): the realistic
    // scheduler-bound hot path the planner's inner loop pays for.
    let eco = || EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let eco_seq_ms = wall_ms(|| {
        let mut s = eco();
        black_box(sim.run(&mut s));
    });
    let eco_sharded_ms = wall_ms(|| {
        black_box(sim.run_sharded(|_| eco(), &ShardOptions::new(SHARDS).with_threads(threads)));
    });

    let json = format!(
        "{{\n  \"bench\": \"sim_sharded\",\n  \"trace_invocations\": {},\n  \"trace_functions\": {},\n  \"fleet_nodes\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \"host_cpus\": {},\n  \"engine_sequential_ms\": {:.0},\n  \"engine_sharded_ms\": {:.0},\n  \"engine_speedup\": {:.2},\n  \"ecolife_sequential_ms\": {:.0},\n  \"ecolife_sharded_ms\": {:.0},\n  \"ecolife_speedup\": {:.2},\n  \"note\": \"speedup = sequential/sharded wall-clock on this host; shards are perfectly partitioned, so expected speedup approaches min(shards, cores) — on a 1-CPU host this records parity by construction\"\n}}\n",
        trace.len(),
        trace.catalog().len(),
        fleet.len(),
        SHARDS,
        threads,
        host_cpus,
        engine_seq_ms,
        engine_sharded_ms,
        engine_seq_ms / engine_sharded_ms.max(1.0),
        eco_seq_ms,
        eco_sharded_ms,
        eco_seq_ms / eco_sharded_ms.max(1.0),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}:\n{json}");
}

fn bench(c: &mut Criterion) {
    write_json();

    // Timed loop on a ~100k-invocation slice of the same distribution so
    // `cargo bench sim_sharded` stays interactive.
    let trace = SynthTraceConfig {
        n_functions: 600,
        duration_min: 600,
        seed: 41,
        ..Default::default()
    }
    .generate_scaled(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 630, 41);
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(512 * 1024);
    let sim = Simulation::new(&trace, &ci, fleet.clone());

    c.bench_function("sim/engine_sequential_100k", |b| {
        b.iter(|| {
            let mut s = FixedPolicy::pinned(fleet.newest(), 10);
            black_box(sim.run(&mut s))
        })
    });
    c.bench_function("sim/engine_sharded8_100k", |b| {
        b.iter(|| {
            black_box(sim.run_sharded(
                |_| FixedPolicy::pinned(fleet.newest(), 10),
                &ShardOptions::new(SHARDS),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench
}
criterion_main!(benches);

//! Thread-pool fan-out for independent jobs.
//!
//! This lives in `ecolife-sim` (the lowest crate that fans work out) so
//! both the sharded replay engine and the experiment/planner layers above
//! share one implementation; `ecolife_core::runner` re-exports it for the
//! original callers.
//!
//! Two layers:
//!
//! * [`WorkerPool`] — a persistent set of worker threads executing
//!   *batches* of indexed jobs with a barrier between batches. The
//!   sharded replay engine keeps one pool alive across its per-period
//!   fan-outs (an hours-long trace has hundreds of reconciliation
//!   periods; spawning a fresh scoped-thread set per period was pure
//!   overhead).
//! * [`parallel_map`] / [`parallel_map_threads`] — the one-shot
//!   fan-out-and-collect API, now a thin wrapper that builds a transient
//!   pool for the single batch.
//!
//! Work distribution never affects results: workers claim job *indices*
//! from a shared atomic counter, and each job reads/writes only its own
//! slot — which worker runs which job is scheduling, not semantics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Fan independent jobs out over worker threads and collect results in
/// input order, using [`std::thread::available_parallelism`] workers. See
/// [`parallel_map_threads`] for the explicit-thread-count variant
/// (determinism tests force `threads ∈ {1, 2, 4, …}` through it).
///
/// At most `available_parallelism` workers are spawned — a sweep of
/// hundreds of configurations never spawns one OS thread per job — and
/// they pull from a shared index counter, so a few expensive
/// configurations cannot serialize behind each other while the other
/// workers idle. The per-job synchronization cost is irrelevant next to a
/// simulation run.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(default_threads(), inputs, f)
}

/// The thread count [`parallel_map`] inherits when none is forced.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// [`parallel_map`] with an explicit worker-thread override.
///
/// Results are identical at any `threads` value (workers only decide
/// *where* a job runs, never *what* it computes), which is exactly what
/// the determinism suite asserts by forcing 1, 2, and 4 workers over the
/// same inputs instead of inheriting the machine's parallelism.
pub fn parallel_map_threads<T, R, F>(threads: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut pool = WorkerPool::new(threads.min(n));
    pool.run_map(inputs, f)
}

/// Lifetime-erased pointer to a batch's job closure. Soundness rests on
/// the [`WorkerPool::run`] barrier: the pointer is installed when a batch
/// starts and every worker has finished using it before `run` returns,
/// so the borrow it was erased from is alive for every dereference.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are the
// point) and the barrier protocol above bounds its lifetime.
unsafe impl Send for JobPtr {}

/// State shared between the pool's owner and its workers.
struct PoolShared {
    state: Mutex<BatchState>,
    /// Owner → workers: a new batch was posted (or shutdown).
    work_ready: Condvar,
    /// Workers → owner: the last worker finished the batch.
    work_done: Condvar,
    /// Next unclaimed job index of the current batch.
    next: AtomicUsize,
    /// The first panic payload of the current batch, re-raised by the
    /// owner so the original assertion message/location survives (the
    /// scoped-thread implementation this pool replaced propagated it
    /// intact too).
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct BatchState {
    /// Bumped per batch; workers wait for it to move.
    epoch: u64,
    n_jobs: usize,
    job: Option<JobPtr>,
    /// Workers still working on (or not yet done observing) the current
    /// batch; the owner waits for 0.
    active_workers: usize,
    shutdown: bool,
}

/// A persistent pool of worker threads executing batches of indexed jobs.
///
/// ```
/// # use ecolife_sim::parallel::WorkerPool;
/// let mut pool = WorkerPool::new(4);
/// let mut out = vec![0u64; 16];
/// for round in 0..3u64 {
///     // Reuses the same OS threads every round; `run_map` blocks until
///     // the whole batch completed (the per-period barrier).
///     out = pool.run_map(out, |v| v + round);
/// }
/// assert!(out.iter().all(|&v| v == 3));
/// ```
///
/// Threads are spawned once in [`WorkerPool::new`], parked on a condvar
/// between batches, and joined on drop. Batches run through
/// [`WorkerPool::run`] (indexed jobs) or [`WorkerPool::run_map`]
/// (move-in/move-out values); both block until every job completed, so
/// job closures may freely borrow the caller's stack.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` persistent workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(BatchState {
                epoch: 0,
                n_jobs: 0,
                job: None,
                active_workers: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            next: AtomicUsize::new(0),
            panic_payload: Mutex::new(None),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Execute one batch: `job(i)` for every `i in 0..n_jobs`, distributed
    /// over the workers, returning when all completed. If a job panicked,
    /// the first payload is re-raised here (after the batch drains), so
    /// the original assertion message and location survive.
    pub fn run(&mut self, n_jobs: usize, job: &(dyn Fn(usize) + Sync)) {
        // SAFETY: `run` blocks until every worker reported done for this
        // batch and clears the pointer before returning, so the erased
        // borrow outlives every use (same layout: both are fat pointers
        // to the same trait object, only the lifetime is erased).
        let ptr = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), JobPtr>(job) };
        let mut st = self.shared.state.lock().expect("pool state");
        debug_assert_eq!(st.active_workers, 0, "batches never overlap");
        self.shared.next.store(0, Ordering::Relaxed);
        *self.shared.panic_payload.lock().expect("panic slot") = None;
        st.job = Some(ptr);
        st.n_jobs = n_jobs;
        st.active_workers = self.workers.len();
        st.epoch += 1;
        self.shared.work_ready.notify_all();
        while st.active_workers > 0 {
            st = self.shared.work_done.wait(st).expect("pool state");
        }
        st.job = None;
        drop(st);
        // Take the payload in its own statement: an `if let` scrutinee
        // would keep the guard alive across `resume_unwind`, poisoning
        // the mutex for the pool's next batch.
        let payload = self.shared.panic_payload.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Run `f` over every input (workers claim inputs from a shared
    /// counter) and collect the results in input order.
    pub fn run_map<T, R, F>(&mut self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = inputs.len();
        let slots: Vec<Mutex<Option<T>>> =
            inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.run(n, &|i: usize| {
            let input = slots[i]
                .lock()
                .expect("input slot")
                .take()
                .expect("each index claimed once");
            let result = f(input);
            *out[i].lock().expect("output slot") = Some(result);
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("workers joined")
                    .expect("batch completed every job")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        // Park until a new batch (or shutdown).
        let (job, n_jobs) = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.work_ready.wait(st).expect("pool state");
            }
            seen_epoch = st.epoch;
            (st.job.expect("posted batch carries a job"), st.n_jobs)
        };
        // Claim-and-run until the batch is exhausted.
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            // SAFETY: see `JobPtr` — the owner blocks in `run` until this
            // batch completes, keeping the erased borrow alive.
            let f = unsafe { &*job.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                // Keep the first payload for the owner to re-raise.
                let mut slot = shared.panic_payload.lock().expect("panic slot");
                slot.get_or_insert(payload);
                // Abandon the rest of the batch: later claims see an
                // exhausted counter. (`store(n_jobs)`, not `usize::MAX`,
                // so concurrent `fetch_add`s cannot wrap.)
                shared.next.store(n_jobs, Ordering::Relaxed);
            }
        }
        let mut st = shared.state.lock().expect("pool state");
        st.active_workers -= 1;
        if st.active_workers == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Sharded [`Trace::next_arrival_gaps`](ecolife_trace::Trace::next_arrival_gaps):
/// the oracle-family future-knowledge precompute, fanned out over
/// function buckets with [`parallel_map`] and scattered back into index
/// order.
///
/// One sequential pass partitions invocation indices by splitmix-hashed
/// function id; each bucket then runs the reverse gap scan over *its own
/// index list only* (per-function chains never cross buckets), so total
/// work stays O(n) regardless of bucket count, with the scan half
/// parallel. The merged result is bit-identical to the sequential scan
/// at any worker count — this is purely a wall-clock play for
/// 10⁶–10⁷-invocation traces, where the precompute is a noticeable
/// slice of `BruteForce::prepare`. Small traces (and single-core hosts)
/// take the sequential path directly.
pub fn next_arrival_gaps_parallel(trace: &ecolife_trace::Trace) -> Vec<Option<u64>> {
    match next_arrival_gaps_strategy(trace) {
        GapsStrategy::Sequential => trace.next_arrival_gaps(),
        GapsStrategy::Bucketed { n_buckets } => next_arrival_gaps_bucketed(trace, n_buckets),
    }
}

/// Which path [`next_arrival_gaps_parallel`] takes for `trace` on this
/// host. Exposed so benchmarks can *report* the path they actually
/// measured: on a single-core host the bucketed partition/merge is pure
/// overhead (≈3× slower than the scan at 10⁶ invocations), and a bench
/// that silently forces it publishes a number no caller would ever see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapsStrategy {
    /// The plain sequential reverse scan — chosen when only one worker
    /// thread is available or the trace is too small for the fan-out to
    /// pay for its partition pass.
    Sequential,
    /// Partition by splitmix-hashed function id into `n_buckets`, scan
    /// in parallel, scatter-merge.
    Bucketed { n_buckets: usize },
}

impl GapsStrategy {
    /// Short label for benchmark JSON.
    pub fn label(&self) -> &'static str {
        match self {
            GapsStrategy::Sequential => "sequential",
            GapsStrategy::Bucketed { .. } => "bucketed",
        }
    }
}

/// The strategy decision behind [`next_arrival_gaps_parallel`].
pub fn next_arrival_gaps_strategy(trace: &ecolife_trace::Trace) -> GapsStrategy {
    let threads = default_threads();
    if threads == 1 || trace.len() < 1 << 16 {
        return GapsStrategy::Sequential;
    }
    // One bucket per worker: the splitmix spread below gives buckets
    // near-uniform function mass, so oversubscribing buys nothing.
    GapsStrategy::Bucketed {
        n_buckets: threads.min(trace.catalog().len().max(1)),
    }
}

/// The bucketed fan-out behind [`next_arrival_gaps_parallel`], with an
/// explicit bucket count — public so tests and the CI smoke bench can
/// force the partition/merge path regardless of host parallelism or
/// trace size (the automatic entry point falls back to the sequential
/// scan below its profitability threshold, which would leave this path
/// untested on small inputs).
pub fn next_arrival_gaps_bucketed(
    trace: &ecolife_trace::Trace,
    n_buckets: usize,
) -> Vec<Option<u64>> {
    if n_buckets <= 1 {
        // One bucket is the sequential scan with a partition pass and a
        // scatter-merge bolted on; skip straight to the scan (the result
        // is bit-identical either way).
        return trace.next_arrival_gaps();
    }
    let invocations = trace.invocations();
    let n_functions = trace.catalog().len();

    // Sequential partition pass: each bucket's invocation indices, in
    // time order. Raw ids are dense, so hash before the modulo (the
    // `shard_of` idiom) — otherwise hot functions congruent mod
    // n_buckets would pile onto one bucket.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_buckets];
    for (i, inv) in invocations.iter().enumerate() {
        let spread = ecolife_trace::splitmix64(inv.func.as_usize() as u64);
        buckets[(spread % n_buckets as u64) as usize].push(i);
    }

    // Parallel reverse scan per bucket, over its own indices only.
    let parts = parallel_map(buckets, |indices| {
        let mut next_seen: Vec<Option<u64>> = vec![None; n_functions];
        let mut part: Vec<(usize, u64)> = Vec::new();
        for &i in indices.iter().rev() {
            let inv = &invocations[i];
            let slot = &mut next_seen[inv.func.as_usize()];
            if let Some(t) = *slot {
                part.push((i, t - inv.t_ms));
            }
            *slot = Some(inv.t_ms);
        }
        part
    });

    let mut gaps = vec![None; trace.len()];
    for part in parts {
        for (i, gap) in part {
            gaps[i] = Some(gap);
        }
    }
    gaps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..32).collect(), |i: i32| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_oversized_batches() {
        assert_eq!(parallel_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        // Far more jobs than cores: with one-thread-per-job this would
        // spawn 2048 OS threads; the pool bounds it at the worker count.
        let n = 2048u64;
        let out = parallel_map((0..n).collect(), |i: u64| i + 1);
        assert_eq!(out.len(), n as usize);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn forced_thread_counts_agree() {
        let inputs: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = inputs.iter().map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 4, 16] {
            let out = parallel_map_threads(threads, inputs.clone(), |i| i * 7 + 1);
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        parallel_map_threads(0, vec![1], |i: i32| i);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_thread_pool_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The run_sharded shape: one pool, hundreds of barrier-separated
        // batches, state threaded through run_map.
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let mut values: Vec<u64> = (0..17).collect();
        for round in 0..200u64 {
            values = pool.run_map(values, |v| v + round);
        }
        let offset: u64 = (0..200).sum();
        assert_eq!(
            values,
            (0..17).map(|i| i + offset).collect::<Vec<_>>(),
            "every batch must complete before the next starts"
        );
    }

    #[test]
    fn pool_batches_may_borrow_the_stack() {
        let mut pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..64).collect();
        let sum = std::sync::atomic::AtomicU64::new(0);
        pool.run(data.len(), &|i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (0..64).sum::<u64>());
    }

    #[test]
    fn pool_runs_empty_batches() {
        let mut pool = WorkerPool::new(2);
        pool.run(0, &|_| unreachable!("no jobs to claim"));
        let out: Vec<u32> = pool.run_map(Vec::<u32>::new(), |v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn bucketed_gaps_match_the_sequential_scan() {
        use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};
        let trace = SynthTraceConfig {
            n_functions: 64,
            duration_min: 120,
            ..SynthTraceConfig::small(13)
        }
        .generate(&WorkloadCatalog::sebs());
        let sequential = trace.next_arrival_gaps();
        for n_buckets in [1usize, 2, 5, 16] {
            assert_eq!(
                next_arrival_gaps_bucketed(&trace, n_buckets),
                sequential,
                "n_buckets = {n_buckets}"
            );
        }
        // The public entry point agrees regardless of which path it takes.
        assert_eq!(next_arrival_gaps_parallel(&trace), sequential);
    }

    #[test]
    fn pool_propagates_job_panics() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        // The *original* payload reaches the caller — a shard assertion
        // failure must surface its message, not a generic wrapper.
        let payload = caught.expect_err("job panic must propagate to the caller");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool remains usable for the next batch.
        let out = pool.run_map(vec![1u32, 2, 3], |v| v * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}

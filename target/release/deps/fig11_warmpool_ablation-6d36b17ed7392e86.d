/root/repo/target/release/deps/fig11_warmpool_ablation-6d36b17ed7392e86.d: crates/bench/benches/fig11_warmpool_ablation.rs

/root/repo/target/release/deps/fig11_warmpool_ablation-6d36b17ed7392e86: crates/bench/benches/fig11_warmpool_ablation.rs

crates/bench/benches/fig11_warmpool_ablation.rs:

//! Fig. 9 — EcoLife vs the single-generation fixed policies (New-Only /
//! Old-Only with the 10-minute OpenWhisk keep-alive).
//!
//! Paper shape: EcoLife saves service time against Old-Only (12.7% in
//! the paper) and carbon against New-Only (8.6%), sitting closest to the
//! Oracle because it mixes generations.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::{fmt_placement, EvalSetup};
use std::hint::black_box;

fn print_fig9() {
    let setup = EvalSetup::standard();
    let summaries = vec![
        setup.run(&mut setup.oracle()),
        setup.run(&mut setup.ecolife()),
        setup.run(&mut setup.new_only()),
        setup.run(&mut setup.old_only()),
    ];
    println!("\n=== Fig. 9: EcoLife vs single-generation fixed policies ===");
    for c in setup.placements(&summaries) {
        println!("{}", fmt_placement(&c));
    }
    let eco = &summaries[1];
    let new_only = &summaries[2];
    let old_only = &summaries[3];
    println!(
        "\nEcoLife saves {:.1}% service time vs Old-Only (paper: 12.7%)",
        100.0 * (1.0 - eco.total_service_ms as f64 / old_only.total_service_ms as f64)
    );
    println!(
        "EcoLife saves {:.1}% carbon vs New-Only (paper: 8.6%)\n",
        100.0 * (1.0 - eco.total_carbon_g / new_only.total_carbon_g)
    );
}

fn bench(c: &mut Criterion) {
    print_fig9();
    let setup = EvalSetup::quick();
    c.bench_function("fig9/new_only_run_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.new_only())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

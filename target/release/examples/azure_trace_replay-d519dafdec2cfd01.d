/root/repo/target/release/examples/azure_trace_replay-d519dafdec2cfd01.d: examples/azure_trace_replay.rs

/root/repo/target/release/examples/azure_trace_replay-d519dafdec2cfd01: examples/azure_trace_replay.rs

examples/azure_trace_replay.rs:

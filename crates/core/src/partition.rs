//! Partitioned scheduling: isolated sub-fleets inside one fleet run.
//!
//! The Fig. 14 robustness study replays the same workload against five
//! grid regions. With per-node regions that is no longer five separate
//! simulations: build one fleet as the concatenation of per-region
//! sub-fleets ([`ecolife_hw::Fleet::concat`]), merge the per-region
//! workloads into one trace (function ids offset per partition), and
//! run a [`PartitionedScheduler`] — one inner scheduler per partition,
//! each seeing *exactly* the context a standalone single-region run
//! would show it. Because the engine's carbon accounting already reads
//! each node's own region series, the records of partition `p` are
//! bit-identical to the standalone run of `p`'s workload on `p`'s
//! sub-fleet (the equivalence is pinned by `tests/regions.rs`).
//!
//! Translation contract: the wrapper maps function ids
//! (`global = local + func_base[p]`), node ids
//! (`global = local + node_base[p]`), and CI (each partition's own
//! series) in both directions. Two caveats, both checked or documented:
//!
//! * inner schedulers must not read live cluster state inside
//!   `decide`/`observe` (EcoLife, the brute-force family, and the fixed
//!   policies do not) — the translated context lends an empty stub
//!   cluster there; overflow handling *does* get a faithful local
//!   clone of the partition's pools;
//! * the local `index` handed to inner schedulers is recovered by
//!   position in the partition's trace, which is exact for
//!   distinct `(function, arrival)` pairs (duplicated simultaneous
//!   arrivals of one function resolve to the first position — their
//!   future gaps are identical, so oracle-family baselines are
//!   unaffected).

use crate::runner::RunSummary;
use ecolife_carbon::{CarbonIntensityTrace, CiProvider};
use ecolife_hw::{Fleet, NodeId, Region};
use ecolife_sim::{
    Cluster, Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, RunMetrics,
    Scheduler,
};
use ecolife_trace::{FunctionId, Invocation, Trace, WorkloadCatalog};

/// One isolated slice of a partitioned run: a sub-fleet, the CI series
/// its nodes read, its own workload, and the scheduler driving it.
pub struct Partition<S> {
    /// The local sub-fleet (node ids `0..fleet.len()`); concatenated in
    /// partition order to form the global fleet.
    pub fleet: Fleet,
    /// The CI series every node of this partition reads (for a
    /// per-region partition: that region's feed).
    pub ci: CarbonIntensityTrace,
    /// The partition's workload (local function ids `0..catalog.len()`).
    pub trace: Trace,
    /// The inner scheduler, operating entirely in local ids.
    pub scheduler: S,
}

struct Part<S> {
    fleet: Fleet,
    ci: CarbonIntensityTrace,
    trace: Trace,
    scheduler: S,
    /// Empty cluster lent to translated `decide`/`observe` contexts.
    stub: Cluster,
}

/// Routes every invocation to its partition's inner scheduler,
/// translating contexts and decisions between global and local ids.
pub struct PartitionedScheduler<S> {
    parts: Vec<Part<S>>,
    /// First global function id of each partition (cumulative catalog
    /// sizes), plus the total as a sentinel.
    func_base: Vec<u32>,
    /// First global node id of each partition (cumulative fleet sizes).
    node_base: Vec<u32>,
}

impl<S: Scheduler> PartitionedScheduler<S> {
    /// Assemble a partitioned scheduler. Global ids follow partition
    /// order: partition `p` owns function ids
    /// `func_base[p]..func_base[p+1]` and node ids
    /// `node_base[p]..node_base[p]+fleet.len()`.
    pub fn new(parts: Vec<Partition<S>>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        let mut func_base = vec![0u32];
        let mut node_base = vec![0u32];
        for p in &parts {
            func_base.push(func_base.last().unwrap() + p.trace.catalog().len() as u32);
            node_base.push(node_base.last().unwrap() + p.fleet.len() as u32);
        }
        PartitionedScheduler {
            parts: parts
                .into_iter()
                .map(|p| Part {
                    stub: Cluster::new(p.fleet.clone()),
                    fleet: p.fleet,
                    ci: p.ci,
                    trace: p.trace,
                    scheduler: p.scheduler,
                })
                .collect(),
            func_base,
            node_base,
        }
    }

    /// The merged trace of every partition's workload: catalogs
    /// concatenated (function ids offset by partition), invocations
    /// merged in time order. Run this against [`Self::merged_fleet`].
    pub fn merged_trace(&self) -> Trace {
        let mut profiles = Vec::new();
        let mut invocations = Vec::new();
        for (p, part) in self.parts.iter().enumerate() {
            for (_, profile) in part.trace.catalog().iter() {
                profiles.push(profile.clone());
            }
            for inv in part.trace.invocations() {
                invocations.push(Invocation {
                    func: FunctionId(inv.func.0 + self.func_base[p]),
                    t_ms: inv.t_ms,
                });
            }
        }
        Trace::new(WorkloadCatalog::new(profiles), invocations)
    }

    /// The concatenated global fleet (node ids renumbered in partition
    /// order, region tags preserved).
    pub fn merged_fleet(&self) -> Fleet {
        let fleets: Vec<Fleet> = self.parts.iter().map(|p| p.fleet.clone()).collect();
        Fleet::concat(&fleets)
    }

    /// Split whole-run metrics back into per-partition summaries (one
    /// [`RunSummary`] per partition, named by the inner scheduler) by
    /// re-aggregating each partition's records.
    ///
    /// Only record-derived quantities (service, carbon, energy, warm
    /// rate) and the partition's `keepalive_g_by_node` slice are split;
    /// run-level counters the engine aggregates without partition
    /// attribution — `evicted_functions`, `transfers`,
    /// `decision_overhead_ns` — are reported as zero here and should be
    /// read off the whole-run [`RunMetrics`] instead.
    pub fn split_summaries(&self, metrics: &RunMetrics) -> Vec<RunSummary> {
        (0..self.parts.len())
            .map(|p| {
                let lo = self.func_base[p];
                let hi = self.func_base[p + 1];
                let node_lo = self.node_base[p] as usize;
                let node_hi = node_lo + self.parts[p].fleet.len();
                let mut slice = RunMetrics {
                    records: metrics
                        .records
                        .iter()
                        .filter(|r| (lo..hi).contains(&r.func.0))
                        .copied()
                        .collect(),
                    ..RunMetrics::default()
                };
                slice.keepalive_g_by_node = metrics
                    .keepalive_g_by_node
                    .get(node_lo..node_hi.min(metrics.keepalive_g_by_node.len()))
                    .unwrap_or(&[])
                    .to_vec();
                RunSummary::from_metrics(self.parts[p].scheduler.name(), &slice)
            })
            .collect()
    }

    /// The region each partition's sub-fleet spans (first node's tag) —
    /// labels for per-region reporting.
    pub fn partition_regions(&self) -> Vec<Region> {
        self.parts
            .iter()
            .map(|p| p.fleet.node(NodeId(0)).region)
            .collect()
    }

    fn partition_of_func(&self, func: FunctionId) -> usize {
        debug_assert!(func.0 < *self.func_base.last().unwrap());
        self.func_base.partition_point(|&base| base <= func.0) - 1
    }

    fn partition_of_node(&self, node: NodeId) -> usize {
        self.node_base.partition_point(|&base| base <= node.0) - 1
    }
}

impl<S: Scheduler> Scheduler for PartitionedScheduler<S> {
    fn name(&self) -> &'static str {
        "Partitioned"
    }

    fn prepare(&mut self, _trace: &Trace) {
        // Each inner scheduler prepares on its *own* workload — the view
        // a standalone single-partition run would hand it.
        for part in &mut self.parts {
            let Part {
                trace, scheduler, ..
            } = part;
            scheduler.prepare(trace);
        }
    }

    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        let p = self.partition_of_func(ctx.func);
        let func_base = self.func_base[p];
        let node_base = self.node_base[p];
        let part = &mut self.parts[p];
        let Part {
            fleet,
            ci,
            trace,
            scheduler,
            stub,
        } = part;

        let local_func = FunctionId(ctx.func.0 - func_base);
        let provider = CiProvider::shared(ci, fleet);
        let lctx = InvocationCtx {
            index: local_index(trace, ctx.t_ms, local_func),
            func: local_func,
            profile: ctx.profile,
            t_ms: ctx.t_ms,
            warm_at: ctx.warm_at.and_then(|g| {
                let local = g.0.checked_sub(node_base)?;
                ((local as usize) < fleet.len()).then_some(NodeId(local))
            }),
            ci: &provider,
            cluster: stub,
        };
        let d = scheduler.decide(&lctx);
        Decision {
            exec: NodeId(d.exec.0 + node_base),
            keepalive: d.keepalive.map(|ka| KeepAliveChoice {
                location: NodeId(ka.location.0 + node_base),
                duration_ms: ka.duration_ms,
            }),
        }
    }

    fn observe(&mut self, ctx: &InvocationCtx<'_>, service_ms: u64, warm: bool) {
        let p = self.partition_of_func(ctx.func);
        let func_base = self.func_base[p];
        let node_base = self.node_base[p];
        let Part {
            fleet,
            ci,
            trace,
            scheduler,
            stub,
        } = &mut self.parts[p];
        let local_func = FunctionId(ctx.func.0 - func_base);
        let provider = CiProvider::shared(ci, fleet);
        let lctx = InvocationCtx {
            index: local_index(trace, ctx.t_ms, local_func),
            func: local_func,
            profile: ctx.profile,
            t_ms: ctx.t_ms,
            warm_at: ctx.warm_at.and_then(|g| {
                let local = g.0.checked_sub(node_base)?;
                ((local as usize) < fleet.len()).then_some(NodeId(local))
            }),
            ci: &provider,
            cluster: stub,
        };
        scheduler.observe(&lctx, service_ms, warm);
    }

    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        let p = self.partition_of_node(ctx.location);
        let func_base = self.func_base[p];
        let node_base = self.node_base[p];
        let Part {
            fleet,
            ci,
            scheduler,
            ..
        } = &mut self.parts[p];
        let n_local = fleet.len();

        // A faithful local view of this partition's pools: copy each
        // local node's residents out of the global cluster, translating
        // function ids. Residents outside the partition's id range
        // cannot occur while the translated transfer targets below keep
        // displacements inside the partition.
        let mut local_cluster = Cluster::new(fleet.clone());
        for i in 0..n_local {
            let global = NodeId(node_base + i as u32);
            for c in ctx.cluster.pool(global).iter() {
                let mut c = *c;
                debug_assert!(c.func.0 >= func_base, "foreign container in partition pool");
                c.func = FunctionId(c.func.0 - func_base);
                let _ = local_cluster.pool_mut(NodeId(i as u32)).insert(c);
            }
        }

        let local_location = NodeId(ctx.location.0 - node_base);
        let ci_now = ci.at(ctx.t_ms);
        let lctx = OverflowCtx {
            location: local_location,
            incoming_func: FunctionId(ctx.incoming_func.0 - func_base),
            incoming_memory_mib: ctx.incoming_memory_mib,
            t_ms: ctx.t_ms,
            ci_now,
            ci_by_node: vec![ci_now; n_local],
            cluster: &local_cluster,
        };
        match scheduler.on_pool_overflow(&lctx) {
            OverflowAction::Drop => OverflowAction::Drop,
            OverflowAction::Adjust(mut plan) => {
                for f in &mut plan.displace {
                    f.0 += func_base;
                }
                // Keep displacements inside the partition: translate an
                // explicit ranking, or materialize the partition-local
                // default (every *other partition node* in id order) —
                // the engine's own default would spill across
                // partitions.
                plan.transfer_targets = Some(match plan.transfer_targets {
                    Some(ranked) => ranked
                        .into_iter()
                        .filter(|id| (id.0 as usize) < n_local)
                        .map(|id| NodeId(id.0 + node_base))
                        .collect(),
                    None => (0..n_local as u32)
                        .map(|i| NodeId(i + node_base))
                        .filter(|&id| id != ctx.location)
                        .collect(),
                });
                OverflowAction::Adjust(plan)
            }
        }
    }
}

/// Position of the invocation `(t_ms, func)` in `trace` — the local
/// `index` a standalone run of this partition would report.
fn local_index(trace: &Trace, t_ms: u64, func: FunctionId) -> usize {
    let invs = trace.invocations();
    let start = invs.partition_point(|inv| inv.t_ms < t_ms);
    invs[start..]
        .iter()
        .position(|inv| inv.func == func)
        .map(|off| start + off)
        .unwrap_or(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedPolicy;
    use ecolife_hw::skus;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    fn part(seed: u64, region: Region) -> Partition<FixedPolicy> {
        Partition {
            fleet: skus::fleet_a().with_uniform_region(region),
            ci: CarbonIntensityTrace::synthetic(region, 120, seed),
            trace: SynthTraceConfig::small(seed).generate(&WorkloadCatalog::sebs()),
            scheduler: FixedPolicy::new_only(),
        }
    }

    #[test]
    fn merged_layout_offsets_ids() {
        let sched =
            PartitionedScheduler::new(vec![part(1, Region::Texas), part(2, Region::NewYork)]);
        let fleet = sched.merged_fleet();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.node(NodeId(2)).region, Region::NewYork);
        let trace = sched.merged_trace();
        let n = part(1, Region::Texas).trace.catalog().len();
        assert_eq!(trace.catalog().len(), 2 * n);
        // Every partition-1 function id is offset by one catalog.
        assert!(trace
            .invocations()
            .iter()
            .all(|i| (i.func.0 as usize) < 2 * n));
        assert_eq!(
            sched.partition_regions(),
            vec![Region::Texas, Region::NewYork]
        );
    }

    #[test]
    fn decisions_are_translated_into_the_owning_subfleet() {
        let mut sched =
            PartitionedScheduler::new(vec![part(1, Region::Texas), part(2, Region::NewYork)]);
        let trace = sched.merged_trace();
        let fleet = sched.merged_fleet();
        let ci = CarbonIntensityTrace::constant(300.0, 200);
        let m = ecolife_sim::Simulation::new(&trace, &ci, fleet).run(&mut sched);
        let n = part(1, Region::Texas).trace.catalog().len() as u32;
        for r in &m.records {
            let expected_node = if r.func.0 < n { NodeId(1) } else { NodeId(3) };
            assert_eq!(r.exec_location, expected_node, "func {:?}", r.func);
        }
        // Per-partition summaries cover every record exactly once.
        let summaries = sched.split_summaries(&m);
        assert_eq!(
            summaries.iter().map(|s| s.invocations).sum::<usize>(),
            m.invocations()
        );
        let split_total: f64 = summaries.iter().map(|s| s.total_carbon_g).sum();
        assert!((split_total - m.total_carbon_g()).abs() < 1e-9);
    }

    #[test]
    fn local_index_recovers_trace_positions() {
        let trace = part(3, Region::Caiso).trace;
        for (i, inv) in trace.invocations().iter().enumerate() {
            let idx = local_index(&trace, inv.t_ms, inv.func);
            // Exact for distinct (t, func); duplicates resolve to the
            // first occurrence.
            let dup = trace.invocations()[..i]
                .iter()
                .any(|other| other.t_ms == inv.t_ms && other.func == inv.func);
            if !dup {
                assert_eq!(idx, i);
            }
        }
    }
}

//! EcoLife configuration.

use ecolife_carbon::TransferCost;
use ecolife_hw::NodeId;
use ecolife_pso::DpsoConfig;

/// All knobs of the EcoLife scheduler. Defaults reproduce the paper's
/// setup (Sec. V): λs = λc = 0.5, 15 particles, ω ∈ [0.5, 1],
/// c1, c2 ∈ [0.3, 1], keep-alive grid 0–10 minutes.
#[derive(Debug, Clone)]
pub struct EcoLifeConfig {
    /// Service-time weight λs.
    pub lambda_s: f64,
    /// Carbon weight λc.
    pub lambda_c: f64,
    /// Keep-alive period choices, in minutes; must start with 0
    /// ("no keep-alive") and be strictly increasing.
    pub keepalive_grid_min: Vec<u64>,
    /// PSO iterations run per keep-alive decision.
    pub pso_iters: usize,
    /// Dynamic-PSO (adaptive weights + perception–response). Disabling
    /// this is the Fig. 10 ablation ("EcoLife w/o DPSO").
    pub dynamic_pso: bool,
    /// Warm-pool adjustment (priority eviction + cross-pool transfer).
    /// Disabling this is the Fig. 11 ablation.
    pub warm_pool_adjustment: bool,
    /// Restrict to a single fleet node: on the canonical pair layout,
    /// `Some(Generation::Old.into())` = Eco-Old,
    /// `Some(Generation::New.into())` = Eco-New (Fig. 12).
    pub restrict_to: Option<NodeId>,
    /// Serve the decision hot path through the precomputed
    /// [`ObjectiveTables`](crate::objective::ObjectiveTables) (per-node
    /// constants + per-minute CI composites + per-decision fitness grid)
    /// instead of recomputing fleet-wide scans inside every particle
    /// evaluation. Decisions are bit-identical either way (pinned by
    /// `tests/hotpath.rs`); disabling this selects the uncached
    /// reference path, kept for the bit-identity pin and the
    /// `ecolife_hotpath` before/after bench.
    pub cached_tables: bool,
    /// Price of a cross-node container migration: egress grams at the
    /// source grid plus re-warm latency. Threads into the cost model's
    /// transfer ranking (paying moves ahead of losing ones).
    /// [`TransferCost::free`] by default — rankings, decisions, and
    /// every existing golden are then exactly the unpriced ones.
    pub transfer_cost: TransferCost,
    /// Fold measured per-node executor backlog into EPDM cold
    /// placement (`λs · Q_r / S_max` added to each node's fscore; see
    /// `CostModel::epdm_choice_queued`). Only meaningful on runs with
    /// bounded executors (`SimConfig::with_bounded_executors` in
    /// `ecolife-sim`) — without them every queue reads zero and the
    /// term vanishes, so decisions (and all existing goldens) are
    /// bit-identical to the classic scan. Scope: execution placement
    /// only; the KDM keep-alive optimization is untouched.
    pub queue_aware_placement: bool,
    /// Underlying (D)PSO parameters.
    pub dpso: DpsoConfig,
    /// ΔF observation window (ms).
    pub delta_f_window_ms: u64,
    /// Base RNG seed; each function's swarm derives its own.
    pub seed: u64,
}

impl Default for EcoLifeConfig {
    fn default() -> Self {
        EcoLifeConfig {
            lambda_s: 0.5,
            lambda_c: 0.5,
            keepalive_grid_min: (0..=10).collect(),
            pso_iters: 8,
            dynamic_pso: true,
            warm_pool_adjustment: true,
            restrict_to: None,
            cached_tables: true,
            transfer_cost: TransferCost::free(),
            queue_aware_placement: false,
            dpso: DpsoConfig::default(),
            delta_f_window_ms: 5 * 60_000,
            seed: 0xEC0_11FE,
        }
    }
}

impl EcoLifeConfig {
    /// Validate invariants; called by the scheduler constructor.
    pub fn validate(&self) {
        assert!(self.lambda_s >= 0.0 && self.lambda_c >= 0.0);
        assert!(
            self.lambda_s + self.lambda_c > 0.0,
            "at least one optimization weight must be positive"
        );
        assert!(
            self.keepalive_grid_min.len() >= 2,
            "keep-alive grid needs ≥2 entries"
        );
        assert_eq!(
            self.keepalive_grid_min[0], 0,
            "grid must include the no-keep-alive choice"
        );
        assert!(
            self.keepalive_grid_min.windows(2).all(|w| w[0] < w[1]),
            "grid must be strictly increasing"
        );
        assert!(self.pso_iters > 0);
    }

    /// The Fig. 10 ablation variant.
    pub fn without_dynamic_pso(mut self) -> Self {
        self.dynamic_pso = false;
        self
    }

    /// The Fig. 11 ablation variant.
    pub fn without_warm_pool_adjustment(mut self) -> Self {
        self.warm_pool_adjustment = false;
        self
    }

    /// The Fig. 12 single-node variants ([`ecolife_hw::Generation`]
    /// converts for the two-node pair layout).
    pub fn restricted_to(mut self, node: impl Into<NodeId>) -> Self {
        self.restrict_to = Some(node.into());
        self
    }

    /// The uncached reference hot path (see
    /// [`EcoLifeConfig::cached_tables`]): same decisions, recomputed
    /// fleet-wide per particle evaluation.
    pub fn without_cached_tables(mut self) -> Self {
        self.cached_tables = false;
        self
    }

    /// Priced cross-node migrations (see
    /// [`EcoLifeConfig::transfer_cost`]).
    pub fn with_transfer_cost(mut self, transfer_cost: TransferCost) -> Self {
        self.transfer_cost = transfer_cost;
        self
    }

    /// Queue-aware EPDM placement (see
    /// [`EcoLifeConfig::queue_aware_placement`]); pair with
    /// `SimConfig::with_bounded_executors` to give the term a signal.
    pub fn with_queue_aware_placement(mut self) -> Self {
        self.queue_aware_placement = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = EcoLifeConfig::default();
        assert_eq!(c.lambda_s, 0.5);
        assert_eq!(c.lambda_c, 0.5);
        assert_eq!(c.keepalive_grid_min, (0..=10).collect::<Vec<_>>());
        assert_eq!(c.dpso.base.n_particles, 15);
        assert!(c.dynamic_pso);
        assert!(c.warm_pool_adjustment);
        c.validate();
    }

    #[test]
    fn cached_tables_default_on_with_uncached_opt_out() {
        assert!(EcoLifeConfig::default().cached_tables);
        assert!(
            !EcoLifeConfig::default()
                .without_cached_tables()
                .cached_tables
        );
    }

    #[test]
    fn ablation_builders() {
        assert!(!EcoLifeConfig::default().without_dynamic_pso().dynamic_pso);
        assert!(
            !EcoLifeConfig::default()
                .without_warm_pool_adjustment()
                .warm_pool_adjustment
        );
        assert_eq!(
            EcoLifeConfig::default()
                .restricted_to(ecolife_hw::Generation::Old)
                .restrict_to,
            Some(NodeId(0))
        );
        assert_eq!(
            EcoLifeConfig::default()
                .restricted_to(NodeId(2))
                .restrict_to,
            Some(NodeId(2))
        );
    }

    #[test]
    #[should_panic(expected = "no-keep-alive")]
    fn grid_must_start_at_zero() {
        let c = EcoLifeConfig {
            keepalive_grid_min: vec![1, 2, 3],
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn grid_must_increase() {
        let c = EcoLifeConfig {
            keepalive_grid_min: vec![0, 5, 5],
            ..Default::default()
        };
        c.validate();
    }
}

//! A warm (kept-alive) container resident in a pool.

use ecolife_trace::FunctionId;

/// One function image held warm in a node's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmContainer {
    /// The function this container serves.
    pub func: FunctionId,
    /// Resident memory footprint (MiB) — charged against the pool budget
    /// and used for the DRAM share in the carbon model.
    pub memory_mib: u64,
    /// When the container became warm (end of its creating invocation's
    /// service period).
    pub warm_since_ms: u64,
    /// When the keep-alive period lapses and the container is reclaimed.
    pub expiry_ms: u64,
    /// Index of the invocation record that scheduled this keep-alive —
    /// its keep-alive carbon is attributed there.
    pub origin_record: usize,
    /// Latency debt from priced migrations: every transfer this
    /// container survived adds [`TransferCost::latency_ms`]
    /// (`ecolife_carbon::TransferCost`), and the next warm start pays
    /// it on top of its service time. 0 for fresh containers and under
    /// free transfer pricing.
    pub transfer_latency_ms: u64,
}

impl WarmContainer {
    /// Keep-alive duration actually consumed if the container dies (or is
    /// reused) at `end_ms`.
    #[inline]
    pub fn resident_ms(&self, end_ms: u64) -> u64 {
        end_ms
            .min(self.expiry_ms)
            .saturating_sub(self.warm_since_ms)
    }

    /// Whether the container can serve a warm start at `t_ms`: it must
    /// already be warm and not yet expired.
    #[inline]
    pub fn is_warm_at(&self, t_ms: u64) -> bool {
        self.warm_since_ms <= t_ms && t_ms < self.expiry_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> WarmContainer {
        WarmContainer {
            func: FunctionId(0),
            memory_mib: 256,
            warm_since_ms: 1_000,
            expiry_ms: 61_000,
            origin_record: 0,
            transfer_latency_ms: 0,
        }
    }

    #[test]
    fn resident_clamps_to_expiry() {
        assert_eq!(c().resident_ms(31_000), 30_000);
        assert_eq!(c().resident_ms(100_000), 60_000);
        assert_eq!(c().resident_ms(500), 0);
    }

    #[test]
    fn warm_window_is_half_open() {
        let c = c();
        assert!(!c.is_warm_at(999));
        assert!(c.is_warm_at(1_000));
        assert!(c.is_warm_at(60_999));
        assert!(!c.is_warm_at(61_000));
    }
}

//! # ecolife-sim — discrete-event serverless cluster simulator
//!
//! Replays an invocation [`Trace`](ecolife_trace::Trace) against an
//! N-node hardware [`Fleet`](ecolife_hw::Fleet) under a pluggable
//! [`Scheduler`] (the paper's two-generation pair is the `N = 2` case):
//!
//! * **warm pools** ([`pool`]) — one per fleet node, memory-bounded,
//!   holding the containers kept alive between invocations;
//! * **engine** ([`engine`]) — advances invocation by invocation,
//!   expiring containers, classifying warm/cold starts, computing service
//!   time via the node performance model and carbon via the Sec. II
//!   footprint model, and invoking the scheduler's overflow handling when
//!   a keep-alive does not fit (displaced containers are retried against
//!   the plan's ranked transfer targets);
//! * **metrics** ([`metrics`]) — per-invocation records (service time,
//!   carbon breakdown, energy), aggregate totals, CDFs, and P95s — the
//!   quantities every figure of the paper is computed from.
//!
//! The simulator is single-threaded and deterministic; parallelism lives
//! one level up (experiment sweeps fan out over independent simulations).

pub mod cluster;
pub mod container;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod scheduler;

pub use cluster::Cluster;
pub use container::WarmContainer;
pub use engine::{evaluate, SimConfig, Simulation};
pub use metrics::{InvocationRecord, RunMetrics};
pub use pool::WarmPool;
pub use scheduler::{
    AdjustPlan, Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx, Scheduler,
};

/// Milliseconds per minute; keep-alive periods are quoted in minutes
/// throughout the paper.
pub const MINUTE_MS: u64 = 60_000;

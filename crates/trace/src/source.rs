//! Streaming invocation sources — the ingest edge of the live-service
//! path.
//!
//! A batch [`Trace`] is one way to obtain invocations; a live platform
//! receives them over time from producers it does not control. The
//! [`InvocationSource`] trait abstracts over both: the service drives
//! whatever source it is handed, and determinism questions reduce to
//! "does the source yield the same sequence?".
//!
//! Two implementations ship here:
//!
//! * [`TraceSource`] — replays an existing trace in order; the batch
//!   case as a stream.
//! * [`LiveSource`] — drains N bounded channel lanes, each fed by a
//!   [`LaneIngest`] handle from its own producer thread. Lanes are
//!   drained *in lane order* (lane 0 to exhaustion, then lane 1, …), so
//!   when producers own contiguous, non-overlapping time ranges —
//!   lane 0 earliest — the merged sequence is chronological and
//!   **identical at any producer-thread count**, while the bounded
//!   channels still exert real backpressure on fast producers
//!   ([`LaneIngest::try_send`] surfaces it as a typed error instead of
//!   blocking).
//!
//! The contiguous-chunk discipline is deliberately the caller's
//! contract, not a runtime merge: a timestamp-ordered N-way merge of
//! concurrently racing producers would need unbounded buffering (or
//! watermarks) to be deterministic. Owning time ranges keeps producers
//! genuinely parallel — each fills its lane while earlier lanes drain —
//! yet leaves the consumed order a pure function of the workload.

use crate::invocation::Invocation;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// A pull-based stream of invocations, consumed by the live service.
///
/// `next_invocation` may block (a live source waits for producers);
/// `None` is end-of-stream, after which the source must keep returning
/// `None`. Sources need not sort: the service validates chronology at
/// ingest and rejects out-of-order arrivals with a typed error.
pub trait InvocationSource {
    /// The next arrival, or `None` once the stream is exhausted.
    fn next_invocation(&mut self) -> Option<Invocation>;
}

/// Replays a borrowed [`Trace`](crate::Trace)'s invocations in order —
/// the batch workload as a stream. Built by
/// [`Trace::source`](crate::Trace::source).
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    invocations: &'a [Invocation],
    next: usize,
}

impl<'a> TraceSource<'a> {
    pub(crate) fn new(invocations: &'a [Invocation]) -> Self {
        TraceSource {
            invocations,
            next: 0,
        }
    }

    /// Invocations not yet yielded.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.invocations.len() - self.next
    }
}

impl InvocationSource for TraceSource<'_> {
    fn next_invocation(&mut self) -> Option<Invocation> {
        let inv = self.invocations.get(self.next).copied()?;
        self.next += 1;
        Some(inv)
    }
}

/// Why a [`LaneIngest`] send did not land. The invocation rides along
/// so the producer can retry or shed it explicitly — nothing is
/// silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The lane's bounded buffer is full ([`LaneIngest::try_send`]
    /// only): the consumer is behind. Retry later, block via
    /// [`LaneIngest::send`], or shed.
    Backpressure(Invocation),
    /// The consuming [`LiveSource`] is gone; the stream is over.
    Closed(Invocation),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Backpressure(i) => {
                write!(f, "lane full: backpressure on arrival at {} ms", i.t_ms)
            }
            IngestError::Closed(i) => {
                write!(f, "live source closed; arrival at {} ms dropped", i.t_ms)
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Producer handle for one [`LiveSource`] lane. Dropping it closes the
/// lane; the source moves on to the next lane once the buffer drains.
#[derive(Debug)]
pub struct LaneIngest {
    tx: SyncSender<Invocation>,
    lane: usize,
}

impl LaneIngest {
    /// Which lane this handle feeds (lanes drain in index order).
    #[inline]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Non-blocking send: surfaces a full buffer as
    /// [`IngestError::Backpressure`] instead of waiting.
    pub fn try_send(&self, inv: Invocation) -> Result<(), IngestError> {
        self.tx.try_send(inv).map_err(|e| match e {
            TrySendError::Full(i) => IngestError::Backpressure(i),
            TrySendError::Disconnected(i) => IngestError::Closed(i),
        })
    }

    /// Blocking send: waits while the lane is full, erring only if the
    /// consumer is gone.
    pub fn send(&self, inv: Invocation) -> Result<(), IngestError> {
        self.tx.send(inv).map_err(|e| IngestError::Closed(e.0))
    }
}

/// Consumer end of a set of bounded ingest lanes; see the module docs
/// for the ordering contract. Build with [`live_lanes`].
#[derive(Debug)]
pub struct LiveSource {
    lanes: Vec<Receiver<Invocation>>,
    current: usize,
}

impl InvocationSource for LiveSource {
    fn next_invocation(&mut self) -> Option<Invocation> {
        while let Some(rx) = self.lanes.get(self.current) {
            match rx.recv() {
                Ok(inv) => return Some(inv),
                // Lane closed and drained: advance to the next one.
                Err(_) => self.current += 1,
            }
        }
        None
    }
}

/// Build `lanes` bounded ingest lanes of `capacity` invocations each,
/// returning one [`LaneIngest`] per producer and the [`LiveSource`]
/// draining them in lane order.
///
/// # Panics
///
/// If `lanes == 0` or `capacity == 0` (a zero-capacity rendezvous
/// channel would make `try_send` fail unless the consumer is already
/// parked on this exact lane — backpressure by coincidence).
pub fn live_lanes(lanes: usize, capacity: usize) -> (Vec<LaneIngest>, LiveSource) {
    assert!(lanes > 0, "need at least one ingest lane");
    assert!(capacity > 0, "lanes need a nonzero buffer");
    let mut handles = Vec::with_capacity(lanes);
    let mut receivers = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let (tx, rx) = sync_channel(capacity);
        handles.push(LaneIngest { tx, lane });
        receivers.push(rx);
    }
    (
        handles,
        LiveSource {
            lanes: receivers,
            current: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FunctionId, FunctionProfile, WorkloadCatalog};
    use crate::Trace;
    use std::thread;

    fn inv(f: u32, t: u64) -> Invocation {
        Invocation {
            func: FunctionId(f),
            t_ms: t,
        }
    }

    fn catalog1() -> WorkloadCatalog {
        WorkloadCatalog::new(vec![FunctionProfile::new("a", 100, 100, 128, 0.5)])
    }

    #[test]
    fn trace_source_replays_in_order() {
        let t = Trace::new(catalog1(), vec![inv(0, 30), inv(0, 10), inv(0, 20)]);
        let mut s = t.source();
        assert_eq!(s.remaining(), 3);
        let drained: Vec<u64> =
            std::iter::from_fn(|| s.next_invocation().map(|i| i.t_ms)).collect();
        assert_eq!(drained, vec![10, 20, 30]);
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.next_invocation(), None); // stays exhausted
    }

    #[test]
    fn live_lanes_drain_in_lane_order() {
        let (handles, mut source) = live_lanes(3, 4);
        // Feed out of lane order; consumption is still lane 0, 1, 2.
        handles[2].send(inv(0, 200)).unwrap();
        handles[0].send(inv(0, 1)).unwrap();
        handles[1].send(inv(0, 100)).unwrap();
        handles[0].send(inv(0, 2)).unwrap();
        drop(handles);
        let drained: Vec<u64> =
            std::iter::from_fn(|| source.next_invocation().map(|i| i.t_ms)).collect();
        assert_eq!(drained, vec![1, 2, 100, 200]);
        assert_eq!(source.next_invocation(), None);
    }

    #[test]
    fn ingest_error_displays_and_is_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(IngestError::Backpressure(inv(0, 17))),
            Box::new(IngestError::Closed(inv(0, 23))),
        ];
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("backpressure on arrival at 17 ms"));
        assert!(rendered[1].contains("closed; arrival at 23 ms dropped"));
    }

    #[test]
    fn try_send_reports_backpressure_without_losing_the_invocation() {
        let (handles, mut source) = live_lanes(1, 1);
        handles[0].try_send(inv(0, 1)).unwrap();
        match handles[0].try_send(inv(0, 2)) {
            Err(IngestError::Backpressure(i)) => assert_eq!(i.t_ms, 2),
            other => panic!("expected backpressure, got {other:?}"),
        }
        // Draining frees the slot.
        assert_eq!(source.next_invocation().unwrap().t_ms, 1);
        handles[0].try_send(inv(0, 2)).unwrap();
    }

    #[test]
    fn send_into_dropped_source_reports_closed() {
        let (handles, source) = live_lanes(2, 2);
        drop(source);
        assert_eq!(
            handles[0].send(inv(0, 5)),
            Err(IngestError::Closed(inv(0, 5)))
        );
        assert_eq!(
            handles[1].try_send(inv(0, 6)),
            Err(IngestError::Closed(inv(0, 6)))
        );
    }

    #[test]
    fn contiguous_chunk_producers_merge_identically_at_any_thread_count() {
        // One workload, split into contiguous time chunks per producer.
        let all: Vec<Invocation> = (0..64u64).map(|t| inv(0, t * 7)).collect();
        let mut sequences = Vec::new();
        for producers in [1usize, 2, 4] {
            let (handles, mut source) = live_lanes(producers, 2);
            let chunk = all.len().div_ceil(producers);
            thread::scope(|s| {
                for (handle, part) in handles.into_iter().zip(all.chunks(chunk)) {
                    s.spawn(move || {
                        for &i in part {
                            handle.send(i).unwrap();
                        }
                    });
                }
                let drained: Vec<Invocation> =
                    std::iter::from_fn(|| source.next_invocation()).collect();
                sequences.push(drained);
            });
        }
        assert_eq!(sequences[0], all);
        assert_eq!(sequences[0], sequences[1]);
        assert_eq!(sequences[1], sequences[2]);
    }
}

/root/repo/target/release/deps/trace_properties-88f7795d2be8cdb0.d: crates/trace/tests/trace_properties.rs

/root/repo/target/release/deps/trace_properties-88f7795d2be8cdb0: crates/trace/tests/trace_properties.rs

crates/trace/tests/trace_properties.rs:

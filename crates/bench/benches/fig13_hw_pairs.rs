//! Fig. 13 — EcoLife across the three Table I hardware pairs.
//!
//! Paper shape: EcoLife stays within a 7.5% margin of the Oracle on both
//! service time and carbon for every pair — the benefit is not an
//! artifact of one particular generation gap.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_core::{compare, runner::parallel_map};
use ecolife_hw::skus;
use std::hint::black_box;

fn print_fig13() {
    println!("\n=== Fig. 13: EcoLife vs Oracle across hardware pairs ===");
    println!(
        "{:<8} {:>16} {:>16}",
        "pair", "svc vs Oracle", "CO2 vs Oracle"
    );
    let rows = parallel_map(skus::all_pairs(), |pair| {
        let id = pair.id;
        let setup = EvalSetup::sized(
            48,
            1_440,
            pair.with_keepalive_budgets_mib(15 * 1024, 15 * 1024),
        );
        let oracle = setup.run(&mut setup.oracle());
        let eco = setup.run(&mut setup.ecolife());
        (id, compare(&eco, &oracle, &oracle))
    });
    for (id, c) in rows {
        println!(
            "{:<8} {:>15.1}% {:>15.1}%",
            id.to_string(),
            c.service_increase_pct,
            c.carbon_increase_pct
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig13();
    let setup = EvalSetup::sized(
        16,
        180,
        skus::pair_b().with_keepalive_budgets_mib(6 * 1024, 6 * 1024),
    );
    c.bench_function("fig13/pair_b_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.ecolife())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

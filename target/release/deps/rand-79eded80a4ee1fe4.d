/root/repo/target/release/deps/rand-79eded80a4ee1fe4.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-79eded80a4ee1fe4.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_sim-ad7a290d63728a32.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libecolife_sim-ad7a290d63728a32.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libecolife_sim-ad7a290d63728a32.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

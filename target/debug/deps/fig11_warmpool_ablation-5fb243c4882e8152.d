/root/repo/target/debug/deps/fig11_warmpool_ablation-5fb243c4882e8152.d: crates/bench/benches/fig11_warmpool_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_warmpool_ablation-5fb243c4882e8152.rmeta: crates/bench/benches/fig11_warmpool_ablation.rs Cargo.toml

crates/bench/benches/fig11_warmpool_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

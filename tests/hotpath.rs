//! The cached decision hot path is an *optimization*, never a semantic
//! change: EcoLife with `ObjectiveTables` (the default) must make
//! bit-identical decisions — every float of every record equal — to the
//! uncached reference path (`EcoLifeConfig::without_cached_tables`), on
//! multi-region fleets, under memory pressure (the memoized transfer
//! ranking), restricted to one node, sequentially and through
//! `run_sharded` at any worker-thread count.

use ecolife::prelude::*;
use ecolife::sim::ShardOptions;

/// A multi-region workload: one hardware pair per grid region (ten
/// nodes, five grids), synthetic per-region CI feeds, 16 functions.
fn multi_region_setup() -> (Trace, CiBundle, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 21,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let bundle = CiBundle::synthetic_all(150, 21);
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(16 * 1024);
    (trace, bundle, fleet)
}

fn cached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(fleet.clone(), EcoLifeConfig::default())
}

fn uncached(fleet: &Fleet) -> EcoLife {
    EcoLife::new(
        fleet.clone(),
        EcoLifeConfig::default().without_cached_tables(),
    )
}

/// One record, every float as exact bits:
/// `(t, warm, node, service_ms, service_g, keepalive_g, energy)`.
type RecordBits = (u64, bool, u64, u64, u64, u64, u64);

/// Everything decision-dependent in a run, floats compared exactly
/// (decision overhead is wall-clock and excluded; the per-node gram
/// *sums* are compared separately — see [`by_node_bits`] — because they
/// are only bit-stable between runs of the same shard layout).
fn fingerprint(m: &RunMetrics) -> (Vec<RecordBits>, u64, u64) {
    (
        m.records
            .iter()
            .map(|r| {
                (
                    r.t_ms,
                    r.warm,
                    r.exec_location.0 as u64,
                    r.service_ms,
                    r.service_carbon.total_g().to_bits(),
                    r.keepalive_carbon.total_g().to_bits(),
                    r.energy_kwh.to_bits(),
                )
            })
            .collect(),
        m.evicted_functions,
        m.transfers,
    )
}

/// Per-node keep-alive gram totals, bit-exact. Only comparable between
/// runs with the same shard layout (summation order is per shard).
fn by_node_bits(m: &RunMetrics) -> Vec<u64> {
    m.keepalive_g_by_node.iter().map(|g| g.to_bits()).collect()
}

#[test]
fn cached_tables_are_bit_identical_on_a_multi_region_fleet() {
    let (trace, bundle, fleet) = multi_region_setup();
    let run = |mut eco: EcoLife| {
        Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .run(&mut eco)
    };
    let fast = run(cached(&fleet));
    let reference = run(uncached(&fleet));
    assert_eq!(
        fingerprint(&fast),
        fingerprint(&reference),
        "cached tables changed a decision on the multi-region fleet"
    );
    assert_eq!(by_node_bits(&fast), by_node_bits(&reference));
}

#[test]
fn cached_tables_are_bit_identical_sharded_at_any_thread_count() {
    let (trace, bundle, fleet) = multi_region_setup();
    let sim = Simulation::try_new_regional(&trace, &bundle, fleet.clone()).unwrap();
    let sequential = fingerprint(&sim.run(&mut cached(&fleet)));
    for threads in [1usize, 2, 4] {
        let fast = sim.run_sharded(
            |_| cached(&fleet),
            &ShardOptions::new(8).with_threads(threads),
        );
        let reference = sim.run_sharded(
            |_| uncached(&fleet),
            &ShardOptions::new(8).with_threads(threads),
        );
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&reference),
            "cached vs uncached diverged sharded at {threads} workers"
        );
        // Same shard layout → the per-node gram sums are bit-stable too.
        assert_eq!(by_node_bits(&fast), by_node_bits(&reference));
        assert_eq!(
            fingerprint(&fast),
            sequential,
            "sharded run diverged from the sequential path at {threads} workers"
        );
    }
}

/// Memory pressure drives the overflow path — priority adjustment plus
/// the (memoized) transfer-target ranking — which must not change a
/// single displacement either.
#[test]
fn cached_tables_are_bit_identical_under_memory_pressure() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 90,
        seed: 23,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 23);
    let fleet = Fleet::from(skus::pair_a()).with_uniform_keepalive_budget_mib(6 * 1024);
    let run = |mut eco: EcoLife| Simulation::new(&trace, &ci, fleet.clone()).run(&mut eco);
    let fast = run(cached(&fleet));
    let reference = run(uncached(&fleet));
    assert!(
        reference.transfers > 0,
        "workload must exercise the overflow/transfer path"
    );
    assert_eq!(fingerprint(&fast), fingerprint(&reference));
    assert_eq!(by_node_bits(&fast), by_node_bits(&reference));
}

#[test]
fn cached_tables_are_bit_identical_when_restricted_to_one_node() {
    let trace = SynthTraceConfig::small(7).generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Texas, 120, 7);
    let fleet = skus::fleet_three_generations();
    for node in [NodeId(0), NodeId(1), NodeId(2)] {
        let run = |cfg: EcoLifeConfig| {
            let mut eco = EcoLife::new(fleet.clone(), cfg.restricted_to(node));
            Simulation::new(&trace, &ci, fleet.clone()).run(&mut eco)
        };
        let fast = run(EcoLifeConfig::default());
        let reference = run(EcoLifeConfig::default().without_cached_tables());
        assert_eq!(
            fingerprint(&fast),
            fingerprint(&reference),
            "restricted-to-{node} runs diverged"
        );
        assert!(fast.records.iter().all(|r| r.exec_location == node));
    }
}

/// The oracle's sharded future-knowledge precompute is a pure wall-clock
/// play: `prepare` must produce the same gaps (and therefore the same
/// decisions) as the sequential scan at any bucket/worker count.
#[test]
fn sharded_gap_precompute_leaves_oracle_decisions_unchanged() {
    let trace = SynthTraceConfig {
        n_functions: 12,
        duration_min: 90,
        seed: 31,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let sequential = trace.next_arrival_gaps();
    // Force the bucketed partition/merge path (the automatic entry point
    // would take the sequential fallback on a trace this small).
    for n_buckets in [1usize, 2, 4, 16] {
        assert_eq!(
            ecolife::sim::next_arrival_gaps_bucketed(&trace, n_buckets),
            sequential,
            "bucketed gaps diverged at {n_buckets} buckets"
        );
    }
    assert_eq!(ecolife::sim::next_arrival_gaps_parallel(&trace), sequential);
    // And end to end: the oracle's run is deterministic across prepares.
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 31);
    let fleet = skus::fleet_a();
    let run = || {
        let mut oracle = BruteForce::oracle(fleet.clone(), ci.clone());
        Simulation::new(&trace, &ci, fleet.clone()).run(&mut oracle)
    };
    assert_eq!(fingerprint(&run()), fingerprint(&run()));
}

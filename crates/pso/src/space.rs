//! Bounded continuous search spaces.
//!
//! EcoLife constructs "a two-dimensional search space for each serverless
//! function": one dimension for the keep-alive location and one for the
//! keep-alive time (a discrete grid of periods). The location axis is
//! parameterized by fleet size — `[0, n_nodes - 1]`, decoded by rounding
//! to the nearest node index — so the same optimizer machinery covers the
//! paper's two-node pair and arbitrary N-node fleets. Optimizers work in
//! the continuous box; decoding to discrete choices happens at the call
//! site (see `ecolife-core::ecolife`).

use rand::rngs::SmallRng;
use rand::Rng;

/// An axis-aligned box in R^d.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Per-dimension `(min, max)` bounds, inclusive.
    bounds: Vec<(f64, f64)>,
}

impl SearchSpace {
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        assert!(!bounds.is_empty(), "search space needs ≥1 dimension");
        for (i, (lo, hi)) in bounds.iter().enumerate() {
            assert!(
                lo.is_finite() && hi.is_finite(),
                "dim {i}: non-finite bound"
            );
            assert!(lo < hi, "dim {i}: empty interval [{lo}, {hi}]");
        }
        SearchSpace { bounds }
    }

    /// The placement space over an N-node fleet: dimension 0 is the
    /// keep-alive location in `[0, n_nodes - 1]` (decoded by rounding to
    /// the nearest node index, [`decode::node_index`]); dimension 1 is
    /// the keep-alive period index in `[0, n_periods - 1]`.
    ///
    /// A single-node fleet gets a degenerate `[0, 1]` location axis —
    /// [`decode::node_index`] clamps every sample to node 0, so the
    /// optimizer effectively searches the period axis alone.
    pub fn placement(n_nodes: usize, n_periods: usize) -> Self {
        assert!(n_nodes >= 1, "placement needs at least one node");
        assert!(n_periods >= 2, "need at least two keep-alive choices");
        SearchSpace::new(vec![
            (0.0, (n_nodes - 1).max(1) as f64),
            (0.0, (n_periods - 1) as f64),
        ])
    }

    /// The paper's two-node space: dimension 0 in `[0, 1]` (`< 0.5` →
    /// old, else new). Identical to [`SearchSpace::placement`]`(2, _)` —
    /// kept as the named two-generation special case.
    pub fn ecolife(n_periods: usize) -> Self {
        SearchSpace::placement(2, n_periods)
    }

    /// A continuous relaxation of an integer grid: dimension `d` spans
    /// `[0, cardinalities[d] - 1]` and decodes by rounding to the nearest
    /// index ([`decode::grid_index`]). This is how non-placement genomes
    /// (e.g. the capacity planner's per-SKU node counts) ride the same
    /// optimizers as the keep-alive space — [`SearchSpace::placement`] is
    /// the `[n_nodes, n_periods]` special case.
    ///
    /// A single-choice axis (`cardinality == 1`) gets a degenerate
    /// `[0, 1]` interval; `grid_index` clamps every sample back to 0.
    pub fn grid(cardinalities: &[usize]) -> Self {
        assert!(!cardinalities.is_empty(), "grid needs ≥1 dimension");
        SearchSpace::new(
            cardinalities
                .iter()
                .enumerate()
                .map(|(d, &n)| {
                    assert!(n >= 1, "dim {d}: grid cardinality must be ≥1");
                    (0.0, (n - 1).max(1) as f64)
                })
                .collect(),
        )
    }

    #[inline]
    pub fn dims(&self) -> usize {
        self.bounds.len()
    }

    #[inline]
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Clamp a position into the box, in place.
    pub fn clamp(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dims());
        for (xi, (lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *xi = xi.clamp(*lo, *hi);
        }
    }

    /// Sample a uniform random position.
    pub fn sample(&self, rng: &mut SmallRng) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
            .collect()
    }

    /// Per-dimension extent (hi − lo).
    pub fn extent(&self, dim: usize) -> f64 {
        let (lo, hi) = self.bounds[dim];
        hi - lo
    }

    /// Whether `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dims()
            && x.iter()
                .zip(&self.bounds)
                .all(|(xi, (lo, hi))| *xi >= *lo && *xi <= *hi)
    }
}

/// Decode helpers for the placement and grid spaces.
pub mod decode {
    /// Generic grid decode: nearest index, clamped to
    /// `[0, cardinality - 1]`.
    #[inline]
    pub fn grid_index(x: f64, cardinality: usize) -> usize {
        (x.round().max(0.0) as usize).min(cardinality - 1)
    }

    /// Dimension-0 decode: nearest fleet node index, clamped to
    /// `[0, n_nodes - 1]`.
    #[inline]
    pub fn node_index(x0: f64, n_nodes: usize) -> usize {
        grid_index(x0, n_nodes)
    }

    /// Two-node dimension-0 decode: `< 0.5` → old (false), else new
    /// (true). Equivalent to `node_index(x0, 2) == 1`.
    #[inline]
    pub fn location_is_new(x0: f64) -> bool {
        node_index(x0, 2) == 1
    }

    /// Dimension-1 decode: nearest keep-alive period index, clamped.
    #[inline]
    pub fn period_index(x1: f64, n_periods: usize) -> usize {
        grid_index(x1, n_periods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ecolife_space_shape() {
        let s = SearchSpace::ecolife(11);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.bounds()[0], (0.0, 1.0));
        assert_eq!(s.bounds()[1], (0.0, 10.0));
        assert_eq!(s.extent(1), 10.0);
    }

    #[test]
    fn placement_space_parameterizes_the_location_axis() {
        let s = SearchSpace::placement(5, 11);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.bounds()[0], (0.0, 4.0));
        assert_eq!(s.bounds()[1], (0.0, 10.0));
        // The two-node special case is exactly the named ecolife space.
        assert_eq!(SearchSpace::placement(2, 11), SearchSpace::ecolife(11));
    }

    #[test]
    fn decode_node_index_rounds_and_clamps() {
        assert_eq!(decode::node_index(0.0, 3), 0);
        assert_eq!(decode::node_index(0.49, 3), 0);
        assert_eq!(decode::node_index(0.5, 3), 1);
        assert_eq!(decode::node_index(1.6, 3), 2);
        assert_eq!(decode::node_index(9.0, 3), 2);
        assert_eq!(decode::node_index(-1.0, 3), 0);
    }

    #[test]
    fn grid_space_generalizes_placement() {
        // placement(n, p) is grid(&[n, p]).
        assert_eq!(SearchSpace::grid(&[5, 11]), SearchSpace::placement(5, 11));
        let s = SearchSpace::grid(&[3, 1, 4]);
        assert_eq!(s.dims(), 3);
        assert_eq!(s.bounds()[0], (0.0, 2.0));
        // Single-choice axis gets the degenerate [0, 1] interval…
        assert_eq!(s.bounds()[1], (0.0, 1.0));
        // …and decodes to 0 everywhere.
        for x in [0.0, 0.4, 0.9, 1.0] {
            assert_eq!(decode::grid_index(x, 1), 0);
        }
        assert_eq!(decode::grid_index(2.4, 4), 2);
        assert_eq!(decode::grid_index(9.0, 4), 3);
        assert_eq!(decode::grid_index(-3.0, 4), 0);
    }

    #[test]
    #[should_panic(expected = "cardinality must be ≥1")]
    fn grid_rejects_empty_axis() {
        SearchSpace::grid(&[3, 0]);
    }

    #[test]
    fn single_node_placement_decodes_to_node_zero() {
        let s = SearchSpace::placement(1, 11);
        assert_eq!(s.dims(), 2);
        for x0 in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(decode::node_index(x0, 1), 0);
        }
    }

    #[test]
    fn clamp_pulls_into_box() {
        let s = SearchSpace::ecolife(11);
        let mut x = vec![-3.0, 42.0];
        s.clamp(&mut x);
        assert_eq!(x, vec![0.0, 10.0]);
        assert!(s.contains(&x));
    }

    #[test]
    fn sample_stays_in_bounds() {
        let s = SearchSpace::new(vec![(-5.0, 5.0), (0.0, 1.0), (100.0, 200.0)]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = s.sample(&mut rng);
            assert!(s.contains(&x), "{x:?} escaped");
        }
    }

    #[test]
    fn decode_location() {
        assert!(!decode::location_is_new(0.0));
        assert!(!decode::location_is_new(0.49));
        assert!(decode::location_is_new(0.5));
        assert!(decode::location_is_new(1.0));
    }

    #[test]
    fn decode_period_rounds_and_clamps() {
        assert_eq!(decode::period_index(3.4, 11), 3);
        assert_eq!(decode::period_index(3.6, 11), 4);
        assert_eq!(decode::period_index(-2.0, 11), 0);
        assert_eq!(decode::period_index(99.0, 11), 10);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_inverted_bounds() {
        SearchSpace::new(vec![(1.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "≥1 dimension")]
    fn rejects_zero_dims() {
        SearchSpace::new(vec![]);
    }
}

/root/repo/target/release/deps/fig2_hw_generations-c2ee12741dd7f016.d: crates/bench/benches/fig2_hw_generations.rs

/root/repo/target/release/deps/fig2_hw_generations-c2ee12741dd7f016: crates/bench/benches/fig2_hw_generations.rs

crates/bench/benches/fig2_hw_generations.rs:

/root/repo/target/release/deps/proptest-087150a066b2b135.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-087150a066b2b135: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:

/root/repo/target/release/deps/fig12_single_gen_ecolife-93684803bf12f409.d: crates/bench/benches/fig12_single_gen_ecolife.rs

/root/repo/target/release/deps/fig12_single_gen_ecolife-93684803bf12f409: crates/bench/benches/fig12_single_gen_ecolife.rs

crates/bench/benches/fig12_single_gen_ecolife.rs:

/root/repo/target/debug/deps/overhead_kdm-515f927888335f36.d: crates/bench/benches/overhead_kdm.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead_kdm-515f927888335f36.rmeta: crates/bench/benches/overhead_kdm.rs Cargo.toml

crates/bench/benches/overhead_kdm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Invocation events and the trace container.

use crate::workload::{FunctionId, WorkloadCatalog};
use std::fmt;

/// Why [`Trace::push_arrival`] refused an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The arrival is earlier than the trace's current horizon. A trace
    /// is chronologically sorted by construction; live appends must keep
    /// it that way (equal timestamps are fine — arrival order breaks the
    /// tie, exactly like the stable sort in batch construction).
    OutOfOrder {
        /// The rejected arrival time.
        t_ms: u64,
        /// The trace's last-arrival time it would have to rewind past.
        horizon_ms: u64,
    },
    /// The invocation references a function id outside the catalog.
    UnknownFunction {
        /// The unresolvable id.
        func: FunctionId,
        /// Catalog size (valid ids are `0..catalog_len`).
        catalog_len: usize,
    },
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::OutOfOrder { t_ms, horizon_ms } => write!(
                f,
                "arrival at {t_ms} ms precedes the trace horizon {horizon_ms} ms"
            ),
            PushError::UnknownFunction { func, catalog_len } => write!(
                f,
                "invocation references function {func} outside catalog (len {catalog_len})"
            ),
        }
    }
}

impl std::error::Error for PushError {}

/// One function invocation request arriving at the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Which function is invoked.
    pub func: FunctionId,
    /// Arrival time (simulation ms).
    pub t_ms: u64,
}

/// A chronologically sorted invocation stream plus the catalog resolving
/// its function ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    catalog: WorkloadCatalog,
    invocations: Vec<Invocation>,
    horizon_ms: u64,
}

impl Trace {
    /// Build a trace; invocations are sorted by arrival time (stable, so
    /// equal-timestamp order is preserved from the input).
    pub fn new(catalog: WorkloadCatalog, invocations: Vec<Invocation>) -> Self {
        for inv in &invocations {
            assert!(
                inv.func.as_usize() < catalog.len(),
                "invocation references function {} outside catalog (len {})",
                inv.func,
                catalog.len()
            );
        }
        Self::from_prevalidated(catalog, invocations)
    }

    /// Construction tail shared with [`TraceLoader`](crate::TraceLoader)
    /// (which validates function ids via a running maximum instead of
    /// the per-invocation pass above). The **stable** sort is load-
    /// bearing: equal-timestamp order is preserved from the input, so a
    /// loader-built trace is byte-identical to the `Trace::new` path.
    pub(crate) fn from_prevalidated(
        catalog: WorkloadCatalog,
        mut invocations: Vec<Invocation>,
    ) -> Self {
        invocations.sort_by_key(|i| i.t_ms);
        let horizon_ms = invocations.last().map(|i| i.t_ms).unwrap_or(0);
        Trace {
            catalog,
            invocations,
            horizon_ms,
        }
    }

    #[inline]
    pub fn catalog(&self) -> &WorkloadCatalog {
        &self.catalog
    }

    #[inline]
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Arrival time of the last invocation.
    #[inline]
    pub fn horizon_ms(&self) -> u64 {
        self.horizon_ms
    }

    /// For every invocation, the arrival time of the *next* invocation of
    /// the same function (`None` for the last one). This is the future
    /// knowledge the Oracle-family baselines are granted; online
    /// schedulers never see it.
    pub fn next_arrival_gaps(&self) -> Vec<Option<u64>> {
        let mut next_seen: Vec<Option<u64>> = vec![None; self.catalog.len()];
        let mut gaps = vec![None; self.invocations.len()];
        for (i, inv) in self.invocations.iter().enumerate().rev() {
            let slot = &mut next_seen[inv.func.as_usize()];
            gaps[i] = slot.map(|t: u64| t - inv.t_ms);
            *slot = Some(inv.t_ms);
        }
        gaps
    }

    /// Number of invocations per `window_ms` bucket — the ΔF signal source.
    pub fn invocations_per_window(&self, window_ms: u64) -> Vec<u32> {
        assert!(window_ms > 0);
        let buckets = (self.horizon_ms / window_ms + 1) as usize;
        let mut counts = vec![0u32; buckets];
        for inv in &self.invocations {
            counts[(inv.t_ms / window_ms) as usize] += 1;
        }
        counts
    }

    /// Count invocations of one function.
    pub fn count_for(&self, func: FunctionId) -> usize {
        self.invocations.iter().filter(|i| i.func == func).count()
    }

    /// Stream this trace's invocations in order — the batch workload as
    /// an [`InvocationSource`](crate::InvocationSource) for the live
    /// service path.
    pub fn source(&self) -> crate::source::TraceSource<'_> {
        crate::source::TraceSource::new(&self.invocations)
    }

    /// Append one arrival to a live, growing trace, keeping the
    /// chronological-sort invariant. Returns the invocation's index.
    ///
    /// This is the ingest edge of the service path
    /// (`ecolife-service`): each accepted arrival lands here before the
    /// engine steps over it, so a service run over a growing trace sees
    /// exactly the prefix a batch replay of the final trace would see.
    /// Equal-timestamp appends keep arrival order, matching the stable
    /// sort of batch construction.
    pub fn push_arrival(&mut self, inv: Invocation) -> Result<usize, PushError> {
        if inv.func.as_usize() >= self.catalog.len() {
            return Err(PushError::UnknownFunction {
                func: inv.func,
                catalog_len: self.catalog.len(),
            });
        }
        if inv.t_ms < self.horizon_ms {
            return Err(PushError::OutOfOrder {
                t_ms: inv.t_ms,
                horizon_ms: self.horizon_ms,
            });
        }
        self.horizon_ms = inv.t_ms;
        self.invocations.push(inv);
        Ok(self.invocations.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FunctionProfile;

    fn catalog2() -> WorkloadCatalog {
        WorkloadCatalog::new(vec![
            FunctionProfile::new("a", 100, 100, 128, 0.5),
            FunctionProfile::new("b", 200, 100, 128, 0.5),
        ])
    }

    fn inv(f: u32, t: u64) -> Invocation {
        Invocation {
            func: FunctionId(f),
            t_ms: t,
        }
    }

    #[test]
    fn trace_sorts_by_time() {
        let t = Trace::new(catalog2(), vec![inv(0, 50), inv(1, 10), inv(0, 30)]);
        let times: Vec<u64> = t.invocations().iter().map(|i| i.t_ms).collect();
        assert_eq!(times, vec![10, 30, 50]);
        assert_eq!(t.horizon_ms(), 50);
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn trace_rejects_unknown_function() {
        Trace::new(catalog2(), vec![inv(7, 0)]);
    }

    #[test]
    fn next_arrival_gaps_per_function() {
        let t = Trace::new(
            catalog2(),
            vec![inv(0, 0), inv(1, 5), inv(0, 100), inv(0, 250)],
        );
        let gaps = t.next_arrival_gaps();
        assert_eq!(gaps, vec![Some(100), None, Some(150), None]);
    }

    #[test]
    fn invocations_per_window_counts() {
        let t = Trace::new(
            catalog2(),
            vec![inv(0, 0), inv(0, 500), inv(1, 1_200), inv(0, 2_100)],
        );
        assert_eq!(t.invocations_per_window(1_000), vec![2, 1, 1]);
    }

    #[test]
    fn count_for_filters_by_function() {
        let t = Trace::new(catalog2(), vec![inv(0, 0), inv(1, 1), inv(0, 2)]);
        assert_eq!(t.count_for(FunctionId(0)), 2);
        assert_eq!(t.count_for(FunctionId(1)), 1);
    }

    #[test]
    fn push_arrival_appends_monotone() {
        let mut t = Trace::new(catalog2(), vec![inv(0, 10)]);
        assert_eq!(t.push_arrival(inv(1, 10)), Ok(1)); // ties allowed
        assert_eq!(t.push_arrival(inv(0, 25)), Ok(2));
        assert_eq!(t.horizon_ms(), 25);
        assert_eq!(
            t.push_arrival(inv(0, 24)),
            Err(PushError::OutOfOrder {
                t_ms: 24,
                horizon_ms: 25
            })
        );
        assert_eq!(
            t.push_arrival(inv(9, 30)),
            Err(PushError::UnknownFunction {
                func: FunctionId(9),
                catalog_len: 2
            })
        );
        // Rejected pushes leave the trace untouched.
        assert_eq!(t.len(), 3);
        assert_eq!(t.horizon_ms(), 25);
    }

    #[test]
    fn pushed_trace_equals_batch_trace() {
        let batch = Trace::new(catalog2(), vec![inv(0, 0), inv(1, 5), inv(0, 5)]);
        let mut grown = Trace::new(catalog2(), vec![]);
        for &i in batch.invocations() {
            grown.push_arrival(i).unwrap();
        }
        assert_eq!(grown, batch);
    }

    #[test]
    fn push_error_displays_and_is_std_error() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(PushError::OutOfOrder {
                t_ms: 24,
                horizon_ms: 25,
            }),
            Box::new(PushError::UnknownFunction {
                func: FunctionId(9),
                catalog_len: 2,
            }),
        ];
        let rendered: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].contains("precedes the trace horizon 25 ms"));
        assert!(rendered[1].contains("outside catalog (len 2)"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(catalog2(), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.horizon_ms(), 0);
        assert!(t.next_arrival_gaps().is_empty());
    }
}

//! Emit or check the repository's golden traces (`tests/golden/`).
//!
//! ```text
//! golden_traces emit    # regenerate every <name>.jsonl + <name>.golden
//! golden_traces check   # re-run each workload, diff against baselines
//! ```
//!
//! `check` exits non-zero on any drift and prints the **first divergent
//! event** of each drifted stream — this is what the CI `golden-traces`
//! job runs. After an *intentional* behavior change, re-run `emit` and
//! commit the updated baselines with the change that caused them.

use ecolife::golden::{run_golden, snapshot, GOLDEN_WORKLOADS};
use ecolife::telemetry::{diff_lines, pretty, GoldenSnapshot};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn emit() -> ExitCode {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for name in GOLDEN_WORKLOADS {
        let sink = run_golden(name);
        let snap = snapshot(name, &sink);
        std::fs::write(dir.join(format!("{name}.jsonl")), sink.to_jsonl()).expect("write stream");
        std::fs::write(dir.join(format!("{name}.golden")), snap.render()).expect("write golden");
        println!("emitted {name}: {} events, tip {}", snap.events, snap.tip);
    }
    ExitCode::SUCCESS
}

fn check() -> ExitCode {
    let dir = golden_dir();
    let mut drifted = false;
    for name in GOLDEN_WORKLOADS {
        let sink = run_golden(name);
        let snap = snapshot(name, &sink);

        let golden_path = dir.join(format!("{name}.golden"));
        let baseline = match std::fs::read_to_string(&golden_path) {
            Ok(text) => GoldenSnapshot::parse(&text).expect("parse checked-in golden"),
            Err(e) => {
                eprintln!("{name}: cannot read {}: {e}", golden_path.display());
                drifted = true;
                continue;
            }
        };
        let jsonl = std::fs::read_to_string(dir.join(format!("{name}.jsonl")))
            .expect("read checked-in stream");
        let want: Vec<&str> = jsonl.lines().collect();
        let got = sink.lines();

        if snap.events == baseline.events && snap.tip == baseline.tip && got == want {
            println!("ok: {name} ({} events, tip {})", snap.events, snap.tip);
            continue;
        }
        drifted = true;
        eprintln!(
            "DRIFT: {name} — baseline {} events tip {}, got {} events tip {}",
            baseline.events, baseline.tip, snap.events, snap.tip
        );
        match diff_lines(&want, &got) {
            Some(div) => {
                eprintln!("{div}");
                if let Some(ref line) = div.left {
                    eprintln!("baseline event:\n{}", pretty(line));
                }
                if let Some(ref line) = div.right {
                    eprintln!("current event:\n{}", pretty(line));
                }
            }
            // Same lines but a stale .golden summary: still a failure —
            // the two baseline files must move together.
            None => eprintln!("streams match; {name}.golden is stale — re-run emit"),
        }
    }
    if drifted {
        eprintln!("\ngolden traces drifted. If intentional: cargo run --release --bin golden_traces -- emit");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("emit") => emit(),
        Some("check") => check(),
        _ => {
            eprintln!("usage: golden_traces <emit|check>");
            ExitCode::from(64)
        }
    }
}

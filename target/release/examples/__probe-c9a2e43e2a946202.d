/root/repo/target/release/examples/__probe-c9a2e43e2a946202.d: examples/__probe.rs

/root/repo/target/release/examples/__probe-c9a2e43e2a946202: examples/__probe.rs

examples/__probe.rs:

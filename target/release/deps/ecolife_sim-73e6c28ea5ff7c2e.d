/root/repo/target/release/deps/ecolife_sim-73e6c28ea5ff7c2e.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libecolife_sim-73e6c28ea5ff7c2e.rlib: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/release/deps/libecolife_sim-73e6c28ea5ff7c2e.rmeta: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

/root/repo/target/release/deps/fig8_cdf-e5316c9474c695f4.d: crates/bench/benches/fig8_cdf.rs

/root/repo/target/release/deps/fig8_cdf-e5316c9474c695f4: crates/bench/benches/fig8_cdf.rs

crates/bench/benches/fig8_cdf.rs:

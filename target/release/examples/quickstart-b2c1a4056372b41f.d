/root/repo/target/release/examples/quickstart-b2c1a4056372b41f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-b2c1a4056372b41f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

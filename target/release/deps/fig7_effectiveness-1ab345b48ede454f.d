/root/repo/target/release/deps/fig7_effectiveness-1ab345b48ede454f.d: crates/bench/benches/fig7_effectiveness.rs Cargo.toml

/root/repo/target/release/deps/libfig7_effectiveness-1ab345b48ede454f.rmeta: crates/bench/benches/fig7_effectiveness.rs Cargo.toml

crates/bench/benches/fig7_effectiveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/fig11_warmpool_ablation-1f6a4e6650509ddc.d: crates/bench/benches/fig11_warmpool_ablation.rs

/root/repo/target/release/deps/fig11_warmpool_ablation-1f6a4e6650509ddc: crates/bench/benches/fig11_warmpool_ablation.rs

crates/bench/benches/fig11_warmpool_ablation.rs:

/root/repo/target/release/deps/fig13_hw_pairs-978936af3f543d1b.d: crates/bench/benches/fig13_hw_pairs.rs

/root/repo/target/release/deps/fig13_hw_pairs-978936af3f543d1b: crates/bench/benches/fig13_hw_pairs.rs

crates/bench/benches/fig13_hw_pairs.rs:

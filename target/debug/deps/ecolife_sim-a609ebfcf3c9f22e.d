/root/repo/target/debug/deps/ecolife_sim-a609ebfcf3c9f22e.d: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

/root/repo/target/debug/deps/ecolife_sim-a609ebfcf3c9f22e: crates/sim/src/lib.rs crates/sim/src/cluster.rs crates/sim/src/container.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/pool.rs crates/sim/src/scheduler.rs

crates/sim/src/lib.rs:
crates/sim/src/cluster.rs:
crates/sim/src/container.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/pool.rs:
crates/sim/src/scheduler.rs:

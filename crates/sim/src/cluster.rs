//! The two-generation cluster: one node per generation plus its warm pool.

use crate::pool::WarmPool;
use ecolife_hw::{Generation, HardwareNode, HardwarePair};
use ecolife_trace::FunctionId;

/// Cluster state during a simulation run.
#[derive(Debug, Clone)]
pub struct Cluster {
    pair: HardwarePair,
    pools: [WarmPool; 2],
}

impl Cluster {
    /// Build a cluster; pool budgets come from each node's
    /// `keepalive_mem_mib`.
    pub fn new(pair: HardwarePair) -> Self {
        let pools = [
            WarmPool::new(pair.old.keepalive_mem_mib),
            WarmPool::new(pair.new.keepalive_mem_mib),
        ];
        Cluster { pair, pools }
    }

    #[inline]
    pub fn pair(&self) -> &HardwarePair {
        &self.pair
    }

    #[inline]
    pub fn node(&self, generation: Generation) -> &HardwareNode {
        self.pair.node(generation)
    }

    #[inline]
    pub fn pool(&self, generation: Generation) -> &WarmPool {
        &self.pools[generation.index()]
    }

    #[inline]
    pub fn pool_mut(&mut self, generation: Generation) -> &mut WarmPool {
        &mut self.pools[generation.index()]
    }

    /// Where `func` is currently warm at time `t_ms`, if anywhere.
    /// If warm on both generations (possible after a cross-pool transfer
    /// races a fresh keep-alive), the newer generation wins — it serves
    /// the faster warm start.
    pub fn warm_location(&self, func: FunctionId, t_ms: u64) -> Option<Generation> {
        for generation in [Generation::New, Generation::Old] {
            if let Some(c) = self.pool(generation).get(func) {
                if c.is_warm_at(t_ms) {
                    return Some(generation);
                }
            }
        }
        None
    }

    /// Total warm containers across both pools.
    pub fn total_warm(&self) -> usize {
        self.pools.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::WarmContainer;
    use ecolife_hw::skus;

    fn warm(f: u32, since: u64, expiry: u64) -> WarmContainer {
        WarmContainer {
            func: FunctionId(f),
            memory_mib: 128,
            warm_since_ms: since,
            expiry_ms: expiry,
            origin_record: 0,
        }
    }

    #[test]
    fn pools_take_budgets_from_nodes() {
        let pair = skus::pair_a().with_keepalive_budgets_mib(1_000, 2_000);
        let c = Cluster::new(pair);
        assert_eq!(c.pool(Generation::Old).capacity_mib(), 1_000);
        assert_eq!(c.pool(Generation::New).capacity_mib(), 2_000);
    }

    #[test]
    fn warm_location_finds_container() {
        let mut c = Cluster::new(skus::pair_a());
        c.pool_mut(Generation::Old).insert(warm(3, 0, 100)).unwrap();
        assert_eq!(c.warm_location(FunctionId(3), 50), Some(Generation::Old));
        assert_eq!(c.warm_location(FunctionId(3), 100), None); // expired
        assert_eq!(c.warm_location(FunctionId(4), 50), None);
    }

    #[test]
    fn warm_on_both_prefers_new() {
        let mut c = Cluster::new(skus::pair_a());
        c.pool_mut(Generation::Old).insert(warm(1, 0, 100)).unwrap();
        c.pool_mut(Generation::New).insert(warm(1, 0, 100)).unwrap();
        assert_eq!(c.warm_location(FunctionId(1), 10), Some(Generation::New));
        assert_eq!(c.total_warm(), 2);
    }

    #[test]
    fn future_container_is_not_warm_yet() {
        let mut c = Cluster::new(skus::pair_a());
        c.pool_mut(Generation::New).insert(warm(2, 500, 900)).unwrap();
        assert_eq!(c.warm_location(FunctionId(2), 100), None);
        assert_eq!(c.warm_location(FunctionId(2), 600), Some(Generation::New));
    }
}

/root/repo/target/release/deps/fig12_single_gen_ecolife-5ad72c95c1a66e0c.d: crates/bench/benches/fig12_single_gen_ecolife.rs Cargo.toml

/root/repo/target/release/deps/libfig12_single_gen_ecolife-5ad72c95c1a66e0c.rmeta: crates/bench/benches/fig12_single_gen_ecolife.rs Cargo.toml

crates/bench/benches/fig12_single_gen_ecolife.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Region study (Fig. 14): how the grid's carbon-intensity profile
//! changes what EcoLife does — and what it saves.
//!
//! Historically this was five separate simulations, one per grid region
//! (Tennessee, Texas, Florida, New York, California). With per-node
//! carbon-intensity regions it is **one fleet**: five region-tagged
//! sub-fleets concatenated into a ten-node cluster whose engine reads
//! each node's own grid series. This example runs the study both ways —
//!
//! 1. the legacy sweep: five standalone single-region runs;
//! 2. the multi-region fleet: one run of a `PartitionedScheduler`
//!    (isolated per-region sub-fleets) over the merged workload —
//!
//! and asserts they agree region by region (the records are pinned
//! bit-identical in `tests/regions.rs`). It then drops the partitions
//! and lets one EcoLife place freely across all ten nodes: cross-region
//! placement, the new scenario axis.
//!
//! Run with: `cargo run --release --example carbon_region_study`

use ecolife::core::runner::parallel_map;
use ecolife::prelude::*;

fn main() {
    let trace = SynthTraceConfig {
        n_functions: 32,
        duration_min: 720, // half a day: covers the solar ramp in CAL
        seed: 1234,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci_minutes = 760usize;
    let sub_fleet = |region: Region| {
        skus::fleet_a()
            .with_uniform_keepalive_budget_mib(12 * 1024)
            .with_uniform_region(region)
    };
    let region_ci = |region: Region| CarbonIntensityTrace::synthetic(region, ci_minutes, 1234);

    // ---- 1. The legacy sweep: five standalone single-region runs. ----
    let legacy = parallel_map(Region::ALL.to_vec(), |region| {
        let fleet = sub_fleet(region);
        let ci = region_ci(region);
        let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
        let (eco, _) = run_scheme(&trace, &ci, &fleet, &mut ecolife);
        let (fixed, _) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
        let (oracle, _) = run_scheme(
            &trace,
            &ci,
            &fleet,
            &mut BruteForce::oracle(fleet.clone(), ci.clone()),
        );
        (region, ci.mean(), eco, fixed, oracle)
    });

    // ---- 2. The same study from ONE multi-region fleet run. ----------
    let bundle = CiBundle::new(
        Region::ALL
            .iter()
            .map(|&r| (r, region_ci(r)))
            .collect::<Vec<_>>(),
    )
    .expect("five distinct regions, equal spans");
    let partitioned = |make: &dyn Fn(Region) -> Box<dyn Scheduler + Send>| {
        PartitionedScheduler::new(
            Region::ALL
                .iter()
                .map(|&r| Partition {
                    fleet: sub_fleet(r),
                    ci: region_ci(r),
                    trace: trace.clone(),
                    scheduler: make(r),
                })
                .collect(),
        )
    };
    let mut eco_sched = partitioned(&|r| {
        Box::new(EcoLife::new(sub_fleet(r), EcoLifeConfig::default())) as Box<dyn Scheduler + Send>
    });
    let merged_trace = eco_sched.merged_trace();
    let merged_fleet = eco_sched.merged_fleet();
    let eco_run = Simulation::try_new_regional(&merged_trace, &bundle, merged_fleet.clone())
        .expect("bundle covers every region and the workload span")
        .run(&mut eco_sched);
    let eco_by_region = eco_sched.split_summaries(&eco_run);

    let mut fixed_sched =
        partitioned(&|_| Box::new(FixedPolicy::new_only()) as Box<dyn Scheduler + Send>);
    let fixed_run = Simulation::try_new_regional(&merged_trace, &bundle, merged_fleet.clone())
        .expect("same bundle, same span")
        .run(&mut fixed_sched);
    let fixed_by_region = fixed_sched.split_summaries(&fixed_run);

    println!(
        "Fig. 14 from one {}-node multi-region fleet run ({} invocations replayed once):\n",
        merged_fleet.len(),
        eco_run.invocations()
    );
    println!(
        "{:<6} {:>9} {:>14} {:>14} {:>16} {:>14}",
        "region", "mean CI", "EcoLife CO2 g", "NewOnly CO2 g", "saving vs fixed", "gap to Oracle"
    );
    for (p, (region, mean_ci, eco_legacy, fixed_legacy, oracle)) in legacy.iter().enumerate() {
        let eco = &eco_by_region[p];
        let fixed = &fixed_by_region[p];
        // The single fleet run must reproduce the legacy sweep exactly —
        // same records, same grams, same milliseconds.
        assert!(
            (eco.total_carbon_g - eco_legacy.total_carbon_g).abs() < 1e-9
                && eco.total_service_ms == eco_legacy.total_service_ms,
            "{region}: multi-region EcoLife diverged from the standalone run"
        );
        assert!(
            (fixed.total_carbon_g - fixed_legacy.total_carbon_g).abs() < 1e-9,
            "{region}: multi-region New-Only diverged from the standalone run"
        );
        println!(
            "{:<6} {:>9.0} {:>14.2} {:>14.2} {:>15.1}% {:>13.1}%",
            region.label(),
            mean_ci,
            eco.total_carbon_g,
            fixed.total_carbon_g,
            100.0 * (1.0 - eco.total_carbon_g / fixed.total_carbon_g),
            100.0 * (eco.total_carbon_g / oracle.total_carbon_g - 1.0),
        );
    }
    println!("\n(asserted: every region agrees with its standalone legacy run)");

    // ---- 3. Drop the partitions: cross-region placement. -------------
    let free_fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(12 * 1024);
    let mut free = EcoLife::new(free_fleet.clone(), EcoLifeConfig::default());
    let (free_summary, free_run) = run_scheme_regional(&trace, &bundle, &free_fleet, &mut free)
        .expect("bundle covers the fleet");
    let best_pinned = legacy
        .iter()
        .map(|(r, _, eco, _, _)| (r, eco.total_carbon_g))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "\nCross-region placement (one EcoLife over all ten nodes, grid mix as a decision):\n  \
         free fleet: {:.2} g CO2 | best pinned region ({}): {:.2} g | worst ({}): {:.2} g",
        free_summary.total_carbon_g,
        best_pinned.0.label(),
        best_pinned.1,
        Region::Florida.label(),
        legacy
            .iter()
            .find(|(r, ..)| *r == Region::Florida)
            .map(|(_, _, eco, _, _)| eco.total_carbon_g)
            .unwrap(),
    );
    for (region, g) in free_run.carbon_g_by_region(&free_fleet) {
        if g > 0.0 {
            println!("    {:<4} carries {:>10.2} g", region.label(), g);
        }
    }

    println!(
        "\nCarbon-heavy flat grids (FLA, TEN) reward aggressive keep-alive on old\n\
         hardware; solar-swing grids (CAL) reward re-timing keep-alive against\n\
         the duck curve. One multi-region fleet now expresses all of it — and a\n\
         scheduler free to place across grids routes work onto the cleanest one."
    );
}

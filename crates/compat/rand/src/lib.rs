//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_bool`, and `gen_range` over integer and
//! float ranges. The generator behind it is xoshiro256++ seeded through
//! SplitMix64 — the same construction `rand`'s `SmallRng` documents on
//! 64-bit targets.
//!
//! Streams are deterministic per seed (everything the simulator needs) but
//! are *not* bit-compatible with the real `rand` crate; no experiment in
//! this repository depends on a particular stream, only on reproducibility.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, `bool` fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable without parameters (subset of `rand`'s `Standard`).
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3u64..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&f));
            let s = rng.gen_range(0usize..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(4);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&heads), "{heads}");
    }
}

//! Fig. 10 — the Dynamic-PSO ablation: EcoLife with and without the
//! adaptive weights + perception–response mechanism.
//!
//! Paper numbers: without DPSO, EcoLife degrades by 5.6% (service) and
//! 16.9% (carbon). In this reproduction the vanilla swarm freezes onto
//! stale early decisions — losing far more service time (its warm rate
//! collapses); see EXPERIMENTS.md for the deviation discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::{fmt_placement, EvalSetup};
use ecolife_core::EcoLifeConfig;
use std::hint::black_box;

fn print_fig10() {
    let setup = EvalSetup::standard();
    let summaries = vec![
        setup.run(&mut setup.oracle()),
        setup.run(&mut setup.ecolife()),
        setup.run(&mut setup.ecolife_with(EcoLifeConfig::default().without_dynamic_pso())),
    ];
    println!("\n=== Fig. 10: Dynamic-PSO ablation ===");
    let labels = ["Oracle", "EcoLife w/ DPSO", "EcoLife w/o DPSO"];
    for (label, (c, s)) in labels
        .iter()
        .zip(setup.placements(&summaries).iter().zip(&summaries))
    {
        println!(
            "{:<18} {}   warm-rate {:.3}",
            label,
            fmt_placement(c),
            s.warm_rate
        );
    }
    let with = &summaries[1];
    let without = &summaries[2];
    println!(
        "\nw/o DPSO: service {:+.1}%, carbon {:+.1}% relative to full EcoLife (paper: +5.6% / +16.9%)\n",
        100.0 * (without.total_service_ms as f64 / with.total_service_ms as f64 - 1.0),
        100.0 * (without.total_carbon_g / with.total_carbon_g - 1.0)
    );
}

fn bench(c: &mut Criterion) {
    print_fig10();
    let setup = EvalSetup::quick();
    c.bench_function("fig10/ecolife_no_dpso_quick", |b| {
        b.iter(|| {
            black_box(
                setup.run(&mut setup.ecolife_with(EcoLifeConfig::default().without_dynamic_pso())),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

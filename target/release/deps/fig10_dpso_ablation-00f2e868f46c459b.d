/root/repo/target/release/deps/fig10_dpso_ablation-00f2e868f46c459b.d: crates/bench/benches/fig10_dpso_ablation.rs Cargo.toml

/root/repo/target/release/deps/libfig10_dpso_ablation-00f2e868f46c459b.rmeta: crates/bench/benches/fig10_dpso_ablation.rs Cargo.toml

crates/bench/benches/fig10_dpso_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

(function() {
    const implementors = Object.fromEntries([["ecolife_hw",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;&amp;<a class=\"struct\" href=\"ecolife_hw/pair/struct.HardwarePair.html\" title=\"struct ecolife_hw::pair::HardwarePair\">HardwarePair</a>&gt; for <a class=\"struct\" href=\"ecolife_hw/fleet/struct.Fleet.html\" title=\"struct ecolife_hw::fleet::Fleet\">Fleet</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"ecolife_hw/node/enum.Generation.html\" title=\"enum ecolife_hw::node::Generation\">Generation</a>&gt; for <a class=\"struct\" href=\"ecolife_hw/node/struct.NodeId.html\" title=\"struct ecolife_hw::node::NodeId\">NodeId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"struct\" href=\"ecolife_hw/pair/struct.HardwarePair.html\" title=\"struct ecolife_hw::pair::HardwarePair\">HardwarePair</a>&gt; for <a class=\"struct\" href=\"ecolife_hw/fleet/struct.Fleet.html\" title=\"struct ecolife_hw::fleet::Fleet\">Fleet</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1234]}
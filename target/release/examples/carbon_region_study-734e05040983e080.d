/root/repo/target/release/examples/carbon_region_study-734e05040983e080.d: examples/carbon_region_study.rs

/root/repo/target/release/examples/carbon_region_study-734e05040983e080: examples/carbon_region_study.rs

examples/carbon_region_study.rs:

//! Fig. 7 — EcoLife is the closest practical scheme to the Oracle.
//!
//! Paper numbers: EcoLife lands within 7.7% (service time) and 5.5%
//! (carbon) of the Oracle; CO2-Opt / Service-Time-Opt / Energy-Opt each
//! collapse one dimension; New-Only / Old-Only (Fig. 9 companions) pin
//! themselves to a single generation.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::{fmt_placement, EvalSetup};
use std::hint::black_box;

fn print_fig7() {
    let setup = EvalSetup::standard();
    let summaries = vec![
        setup.run(&mut setup.co2_opt()),
        setup.run(&mut setup.oracle()),
        setup.run(&mut setup.ecolife()),
        setup.run(&mut setup.service_time_opt()),
        setup.run(&mut setup.energy_opt()),
    ];
    println!("\n=== Fig. 7: EcoLife vs Oracle and single-objective optima ===");
    let placements = setup.placements(&summaries);
    for c in &placements {
        println!("{}", fmt_placement(c));
    }
    let oracle = &placements[1];
    let ecolife = &placements[2];
    println!(
        "\nEcoLife-to-Oracle gap: service {:+.2} points, carbon {:+.2} points (paper: 7.7 / 5.5)\n",
        ecolife.service_increase_pct - oracle.service_increase_pct,
        ecolife.carbon_increase_pct - oracle.carbon_increase_pct
    );
}

fn bench(c: &mut Criterion) {
    print_fig7();
    let setup = EvalSetup::quick();
    c.bench_function("fig7/ecolife_run_quick", |b| {
        b.iter(|| black_box(setup.run(&mut setup.ecolife())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

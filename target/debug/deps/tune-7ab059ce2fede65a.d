/root/repo/target/debug/deps/tune-7ab059ce2fede65a.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/debug/deps/libtune-7ab059ce2fede65a.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

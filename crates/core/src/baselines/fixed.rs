//! `New-Only` / `Old-Only`: single-generation execution with the
//! OpenWhisk-style fixed 10-minute keep-alive (Sec. V).
//!
//! "Utilizing multi-generation hardware to keep functions alive is not a
//! feature introduced in either the New-Only or Old-Only scheme" — these
//! policies never look at the other generation and never adjust the warm
//! pool (overflows simply drop the keep-alive).

use ecolife_hw::Generation;
use ecolife_sim::{Decision, InvocationCtx, KeepAliveChoice, Scheduler, MINUTE_MS};

/// A fixed single-generation policy.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    generation: Generation,
    keepalive_min: u64,
}

impl FixedPolicy {
    pub fn new(generation: Generation, keepalive_min: u64) -> Self {
        FixedPolicy {
            generation,
            keepalive_min,
        }
    }

    /// The paper's `New-Only` scheme: new hardware, 10-minute keep-alive.
    pub fn new_only() -> Self {
        FixedPolicy::new(Generation::New, 10)
    }

    /// The paper's `Old-Only` scheme.
    pub fn old_only() -> Self {
        FixedPolicy::new(Generation::Old, 10)
    }

    pub fn generation(&self) -> Generation {
        self.generation
    }
}

impl Scheduler for FixedPolicy {
    fn name(&self) -> &'static str {
        match self.generation {
            Generation::New => "New-Only",
            Generation::Old => "Old-Only",
        }
    }

    fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
        Decision {
            exec: self.generation,
            keepalive: (self.keepalive_min > 0).then_some(KeepAliveChoice {
                location: self.generation,
                duration_ms: self.keepalive_min * MINUTE_MS,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_carbon::CarbonIntensityTrace;
    use ecolife_hw::skus;
    use ecolife_sim::Simulation;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    #[test]
    fn names_and_generations() {
        assert_eq!(FixedPolicy::new_only().name(), "New-Only");
        assert_eq!(FixedPolicy::old_only().name(), "Old-Only");
        assert_eq!(FixedPolicy::new_only().generation(), Generation::New);
    }

    #[test]
    fn old_only_never_touches_new_hardware() {
        let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(200.0, 120);
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::old_only());
        assert!(m.records.iter().all(|r| r.exec_location == Generation::Old));
    }

    #[test]
    fn new_only_is_faster_but_dirtier_than_old_only() {
        // The Fig. 9 relationship: Old-Only saves carbon at a service-time
        // cost; New-Only is fast but pays keep-alive carbon on new silicon.
        let trace = SynthTraceConfig {
            n_functions: 16,
            duration_min: 120,
            ..SynthTraceConfig::small(5)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(300.0, 180);
        let m_new =
            Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::new_only());
        let m_old =
            Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::old_only());
        assert!(m_new.total_service_ms() < m_old.total_service_ms());
        assert!(m_new.total_carbon_g() > m_old.total_carbon_g());
    }
}

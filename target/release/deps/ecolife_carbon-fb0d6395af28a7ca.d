/root/repo/target/release/deps/ecolife_carbon-fb0d6395af28a7ca.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/libecolife_carbon-fb0d6395af28a7ca.rlib: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/release/deps/libecolife_carbon-fb0d6395af28a7ca.rmeta: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

/root/repo/target/debug/deps/pool_properties-c065374f3404ac88.d: crates/sim/tests/pool_properties.rs

/root/repo/target/debug/deps/pool_properties-c065374f3404ac88: crates/sim/tests/pool_properties.rs

crates/sim/tests/pool_properties.rs:

/root/repo/target/release/deps/pool_properties-76bf2fa0e07f4519.d: crates/sim/tests/pool_properties.rs

/root/repo/target/release/deps/pool_properties-76bf2fa0e07f4519: crates/sim/tests/pool_properties.rs

crates/sim/tests/pool_properties.rs:

//! Quickstart: schedule a synthetic serverless workload with EcoLife and
//! compare it against the theoretical Oracle and a fixed-keep-alive
//! platform policy.
//!
//! Run with: `cargo run --release --example quickstart`

use ecolife::prelude::*;

fn main() {
    // 1. A workload: 24 synthetic functions drawn from the SeBS catalog,
    //    invoked Azure-style for four simulated hours.
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 240,
        seed: 42,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    println!(
        "trace: {} invocations of {} functions over {:.0} minutes",
        trace.len(),
        trace.catalog().len(),
        trace.horizon_ms() as f64 / 60_000.0
    );

    // 2. An environment: California (CISO) carbon intensity and hardware
    //    the pair-A fleet — a 2016 i3.metal-class node next to a 2020
    //    m5zn-class node, each with a 10-GiB warm pool.
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 300, 42);
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(10 * 1024);

    // 3. Schedulers: EcoLife, the Oracle upper bound, and OpenWhisk-style
    //    fixed keep-alive on the new node only.
    let mut ecolife = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let mut oracle = BruteForce::oracle(fleet.clone(), ci.clone());
    let mut new_only = FixedPolicy::new_only();

    println!(
        "\n{:<10} {:>13} {:>11} {:>10} {:>9}   warm-pool churn",
        "scheme", "service ms", "carbon g", "warm rate", "evicted"
    );
    for (summary, m) in [
        run_scheme(&trace, &ci, &fleet, &mut oracle),
        run_scheme(&trace, &ci, &fleet, &mut ecolife),
        run_scheme(&trace, &ci, &fleet, &mut new_only),
    ] {
        println!(
            "{:<10} {:>13} {:>11.2} {:>10.3} {:>9}   {} expired ({} timeline pops, {} stale, {} scanned)",
            summary.name,
            summary.total_service_ms,
            summary.total_carbon_g,
            summary.warm_rate,
            summary.evicted_functions,
            m.expiry.expired,
            m.expiry.timeline_pops,
            m.expiry.stale_pops,
            m.expiry.scanned,
        );
    }

    println!(
        "\nEcoLife co-optimizes: near-Oracle service time at a fraction of the\n\
         fixed policy's carbon footprint, by choosing keep-alive location and\n\
         period per function with a Dynamic PSO."
    );
}

/root/repo/target/debug/deps/azure_pipeline-cfdaa1e3777709ca.d: tests/azure_pipeline.rs

/root/repo/target/debug/deps/azure_pipeline-cfdaa1e3777709ca: tests/azure_pipeline.rs

tests/azure_pipeline.rs:

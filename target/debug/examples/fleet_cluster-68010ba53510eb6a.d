/root/repo/target/debug/examples/fleet_cluster-68010ba53510eb6a.d: examples/fleet_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_cluster-68010ba53510eb6a.rmeta: examples/fleet_cluster.rs Cargo.toml

examples/fleet_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

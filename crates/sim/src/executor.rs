//! Bounded per-node executors: cores-limited concurrency, measured
//! queueing delay, and admission control.
//!
//! The batch replayer historically let every node serve unlimited
//! simultaneous executions — queuing delay was folded into the fixed
//! `setup_delay_ms` constant. With bounded executors enabled
//! ([`SimConfig::with_bounded_executors`](crate::SimConfig)), each node
//! runs at most [`HardwareNode::executor_slots`](ecolife_hw::HardwareNode)
//! executions at once (one per physical core); arrivals beyond that
//! queue, and arrivals beyond the queue bound are rejected (admission
//! control). The *measured* wait is what feeds the service-time term the
//! placement objective sees, so a queue-aware scheduler balances load as
//! well as carbon.
//!
//! ## Model
//!
//! Virtual clock, arrivals in nondecreasing time. A node's executor is a
//! min-heap of *slot free-at* times (at most `slots` entries — one per
//! occupied core). An admitted execution starts at the arrival instant
//! if a slot is free, else at the earliest free-at time; its wait is
//! `start - t`. A second min-heap tracks the *start* times of admitted
//! but not-yet-started executions — its length is the queue depth the
//! admission bound is checked against. Everything is deterministic in
//! the arrival order, so the sharded engine's thread-invariance and the
//! service ≡ batch stream pins carry over unchanged.

use ecolife_hw::{Fleet, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Knobs for the bounded-executor model. Per-node concurrency is not a
/// knob — it derives from the hardware
/// ([`CpuModel::executor_slots`](ecolife_hw::CpuModel::executor_slots)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Admission bound: how many invocations may wait for a node's
    /// executor at once. An arrival that finds the queue at this depth
    /// is rejected ([`Admission::Rejected`]).
    pub queue_cap: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { queue_cap: 32 }
    }
}

/// Outcome of offering one invocation to a node's bounded executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: execution occupies a slot over
    /// `[start_ms, start_ms + exec_ms)`. `queue_ms == start_ms - t` is 0
    /// when a slot was free on arrival; `depth` is the queue length
    /// *including* this invocation (0 when it started immediately).
    Started {
        start_ms: u64,
        queue_ms: u64,
        depth: u32,
    },
    /// Turned away: the queue already held `depth` waiters (its
    /// configured bound). Nothing was enqueued.
    Rejected { depth: u32 },
}

/// One node's bounded executor.
#[derive(Debug, Clone)]
struct BoundedExecutor {
    /// Concurrency limit (≥ 1; from the node's core count).
    slots: usize,
    /// Free-at times of occupied slots (min-heap; ≤ `slots` entries).
    /// Entries at or before the current instant are pruned by
    /// [`BoundedExecutor::prune`] — a freed core.
    busy: BinaryHeap<Reverse<u64>>,
    /// Start times of admitted executions still waiting for their slot
    /// (min-heap). Its post-prune length is the queue depth.
    pending: BinaryHeap<Reverse<u64>>,
    /// Peak occupied slots observed over the run.
    peak: u32,
}

impl BoundedExecutor {
    fn new(slots: usize) -> Self {
        BoundedExecutor {
            slots: slots.max(1),
            busy: BinaryHeap::new(),
            pending: BinaryHeap::new(),
            peak: 0,
        }
    }

    /// Retire everything finished (or started) by `t`.
    fn prune(&mut self, t: u64) {
        while matches!(self.busy.peek(), Some(&Reverse(at)) if at <= t) {
            self.busy.pop();
        }
        while matches!(self.pending.peek(), Some(&Reverse(at)) if at <= t) {
            self.pending.pop();
        }
    }

    /// The wait a new arrival at `t` would measure (exact once pruned to
    /// `t`): 0 with a free slot, else earliest free-at minus now.
    fn queue_wait_ms(&self, t: u64) -> u64 {
        if self.busy.len() < self.slots {
            0
        } else {
            match self.busy.peek() {
                Some(&Reverse(free_at)) => free_at.saturating_sub(t),
                None => 0,
            }
        }
    }

    fn admit(&mut self, t: u64, exec_ms: u64, queue_cap: usize) -> Admission {
        self.prune(t);
        if self.pending.len() >= queue_cap {
            return Admission::Rejected {
                depth: self.pending.len() as u32,
            };
        }
        let start_ms = if self.busy.len() < self.slots {
            t
        } else {
            let Reverse(free_at) = self.busy.pop().expect("full executor holds slot entries");
            debug_assert!(free_at > t, "pruned heap holds only future free-at times");
            free_at
        };
        self.busy.push(Reverse(start_ms + exec_ms));
        self.peak = self.peak.max(self.busy.len() as u32);
        let queue_ms = start_ms - t;
        if queue_ms > 0 {
            self.pending.push(Reverse(start_ms));
        }
        Admission::Started {
            start_ms,
            queue_ms,
            depth: self.pending.len() as u32,
        }
    }
}

/// One bounded executor per fleet node, indexed by [`NodeId`].
///
/// Owned by the [`Cluster`](crate::Cluster) when
/// [`SimConfig::with_bounded_executors`](crate::SimConfig) is set — in a
/// sharded run each shard's cluster carries its own copy, so a shard's
/// executors see only shard-local load (the determinism pin is service ≡
/// *sequential* batch; sharded replay stays thread-invariant at a fixed
/// shard count but resolves saturation per shard).
#[derive(Debug, Clone)]
pub struct NodeExecutors {
    queue_cap: usize,
    nodes: Vec<BoundedExecutor>,
}

impl NodeExecutors {
    /// One executor per node of `fleet`, concurrency from each node's
    /// core count.
    pub fn new(fleet: &Fleet, config: ExecutorConfig) -> Self {
        NodeExecutors {
            queue_cap: config.queue_cap,
            nodes: fleet
                .iter()
                .map(|n| BoundedExecutor::new(n.executor_slots()))
                .collect(),
        }
    }

    /// Retire every slot freed and every queued start reached by `t`,
    /// on every node. The engine calls this once per arrival, *before*
    /// the scheduler decides, so [`NodeExecutors::queue_wait_ms`] reads
    /// are exact without mutation.
    pub fn advance(&mut self, t: u64) {
        for node in &mut self.nodes {
            node.prune(t);
        }
    }

    /// The wait an arrival at `t` would measure on `node` right now
    /// (exact after [`NodeExecutors::advance`]`(t)`).
    #[inline]
    pub fn queue_wait_ms(&self, node: NodeId, t: u64) -> u64 {
        self.nodes[node.index()].queue_wait_ms(t)
    }

    /// Queue depth on `node` (admitted, not yet started) as of the last
    /// [`NodeExecutors::advance`].
    #[inline]
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.nodes[node.index()].pending.len()
    }

    /// Offer one invocation of `exec_ms` to `node`'s executor at `t`.
    pub fn admit(&mut self, node: NodeId, t: u64, exec_ms: u64) -> Admission {
        let cap = self.queue_cap;
        self.nodes[node.index()].admit(t, exec_ms, cap)
    }

    /// Clear `node`'s executor outright — a crash loses every occupied
    /// slot and queued waiter instantly. The observed peak is kept (it
    /// happened).
    pub fn reset(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        n.busy.clear();
        n.pending.clear();
    }

    /// Per-node peak occupied slots over the run (index = `NodeId`).
    pub fn peaks(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.peak).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::skus;

    fn two_slot_executors(queue_cap: usize) -> NodeExecutors {
        // pair_a nodes have many cores; build a tiny hand-tuned executor
        // set instead so saturation is reachable in a unit test.
        let fleet = Fleet::from(skus::pair_a());
        let mut x = NodeExecutors::new(&fleet, ExecutorConfig { queue_cap });
        for node in &mut x.nodes {
            node.slots = 2;
        }
        x
    }

    #[test]
    fn free_slots_start_immediately() {
        let mut x = two_slot_executors(4);
        let n = NodeId(0);
        assert_eq!(x.queue_wait_ms(n, 0), 0);
        match x.admit(n, 0, 100) {
            Admission::Started {
                start_ms,
                queue_ms,
                depth,
            } => {
                assert_eq!((start_ms, queue_ms, depth), (0, 0, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn saturation_queues_with_measured_wait() {
        let mut x = two_slot_executors(4);
        let n = NodeId(0);
        x.admit(n, 0, 100);
        x.admit(n, 0, 150);
        // Third arrival at t=10: both slots busy; earliest frees at 100.
        x.advance(10);
        assert_eq!(x.queue_wait_ms(n, 10), 90);
        match x.admit(n, 10, 50) {
            Admission::Started {
                start_ms,
                queue_ms,
                depth,
            } => {
                assert_eq!((start_ms, queue_ms, depth), (100, 90, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Fourth at t=20 waits for the 150-finisher.
        x.advance(20);
        assert_eq!(x.queue_wait_ms(n, 20), 130);
        assert_eq!(x.queue_depth(n), 1);
    }

    #[test]
    fn queue_bound_rejects_then_recovers() {
        let mut x = two_slot_executors(1);
        let n = NodeId(1);
        x.admit(n, 0, 1_000);
        x.admit(n, 0, 1_000);
        // Queue capacity 1: first waiter admitted, second rejected.
        assert!(matches!(
            x.admit(n, 0, 10),
            Admission::Started {
                queue_ms: 1_000,
                ..
            }
        ));
        assert_eq!(x.admit(n, 0, 10), Admission::Rejected { depth: 1 });
        // After the waiter starts, admission reopens.
        x.advance(1_000);
        assert_eq!(x.queue_depth(n), 0);
        assert!(matches!(x.admit(n, 1_000, 10), Admission::Started { .. }));
    }

    #[test]
    fn peaks_track_occupied_slots() {
        let mut x = two_slot_executors(4);
        let n = NodeId(0);
        assert_eq!(x.peaks()[0], 0);
        x.admit(n, 0, 100);
        assert_eq!(x.peaks()[0], 1);
        x.admit(n, 0, 100);
        x.admit(n, 0, 100); // queued — still only 2 slots occupied
        assert_eq!(x.peaks(), vec![2, 0]);
    }

    #[test]
    fn reset_clears_slots_and_queue_but_keeps_the_peak() {
        let mut x = two_slot_executors(4);
        let n = NodeId(0);
        x.admit(n, 0, 1_000);
        x.admit(n, 0, 1_000);
        x.admit(n, 0, 10); // queued
        assert_eq!(x.queue_depth(n), 1);
        x.reset(n);
        assert_eq!(x.queue_depth(n), 0);
        assert_eq!(x.queue_wait_ms(n, 1), 0);
        assert_eq!(x.peaks(), vec![2, 0]);
        // Admission restarts from empty.
        assert!(matches!(
            x.admit(n, 1, 10),
            Admission::Started { queue_ms: 0, .. }
        ));
    }

    #[test]
    fn slots_derive_from_cores() {
        let fleet = Fleet::from(skus::pair_a());
        let x = NodeExecutors::new(&fleet, ExecutorConfig::default());
        for (exec, node) in x.nodes.iter().zip(fleet.iter()) {
            assert_eq!(exec.slots, node.executor_slots());
        }
    }
}

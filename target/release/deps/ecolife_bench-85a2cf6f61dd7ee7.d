/root/repo/target/release/deps/ecolife_bench-85a2cf6f61dd7ee7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libecolife_bench-85a2cf6f61dd7ee7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libecolife_bench-85a2cf6f61dd7ee7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

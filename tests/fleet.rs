//! End-to-end integration over an N-node heterogeneous fleet (N ≥ 3):
//! the full pipeline — trace → simulator → schedulers → metrics — with a
//! genuine multi-way placement choice.

use ecolife::prelude::*;
use ecolife::sim::{
    shard_of, AdjustPlan, Decision, InvocationCtx, KeepAliveChoice, OverflowAction, OverflowCtx,
    ShardOptions,
};
use std::collections::BTreeMap;

fn setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 240,
        seed: 31,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 280, 31);
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(8 * 1024);
    (trace, ci, fleet)
}

fn placements_by_node(m: &RunMetrics) -> BTreeMap<NodeId, usize> {
    let mut counts = BTreeMap::new();
    for r in &m.records {
        *counts.entry(r.exec_location).or_insert(0) += 1;
    }
    counts
}

#[test]
fn three_node_fleet_runs_ecolife_and_baselines_end_to_end() {
    let (trace, ci, fleet) = setup();
    assert_eq!(fleet.len(), 3);

    let (eco_sum, eco) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    let (pin_sum, pinned) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut FixedPolicy::pinned(fleet.newest(), 10),
    );
    let (oracle_sum, oracle) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::oracle(fleet.clone(), ci.clone()),
    );

    // Every scheme accounts every invocation, with placements inside the
    // fleet.
    for (sum, m) in [
        (&eco_sum, &eco),
        (&pin_sum, &pinned),
        (&oracle_sum, &oracle),
    ] {
        assert_eq!(sum.invocations, trace.len());
        assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
        assert!(sum.total_carbon_g > 0.0);
        assert!(
            (sum.operational_g + sum.embodied_g - sum.total_carbon_g).abs() < 1e-6,
            "{}: carbon split does not add up",
            sum.name
        );
    }

    // The pinned baseline never leaves its node; the fleet-aware schemes
    // actually exercise the multi-way choice.
    assert_eq!(placements_by_node(&pinned).len(), 1);
    assert!(
        placements_by_node(&oracle).len() >= 2,
        "oracle never used a second node: {:?}",
        placements_by_node(&oracle)
    );
    assert!(
        placements_by_node(&eco).len() >= 2,
        "EcoLife never used a second node: {:?}",
        placements_by_node(&eco)
    );

    // Keeping functions warm beyond one node pays: EcoLife must beat the
    // pinned-newest fixed policy on carbon without giving up much
    // service time (the Fig. 9 relationship, fleet edition).
    assert!(eco_sum.total_carbon_g < pin_sum.total_carbon_g);
    assert!(eco_sum.total_service_ms as f64 <= 1.15 * pin_sum.total_service_ms as f64);
}

#[test]
fn mid_node_restriction_runs_on_the_three_node_fleet() {
    let (trace, ci, fleet) = setup();
    let mid = NodeId(1);
    let (sum, m) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default().restricted_to(mid)),
    );
    assert_eq!(sum.invocations, trace.len());
    assert!(m.records.iter().all(|r| r.exec_location == mid));
}

#[test]
fn oracle_dominance_holds_on_the_three_node_fleet() {
    let (trace, ci, fleet) = setup();
    let (st, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::service_time_opt(fleet.clone(), ci.clone()),
    );
    let (co2, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::co2_opt(fleet.clone(), ci.clone()),
    );
    let (eco, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    // The brute-force anchors still anchor when the enumeration spans
    // three nodes.
    assert!(st.total_service_ms <= eco.total_service_ms);
    assert!(co2.total_carbon_g <= eco.total_carbon_g * 1.001);
}

/// Pins everything to the fleet's newest node; on overflow, displaces
/// every resident and retries them against the given transfer ranking
/// (`None` = the engine's default: every other node in id order).
struct OverflowWith {
    transfer_targets: Option<Vec<NodeId>>,
}

impl Scheduler for OverflowWith {
    fn name(&self) -> &'static str {
        "overflow-with"
    }
    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        let newest = ctx.cluster.fleet().newest();
        Decision {
            exec: newest,
            keepalive: Some(KeepAliveChoice {
                location: newest,
                duration_ms: 10 * MINUTE_MS,
            }),
        }
    }
    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        let resident: Vec<FunctionId> = ctx
            .cluster
            .pool(ctx.location)
            .iter()
            .map(|c| c.func)
            .collect();
        OverflowAction::Adjust(AdjustPlan {
            displace: resident,
            place_incoming: true,
            transfer_targets: self.transfer_targets.clone(),
        })
    }
}

#[test]
fn transfer_ranking_beats_greedy_id_order_on_an_adversarial_fleet() {
    // Adversarial node numbering: the mid-generation m5.metal sits at
    // node 0 and the cheap-to-keep-warm i3.metal at node 1. A displaced
    // container's *greedy* default target (lowest id first) is node 0,
    // but the carbon-optimal target — what `CostModel::transfer_ranking`
    // computes and EcoLife hands the engine — is node 1.
    let fleet = skus::fleet_of(&[Sku::M5Metal, Sku::I3Metal, Sku::M5znMetal])
        .with_uniform_keepalive_budget_mib(512);
    let ci = CarbonIntensityTrace::constant(300.0, 120);
    let cost = CostModel::new(fleet.clone(), CarbonModel::default(), 0.5, 0.5, 50, 600_000);

    // The two orderings genuinely disagree on the first-choice target.
    let ranked = cost.transfer_ranking(NodeId(2), &cost.uniform_ci(300.0));
    let greedy = fleet.transfer_candidates(NodeId(2));
    assert_eq!(ranked, vec![NodeId(1), NodeId(0)]);
    assert_eq!(greedy, vec![NodeId(0), NodeId(1)]);
    assert_ne!(ranked[0], greedy[0]);

    // Two 512-MiB functions both kept alive on node 2 (pool fits one):
    // the second keep-alive displaces the first.
    let catalog = WorkloadCatalog::new(vec![
        FunctionProfile::new("a", 1_000, 2_000, 512, 0.5),
        FunctionProfile::new("b", 1_000, 2_000, 512, 0.5),
    ]);
    let trace = Trace::new(
        catalog,
        vec![
            Invocation {
                func: FunctionId(0),
                t_ms: 0,
            },
            Invocation {
                func: FunctionId(1),
                t_ms: 10_000,
            },
        ],
    );

    let run = |targets: Option<Vec<NodeId>>| {
        Simulation::new(&trace, &ci, fleet.clone()).run(&mut OverflowWith {
            transfer_targets: targets,
        })
    };
    let with_ranking = run(Some(ranked));
    let with_greedy = run(None);

    // Both transfer exactly one container, to different hosts: the
    // ranking lands it on the i3 (node 1), greedy on the m5 (node 0).
    for m in [&with_ranking, &with_greedy] {
        assert_eq!(m.transfers, 1);
        assert_eq!(m.evicted_functions, 0);
    }
    assert!(with_ranking.keepalive_g_by_node[1] > 0.0);
    assert_eq!(with_ranking.keepalive_g_by_node[0], 0.0);
    assert!(with_greedy.keepalive_g_by_node[0] > 0.0);
    assert_eq!(with_greedy.keepalive_g_by_node[1], 0.0);

    // And the carbon-optimal target really is cheaper: same trace, same
    // warm outcomes, lower total keep-alive carbon.
    assert_eq!(with_ranking.warm_starts(), with_greedy.warm_starts());
    assert!(
        with_ranking.total_keepalive_carbon_g() < with_greedy.total_keepalive_carbon_g(),
        "ranked {} g vs greedy {} g",
        with_ranking.total_keepalive_carbon_g(),
        with_greedy.total_keepalive_carbon_g()
    );
}

/// Pins everything to node 2, keep-alive on node 1 (the carbon-best
/// keep-alive host of the adversarial fleet); overflow drops.
struct KeepOnOne;
impl Scheduler for KeepOnOne {
    fn name(&self) -> &'static str {
        "keep-on-one"
    }
    fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
        Decision {
            exec: NodeId(2),
            keepalive: Some(KeepAliveChoice {
                location: NodeId(1),
                duration_ms: 10 * MINUTE_MS,
            }),
        }
    }
}

/// Adversarial cross-shard overflow (ISSUE 3): two functions living in
/// *different* shards both claim the last (only) 512-MiB slot on the
/// carbon-best node in the same reconciliation period. Each shard admits
/// against a start-of-period snapshot that shows the node empty, so both
/// succeed optimistically; the reconciliation pass must then resolve the
/// overcommit by the documented tie-break — **youngest `warm_since_ms`
/// revoked first, ties broken against the higher `FunctionId`** — and
/// retry the loser on the remaining nodes in id order.
#[test]
fn cross_shard_contention_resolves_by_the_documented_tie_break() {
    // Ids 0 and b hash to different halves of a 2-way shard split; both
    // arrive at t = 0 with identical profiles, so their containers'
    // `warm_since_ms` tie exactly and only the id breaks the tie.
    let a = FunctionId(0);
    let b = (1..8u32)
        .map(FunctionId)
        .find(|&f| shard_of(f, 2) != shard_of(a, 2))
        .expect("some small id lands in the other shard");
    let catalog = WorkloadCatalog::new(
        (0..=b.0)
            .map(|i| FunctionProfile::new(&format!("f{i}"), 1_000, 2_000, 512, 0.5))
            .collect(),
    );
    let trace = Trace::new(
        catalog,
        vec![
            Invocation { func: a, t_ms: 0 },
            Invocation { func: b, t_ms: 0 },
        ],
    );
    let ci = CarbonIntensityTrace::constant(300.0, 120);
    // Node 1 (i3.metal) is the cheap keep-alive host; every pool fits
    // exactly one 512-MiB container.
    let fleet = skus::fleet_of(&[Sku::M5Metal, Sku::I3Metal, Sku::M5znMetal])
        .with_uniform_keepalive_budget_mib(512);
    let sim = Simulation::new(&trace, &ci, fleet.clone());

    // Sequential reference: the second keep-alive sees a full pool and
    // is dropped (the scheduler's overflow action) — no contention
    // machinery involved.
    let sequential = sim.run(&mut KeepOnOne);
    assert_eq!(sequential.evicted_functions, 1);
    assert_eq!(sequential.transfers, 0);
    assert_eq!(sequential.records[1].keepalive_carbon.total_g(), 0.0);

    // Sharded: both admissions survive the period optimistically; the
    // reconciliation pass revokes exactly one and transfers it.
    let run = |threads: usize| {
        sim.run_sharded(|_| KeepOnOne, &ShardOptions::new(2).with_threads(threads))
    };
    let m = run(1);
    assert_eq!(m.reconcile_revocations, 1, "exactly one admission revoked");
    assert_eq!(m.transfers, 1, "the loser transfers instead of dying");
    assert_eq!(m.evicted_functions, 0);

    // The tie-break picked the higher id: function a's keep-alive is
    // untouched (bit-identical to its sequential charge on node 1),
    // function b's is split across node 1 (pre-revocation stay) and
    // node 0 (the first transfer candidate in id order with headroom).
    let ia = usize::from(m.records[0].func != a);
    let (ra, rb) = (&m.records[ia], &m.records[1 - ia]);
    assert_eq!(ra.func, a);
    assert_eq!(
        ra.keepalive_carbon, sequential.records[0].keepalive_carbon,
        "the surviving admission must be charged exactly like the sequential run"
    );
    assert!(
        rb.keepalive_carbon.total_g() > 0.0,
        "the revoked keep-alive still pays for its stay"
    );
    assert!(m.keepalive_g_by_node[0] > 0.0, "transfer landed on node 0");
    assert!(m.keepalive_g_by_node[1] > 0.0);
    assert_eq!(m.keepalive_g_by_node[2], 0.0);
    // Post-reconciliation occupancy respects every budget.
    for (&peak, node) in m.ledger_peak_mib.iter().zip(fleet.iter()) {
        assert!(peak <= node.keepalive_mem_mib);
    }

    // And the resolution is identical however many workers run it.
    let m2 = run(2);
    assert_eq!(m.records, m2.records);
    assert_eq!(m.keepalive_g_by_node, m2.keepalive_g_by_node);
    assert_eq!(m.reconcile_revocations, m2.reconcile_revocations);
}

#[test]
fn four_node_fleet_with_duplicate_skus_runs() {
    // Horizontal scale-out: two m5zn nodes next to two older ones. The
    // duplicate SKU gives the scheduler a second identical pool to
    // overflow into.
    let fleet = skus::fleet_of(&[Sku::I3Metal, Sku::M5Metal, Sku::M5znMetal, Sku::M5znMetal])
        .with_uniform_keepalive_budget_mib(2 * 1024);
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 90,
        seed: 13,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::constant(300.0, 120);
    let (sum, m) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    assert_eq!(sum.invocations, trace.len());
    assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
    assert!(sum.warm_rate > 0.0);
}

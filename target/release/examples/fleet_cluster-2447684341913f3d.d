/root/repo/target/release/examples/fleet_cluster-2447684341913f3d.d: examples/fleet_cluster.rs Cargo.toml

/root/repo/target/release/examples/libfleet_cluster-2447684341913f3d.rmeta: examples/fleet_cluster.rs Cargo.toml

examples/fleet_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/ecolife_trace-28552633a8ab3d32.d: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libecolife_trace-28552633a8ab3d32.rmeta: crates/trace/src/lib.rs crates/trace/src/azure.rs crates/trace/src/invocation.rs crates/trace/src/stats.rs crates/trace/src/synth.rs crates/trace/src/workload.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/azure.rs:
crates/trace/src/invocation.rs:
crates/trace/src/stats.rs:
crates/trace/src/synth.rs:
crates/trace/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! §VI-A decision-making overhead — the paper bounds EcoLife's
//! decision-making at < 0.4% of service time and < 1.2% of carbon.
//!
//! Criterion times a single KDM+EPDM decision step (the per-invocation
//! work EcoLife adds to the platform's critical path) and a full
//! simulated run reports the end-to-end overhead fraction.

use criterion::{criterion_group, criterion_main, Criterion};
use ecolife_bench::EvalSetup;
use ecolife_core::run_scheme;
use std::hint::black_box;

fn print_overhead() {
    let setup = EvalSetup::standard();
    let (sum, m) = run_scheme(&setup.trace, &setup.ci, &setup.fleet, &mut setup.ecolife());
    println!("\n=== §VI-A: decision-making overhead ===");
    println!(
        "invocations: {}, total decision time: {:.1} ms, mean {:.1} µs/decision",
        sum.invocations,
        m.decision_overhead_ns as f64 / 1e6,
        m.decision_overhead_ns as f64 / 1e3 / sum.invocations.max(1) as f64
    );
    println!(
        "overhead fraction of service time: {:.4}% (paper bound: < 0.4%)\n",
        100.0 * sum.decision_overhead_fraction
    );
}

fn bench(c: &mut Criterion) {
    print_overhead();
    // Time a full quick run per iteration — dominated by decide() calls —
    // which is the stable, criterion-friendly proxy for per-decision cost.
    let setup = EvalSetup::quick();
    c.bench_function("overhead/ecolife_decide_path", |b| {
        b.iter(|| black_box(setup.run(&mut setup.ecolife())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

/root/repo/target/release/deps/rand-fe539bbb5b963c44.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-fe539bbb5b963c44.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-fe539bbb5b963c44.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

/root/repo/target/debug/deps/fig1_keepalive_carbon-2ba49f3cc9958a2a.d: crates/bench/benches/fig1_keepalive_carbon.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_keepalive_carbon-2ba49f3cc9958a2a.rmeta: crates/bench/benches/fig1_keepalive_carbon.rs Cargo.toml

crates/bench/benches/fig1_keepalive_carbon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Deterministic fault injection + graceful degradation (ISSUE 10).
//!
//! Pins on the chaos-replay contract:
//!
//! 1. **Chaos ≡ chaos, everywhere** — the `chaos_day` scenario (CI
//!    outage → degraded decisions, partition → transfer retries, two
//!    crashes → ungraceful warm-pool loss) replays bit-identically
//!    (records, stream, chain tip) sequential vs `run_sharded` at
//!    shards {1, 2, 8} × threads {1, 2, 4}, and through the live
//!    service at producer counts {1, 2, 4}.
//! 2. **The counters actually fire** — `lost_warm_mib`,
//!    `degraded_decisions`, `transfer_retries`, and `stale_ci_minutes`
//!    are all non-zero under the chaos timeline, and exactly zero
//!    under the empty plan.
//! 3. **Leave ∘ crash does not double-drain** — a membership leave
//!    targeting an already-crashed node is a no-op on its (already
//!    empty, already settled) warm pool.
//! 4. **Zero-duration faults are no-ops** — property-tested: a plan
//!    whose every fault has an empty span produces records, metrics,
//!    and a chain tip bit-equal to the fault-free run.

use ecolife::golden::{chaos_day_faults, chaos_day_parts, ChaosScheduler};
use ecolife::prelude::*;
use ecolife::sim::MINUTE_MS;
use ecolife::telemetry::diff::first_divergence;
use proptest::prelude::*;

fn chaos_scheduler(fleet: &Fleet, _cost: TransferCost) -> ChaosScheduler {
    ChaosScheduler::new(fleet)
}

#[test]
fn chaos_run_is_bit_identical_sequential_vs_sharded() {
    let (trace, bundle, fleet, cost) = chaos_day_parts();
    let config = SimConfig::default().with_transfer_cost(cost);

    let mut seq_sink = CaptureSink::default();
    let seq = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .with_faults(chaos_day_faults())
        .run_with_sink(&mut chaos_scheduler(&fleet, cost), &mut seq_sink);

    // The scenario must actually exercise every degradation surface —
    // a chaos run where nothing went wrong pins nothing.
    assert!(seq.lost_warm_mib > 0, "crashes must lose warm state");
    assert!(
        seq.degraded_decisions > 0,
        "the CI outage must out-stale the policy bound"
    );
    assert!(
        seq.transfer_retries > 0,
        "the partition must block displacement transfers"
    );
    assert!(seq.stale_ci_minutes > 0);

    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 4] {
            let mut sink = CaptureSink::default();
            let m = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .unwrap()
                .with_config(config)
                .with_faults(chaos_day_faults())
                .run_sharded_with_sink(
                    |_| chaos_scheduler(&fleet, cost),
                    &ShardOptions::new(shards).with_threads(threads),
                    &mut sink,
                );
            assert_eq!(
                m.reconcile_revocations, 0,
                "{shards}x{threads}: optimistic admission must stay consistent"
            );
            assert_eq!(m.records, seq.records, "{shards}x{threads}: records");
            assert_eq!(m.lost_warm_mib, seq.lost_warm_mib);
            assert_eq!(m.crash_rejected, seq.crash_rejected);
            assert_eq!(m.stale_ci_minutes, seq.stale_ci_minutes);
            assert_eq!(m.degraded_decisions, seq.degraded_decisions);
            assert_eq!(m.transfer_retries, seq.transfer_retries);
            if let Some(d) = first_divergence(&seq_sink.lines(), &sink.lines()) {
                panic!("stream diverged at {shards} shards x {threads} threads: {d:?}");
            }
            assert_eq!(sink.tip(), seq_sink.tip());
        }
    }
}

#[test]
fn chaos_service_matches_batch_at_any_producer_count() {
    let (trace, bundle, fleet, cost) = chaos_day_parts();
    let config = SimConfig::default().with_transfer_cost(cost);

    let mut batch_sink = CaptureSink::default();
    let batch = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .with_faults(chaos_day_faults())
        .run_with_sink(&mut chaos_scheduler(&fleet, cost), &mut batch_sink);

    let all = trace.invocations().to_vec();
    for producers in [1usize, 2, 4] {
        let (handles, source) = live_lanes(producers, 16);
        let chunk = all.len().div_ceil(producers);
        let (live, live_sink) = std::thread::scope(|scope| {
            for (handle, part) in handles.into_iter().zip(all.chunks(chunk)) {
                scope.spawn(move || {
                    for &inv in part {
                        handle.send(inv).unwrap();
                    }
                });
            }
            let mut sink = CaptureSink::default();
            let metrics =
                Service::try_new_regional(trace.catalog().clone(), &bundle, fleet.clone())
                    .unwrap()
                    .with_config(config)
                    .with_faults(chaos_day_faults())
                    .serve_with_sink(source, &mut chaos_scheduler(&fleet, cost), &mut sink)
                    .unwrap();
            (metrics, sink)
        });
        assert_eq!(
            live.records, batch.records,
            "records diverged at {producers} producers"
        );
        assert_eq!(live.lost_warm_mib, batch.lost_warm_mib);
        assert_eq!(live.crash_rejected, batch.crash_rejected);
        assert_eq!(live.stale_ci_minutes, batch.stale_ci_minutes);
        assert_eq!(live.degraded_decisions, batch.degraded_decisions);
        assert_eq!(live.transfer_retries, batch.transfer_retries);
        if let Some(d) = first_divergence(&batch_sink.lines(), &live_sink.lines()) {
            panic!("stream diverged at {producers} producers: {d:?}");
        }
        assert_eq!(live_sink.tip(), batch_sink.tip());
    }
}

#[test]
fn empty_fault_plan_is_byte_identical_to_the_fault_free_engine() {
    let (trace, bundle, fleet, cost) = chaos_day_parts();
    let config = SimConfig::default().with_transfer_cost(cost);

    let mut plain_sink = CaptureSink::default();
    let plain = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .run_with_sink(&mut chaos_scheduler(&fleet, cost), &mut plain_sink);

    let mut faulted_sink = CaptureSink::default();
    let faulted = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .with_faults(FaultPlan::default())
        .run_with_sink(&mut chaos_scheduler(&fleet, cost), &mut faulted_sink);

    assert_eq!(plain.records, faulted.records);
    assert_eq!(plain_sink.lines(), faulted_sink.lines());
    assert_eq!(faulted.lost_warm_mib, 0);
    assert_eq!(faulted.crash_rejected, 0);
    assert_eq!(faulted.stale_ci_minutes, 0);
    assert_eq!(faulted.degraded_decisions, 0);
    assert_eq!(faulted.transfer_retries, 0);
}

#[test]
fn membership_leave_of_a_crashed_node_does_not_double_drain() {
    let (trace, bundle, fleet, cost) = chaos_day_parts();
    let config = SimConfig::default().with_transfer_cost(cost);
    let crash_at = 10 * MINUTE_MS;

    // Crash node 1 (the fleet's fastest Tennessee node) at minute 10,
    // then have the membership plan order the same node out at the same
    // instant. Ties apply membership first, so the crash lands on a
    // node the membership pass already deactivated — and the crash, not
    // the leave, must own the warm-pool loss: the leave's priced
    // migration drain would *transfer* residents, a crash loses them.
    let faults = FaultPlan::default().crash(NodeId(1), crash_at, 40 * MINUTE_MS);
    let membership = MembershipPlan::default().leave(crash_at, NodeId(1));

    let crash_only = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .with_faults(faults.clone())
        .run(&mut chaos_scheduler(&fleet, cost));
    assert!(crash_only.lost_warm_mib > 0, "node 1 must be warm by t=10m");

    let mut both_sink = CaptureSink::default();
    let both = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(config)
        .with_faults(faults)
        .with_membership(membership)
        .run_with_sink(&mut chaos_scheduler(&fleet, cost), &mut both_sink);

    // The loss is counted exactly once. A leave that drained first
    // would migrate the residents away and leave the crash an empty
    // pool (lost_warm_mib == 0); a crash followed by a re-drain would
    // double-settle. Either way this equality breaks.
    assert_eq!(both.lost_warm_mib, crash_only.lost_warm_mib);

    // And the leave's priced migration drain must not have fired at
    // all: no Transferred events at the crash instant.
    let needle = format!("\"t_ms\":{crash_at}");
    assert!(
        !both_sink
            .lines()
            .iter()
            .any(|l| l.contains("\"type\":\"Transferred\"") && l.contains(&needle)),
        "membership leave migrated residents off a crashed node"
    );
}

fn any_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Tennessee),
        Just(Region::Texas),
        Just(Region::Florida),
        Just(Region::NewYork),
        Just(Region::Caiso),
    ]
}

/// Any fault whose span has zero duration, anywhere on the timeline.
fn zero_duration_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u32..10, 0u64..3_600_000).prop_map(|(n, t)| Fault::NodeCrash {
            node: NodeId(n),
            at_ms: t,
            recover_at_ms: t,
        }),
        (any_region(), 0u64..3_600_000).prop_map(|(region, t)| Fault::CiOutage {
            region,
            from_ms: t,
            to_ms: t,
        }),
        (any_region(), any_region(), 0u64..3_600_000).prop_map(|(a, b, t)| Fault::Partition {
            regions: vec![a, b],
            from_ms: t,
            to_ms: t,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A plan made only of zero-duration faults is a structural no-op:
    /// the run’s records, fault counters, full event stream, and chain
    /// tip are bit-equal to the fault-free run.
    #[test]
    fn zero_duration_faults_are_noops(
        faults in proptest::prop::collection::vec(zero_duration_fault(), 1..6),
        seed in 0u64..1_000,
    ) {
        let trace = SynthTraceConfig {
            n_functions: 6,
            duration_min: 20,
            seed,
            ..Default::default()
        }
        .generate(&WorkloadCatalog::sebs());
        let bundle = CiBundle::synthetic_all(30, seed);
        let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(2 * 1024);

        let plan = FaultPlan::try_new(faults).expect("zero-duration spans are valid");
        prop_assert!(plan.is_empty());

        let mut base_sink = CaptureSink::default();
        let base = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .run_with_sink(&mut ChaosScheduler::new(&fleet), &mut base_sink);

        let mut faulted_sink = CaptureSink::default();
        let faulted = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
            .unwrap()
            .with_faults(plan)
            .run_with_sink(&mut ChaosScheduler::new(&fleet), &mut faulted_sink);

        prop_assert_eq!(base.records, faulted.records);
        prop_assert_eq!(faulted.lost_warm_mib, 0);
        prop_assert_eq!(faulted.crash_rejected, 0);
        prop_assert_eq!(faulted.stale_ci_minutes, 0);
        prop_assert_eq!(faulted.degraded_decisions, 0);
        prop_assert_eq!(faulted.transfer_retries, 0);
        prop_assert_eq!(base.evicted_functions, faulted.evicted_functions);
        prop_assert_eq!(base_sink.lines(), faulted_sink.lines());
        prop_assert_eq!(base_sink.tip(), faulted_sink.tip());
    }
}

/root/repo/target/debug/deps/ecolife_pso-9090eedf88f6d885.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/debug/deps/ecolife_pso-9090eedf88f6d885: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

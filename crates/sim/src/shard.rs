//! Sharded cluster state: the types behind
//! [`Simulation::run_sharded`](crate::Simulation::run_sharded).
//!
//! Per-function state (warm containers, scheduler/predictor state) never
//! crosses a `FunctionId` boundary, so the trace is partitioned by
//! function hash into [`shard_of`] shards, each owning one
//! [`Cluster`](crate::Cluster) (a warm pool per fleet node) and one
//! [`RunMetrics`] accumulator, replayed in parallel. The single
//! cross-shard interaction — node memory capacity — goes through the
//! [`MemoryLedger`]:
//!
//! * during a period, every shard admits keep-alives against a
//!   *start-of-period snapshot* of the other shards' per-node bytes (set
//!   as each pool's `external_used_mib`), never against live cross-shard
//!   state — so its decisions are a pure function of the snapshot and
//!   its own sub-trace, bit-identical at any thread count;
//! * at each period boundary the coordinator runs a deterministic
//!   reconciliation pass — expire lapsed containers, then, on any node
//!   over capacity, revoke optimistically admitted containers (youngest
//!   `warm_since_ms` first, ties broken against the higher
//!   `FunctionId`) and retry them against the remaining nodes in id
//!   order (transfer), else evict — and publishes every shard's
//!   post-pass usage into the ledger's atomic cells, from which all
//!   workers then read their snapshots concurrently.
//!
//! After every reconciliation, per-node occupancy is at or under
//! capacity ([`RunMetrics::ledger_peak_mib`] records the post-pass
//! peaks). When shards never contend for a node, no revocation happens
//! and the sharded replay is record-for-record identical to the
//! sequential engine.

use crate::metrics::{InvocationRecord, RunMetrics};
use ecolife_carbon::CarbonFootprint;
use ecolife_hw::NodeId;
use ecolife_trace::FunctionId;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shard owning `func` when the cluster is split `n_shards` ways.
///
/// The [`splitmix64`](ecolife_trace::splitmix64) finalizer over the
/// golden-ratio-offset id: consecutive function ids spread uniformly,
/// and the assignment depends only on `(func, n_shards)` — never on
/// thread count or trace content.
pub fn shard_of(func: FunctionId, n_shards: usize) -> usize {
    assert!(n_shards > 0, "need at least one shard");
    let x = ecolife_trace::splitmix64((func.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15));
    (x % n_shards as u64) as usize
}

/// Knobs of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of `FunctionId`-hash shards (≥ 1; `1` degenerates to the
    /// sequential semantics, reconciliation passes included but inert).
    pub shards: usize,
    /// Reconciliation period (simulated ms): the granularity at which
    /// cross-shard memory pressure becomes visible and over-capacity
    /// nodes are reconciled. Defaults to one minute (the carbon-intensity
    /// resolution).
    pub period_ms: u64,
    /// Worker-thread override for the shard fan-out; `None` inherits
    /// [`available_parallelism`](std::thread::available_parallelism).
    /// Results are bit-identical at any value — tests pin 1/2/4 workers
    /// to prove it.
    pub threads: Option<usize>,
}

impl ShardOptions {
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardOptions {
            shards,
            period_ms: crate::MINUTE_MS,
            threads: None,
        }
    }

    pub fn with_period_ms(mut self, period_ms: u64) -> Self {
        assert!(period_ms > 0, "period must be positive");
        self.period_ms = period_ms;
        self
    }

    /// Force the worker-thread count (see [`ShardOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = Some(threads);
        self
    }
}

/// Lock-free per-`NodeId` memory accounting across shards.
///
/// One atomic cell per `(shard, node)`. The coordinator stores every
/// shard's post-reconciliation usage between periods (single writer,
/// workers parked); all worker threads then load their cross-shard
/// snapshots concurrently at the start of the period. Relaxed ordering
/// suffices: the spawn/join edges of the period's thread scope order
/// the stores before every load, so the values read are deterministic.
pub(crate) struct MemoryLedger {
    n_nodes: usize,
    cells: Vec<AtomicU64>,
}

impl MemoryLedger {
    pub(crate) fn new(n_shards: usize, n_nodes: usize) -> Self {
        MemoryLedger {
            n_nodes,
            cells: (0..n_shards * n_nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publish `shard`'s current per-node usage as a full snapshot. The
    /// engine now maintains the cells incrementally via
    /// [`MemoryLedger::adjust`]; the snapshot form remains as the test
    /// reference the deltas are checked against.
    #[cfg(test)]
    pub(crate) fn publish(&self, shard: usize, used_mib_by_node: &[u64]) {
        debug_assert_eq!(used_mib_by_node.len(), self.n_nodes);
        for (node, &used) in used_mib_by_node.iter().enumerate() {
            self.cells[shard * self.n_nodes + node].store(used, Ordering::Relaxed);
        }
    }

    /// Apply a signed occupancy delta to `(shard, node)` — the batched
    /// form of [`MemoryLedger::publish`]: instead of re-snapshotting
    /// every pool each period, the coordinator applies each pool's
    /// accumulated net change
    /// ([`WarmPool::take_period_delta_mib`](crate::WarmPool::take_period_delta_mib))
    /// in one pass. Coordinator-only (single writer, workers parked).
    pub(crate) fn adjust(&self, shard: usize, node: NodeId, delta_mib: i64) {
        if delta_mib == 0 {
            return;
        }
        let cell = &self.cells[shard * self.n_nodes + node.index()];
        let current = cell.load(Ordering::Relaxed);
        let next = current
            .checked_add_signed(delta_mib)
            .expect("ledger cell under/overflow: delta disagrees with published usage");
        cell.store(next, Ordering::Relaxed);
    }

    /// The published usage of `(shard, node)` — for asserting the
    /// delta-maintained cells against the pools' ground truth.
    #[cfg(debug_assertions)]
    pub(crate) fn cell_mib(&self, shard: usize, node: NodeId) -> u64 {
        self.cells[shard * self.n_nodes + node.index()].load(Ordering::Relaxed)
    }

    /// Total bytes on `node` across all shards.
    pub(crate) fn total_mib(&self, node: NodeId) -> u64 {
        self.cells
            .iter()
            .skip(node.index())
            .step_by(self.n_nodes)
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Bytes on `node` held by shards other than `shard` — the external
    /// pressure snapshot a shard's pools admit against for one period.
    pub(crate) fn external_mib(&self, shard: usize, node: NodeId) -> u64 {
        self.total_mib(node)
            - self.cells[shard * self.n_nodes + node.index()].load(Ordering::Relaxed)
    }
}

/// Merge per-shard metrics into whole-run metrics.
///
/// Records scatter back to their global trace positions; counters and
/// per-node gram vectors sum in shard-id order (deterministic for a
/// given shard count; the per-record floats are bit-identical across
/// shard counts, the per-node *sums* agree up to float-summation
/// reassociation).
pub(crate) fn merge_metrics(
    total_records: usize,
    n_nodes: usize,
    parts: Vec<(Vec<usize>, RunMetrics)>,
    ledger_peak_mib: Vec<u64>,
) -> RunMetrics {
    let placeholder = InvocationRecord {
        func: FunctionId(0),
        t_ms: 0,
        exec_location: NodeId(0),
        warm: false,
        service_ms: 0,
        queue_ms: 0,
        rejected: false,
        service_carbon: CarbonFootprint::ZERO,
        keepalive_carbon: CarbonFootprint::ZERO,
        energy_kwh: 0.0,
    };
    let mut merged = RunMetrics {
        records: vec![placeholder; total_records],
        keepalive_g_by_node: vec![0.0; n_nodes],
        transfer_g_by_node: vec![0.0; n_nodes],
        queue_ms_by_node: vec![0; n_nodes],
        ledger_peak_mib,
        ..RunMetrics::default()
    };
    let mut placed = 0usize;
    for (global_indices, part) in parts {
        debug_assert_eq!(global_indices.len(), part.records.len());
        for (local, record) in part.records.into_iter().enumerate() {
            merged.records[global_indices[local]] = record;
            placed += 1;
        }
        merged.evicted_functions += part.evicted_functions;
        merged.transfers += part.transfers;
        merged.transfer_g += part.transfer_g;
        merged.transfer_ms += part.transfer_ms;
        merged.decision_overhead_ns += part.decision_overhead_ns;
        merged.reconcile_revocations += part.reconcile_revocations;
        merged.rejected += part.rejected;
        merged.expiry.absorb(part.expiry);
        merged.lost_warm_mib += part.lost_warm_mib;
        merged.crash_rejected += part.crash_rejected;
        merged.degraded_decisions += part.degraded_decisions;
        merged.transfer_retries += part.transfer_retries;
        // stale_ci_minutes is input-derived and set once by the
        // coordinator after the merge, never per shard.
        for (node, g) in part.keepalive_g_by_node.iter().enumerate() {
            merged.keepalive_g_by_node[node] += g;
        }
        for (node, g) in part.transfer_g_by_node.iter().enumerate() {
            merged.transfer_g_by_node[node] += g;
        }
        for (node, &q) in part.queue_ms_by_node.iter().enumerate() {
            merged.queue_ms_by_node[node] += q;
        }
        // Peaks are shard-local maxima of simultaneously occupied slots;
        // the fleet-level view keeps the elementwise max.
        if merged.executor_peak_by_node.len() < part.executor_peak_by_node.len() {
            merged
                .executor_peak_by_node
                .resize(part.executor_peak_by_node.len(), 0);
        }
        for (node, &p) in part.executor_peak_by_node.iter().enumerate() {
            merged.executor_peak_by_node[node] = merged.executor_peak_by_node[node].max(p);
        }
    }
    assert_eq!(
        placed, total_records,
        "shard partition must cover every invocation exactly once"
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8] {
            for f in 0..1_000u32 {
                let s = shard_of(FunctionId(f), n);
                assert!(s < n);
                assert_eq!(s, shard_of(FunctionId(f), n));
            }
        }
    }

    #[test]
    fn shard_assignment_spreads_consecutive_ids() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for f in 0..10_000u32 {
            counts[shard_of(FunctionId(f), n)] += 1;
        }
        // Uniform would be 1250 per shard; demand every shard lands
        // within ±30% — consecutive ids must not clump.
        for (s, &c) in counts.iter().enumerate() {
            assert!((875..=1625).contains(&c), "shard {s} got {c} of 10000");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for f in 0..100u32 {
            assert_eq!(shard_of(FunctionId(f), 1), 0);
        }
    }

    #[test]
    fn ledger_totals_and_external_views() {
        let ledger = MemoryLedger::new(3, 2);
        ledger.publish(0, &[100, 10]);
        ledger.publish(1, &[200, 20]);
        ledger.publish(2, &[300, 30]);
        assert_eq!(ledger.total_mib(NodeId(0)), 600);
        assert_eq!(ledger.total_mib(NodeId(1)), 60);
        assert_eq!(ledger.external_mib(1, NodeId(0)), 400);
        assert_eq!(ledger.external_mib(2, NodeId(1)), 30);
        // Re-publishing overwrites (it is a snapshot, not an increment).
        ledger.publish(1, &[0, 0]);
        assert_eq!(ledger.total_mib(NodeId(0)), 400);
    }

    #[test]
    fn ledger_adjust_is_incremental_publish() {
        let ledger = MemoryLedger::new(2, 2);
        ledger.publish(0, &[100, 10]);
        ledger.adjust(0, NodeId(0), 50);
        ledger.adjust(0, NodeId(1), -10);
        ledger.adjust(1, NodeId(0), 7);
        ledger.adjust(1, NodeId(1), 0); // no-op
        assert_eq!(ledger.total_mib(NodeId(0)), 157);
        assert_eq!(ledger.total_mib(NodeId(1)), 0);
        assert_eq!(ledger.external_mib(1, NodeId(0)), 150);
    }

    #[test]
    fn options_builders_validate() {
        let o = ShardOptions::new(4).with_period_ms(30_000).with_threads(2);
        assert_eq!(o.shards, 4);
        assert_eq!(o.period_ms, 30_000);
        assert_eq!(o.threads, Some(2));
        assert_eq!(ShardOptions::new(1).period_ms, crate::MINUTE_MS);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardOptions::new(0);
    }
}

/root/repo/target/release/deps/fig7_effectiveness-a21c1561538c8b17.d: crates/bench/benches/fig7_effectiveness.rs

/root/repo/target/release/deps/fig7_effectiveness-a21c1561538c8b17: crates/bench/benches/fig7_effectiveness.rs

crates/bench/benches/fig7_effectiveness.rs:

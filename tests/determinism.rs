//! Cross-crate determinism: every stochastic component is seeded, so the
//! whole experiment pipeline must be bit-for-bit reproducible — and the
//! two-node fleet built from a Table I pair must reproduce the pair
//! path's results exactly.

use ecolife::prelude::*;

fn full_run(seed: u64) -> (Vec<u64>, Vec<String>) {
    let trace = SynthTraceConfig {
        n_functions: 12,
        duration_min: 90,
        seed,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Texas, 120, seed);
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(6 * 1024);
    let mut eco = EcoLife::new(fleet.clone(), EcoLifeConfig::default());
    let (_, metrics) = run_scheme(&trace, &ci, &fleet, &mut eco);
    (
        metrics.records.iter().map(|r| r.service_ms).collect(),
        metrics
            .records
            .iter()
            .map(|r| format!("{}:{}:{}", r.func, r.exec_location, r.warm))
            .collect(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    assert_eq!(full_run(11), full_run(11));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(full_run(11), full_run(12));
}

#[test]
fn trace_and_ci_generation_are_independent_of_ambient_state() {
    // Re-generate in a different order; artifacts must match exactly.
    let t1 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    let c1 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let c2 = CarbonIntensityTrace::synthetic(Region::Caiso, 100, 5);
    let t2 = SynthTraceConfig::small(5).generate(&WorkloadCatalog::sebs());
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
}

#[test]
fn all_schedulers_are_deterministic() {
    let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3);
    let fleet = skus::fleet_a();

    let run = |mk: &dyn Fn() -> Box<dyn Scheduler>| {
        let mut s = mk();
        let (_, m) = run_scheme(&trace, &ci, &fleet, &mut s);
        m.records
            .iter()
            .map(|r| (r.service_ms, r.warm))
            .collect::<Vec<_>>()
    };

    let factories: Vec<Box<dyn Fn() -> Box<dyn Scheduler>>> = vec![
        Box::new(|| Box::new(EcoLife::new(skus::fleet_a(), EcoLifeConfig::default()))),
        Box::new(|| {
            Box::new(BruteForce::oracle(
                skus::fleet_a(),
                CarbonIntensityTrace::synthetic(Region::Caiso, 90, 3),
            ))
        }),
        Box::new(|| Box::new(FixedPolicy::new_only())),
        Box::new(|| Box::new(FixedPolicy::old_only())),
    ];
    for f in &factories {
        assert_eq!(run(f.as_ref()), run(f.as_ref()));
    }
}

/// Strip the one field that is wall-clock-dependent (decision overhead is
/// measured in real nanoseconds) before bit-comparing two runs.
fn comparable(m: RunMetrics) -> (Vec<InvocationOutcome>, u64, u64) {
    let records = m
        .records
        .iter()
        .map(|r| InvocationOutcome {
            func: r.func,
            t_ms: r.t_ms,
            exec_location: r.exec_location,
            warm: r.warm,
            service_ms: r.service_ms,
            service_carbon_g: r.service_carbon.total_g(),
            keepalive_carbon_g: r.keepalive_carbon.total_g(),
            energy_kwh: r.energy_kwh,
        })
        .collect();
    (records, m.evicted_functions, m.transfers)
}

#[derive(Debug, PartialEq)]
struct InvocationOutcome {
    func: FunctionId,
    t_ms: u64,
    exec_location: NodeId,
    warm: bool,
    service_ms: u64,
    service_carbon_g: f64,
    keepalive_carbon_g: f64,
    energy_kwh: f64,
}

/// The two-node compatibility regression: scheduling over
/// `Fleet::from(skus::pair_a())` (the seed's `HardwarePair` path, which
/// now converts at the constructor boundary) must be bit-identical to
/// scheduling over the SKU-built two-node fleet, for every scheduler
/// family of the paper — every float equal, not merely close.
#[test]
fn two_node_fleet_is_bit_identical_to_the_pair_path() {
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 120,
        seed: 77,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77);

    // The same two nodes, reached through both construction paths.
    let via_pair = Fleet::from(skus::pair_a()).with_uniform_keepalive_budget_mib(8 * 1024);
    let via_skus =
        skus::fleet_of(&[Sku::I3Metal, Sku::M5znMetal]).with_uniform_keepalive_budget_mib(8 * 1024);
    assert_eq!(via_pair, via_skus, "construction paths diverged");

    type Factory<'a> = Box<dyn Fn(&Fleet) -> Box<dyn Scheduler> + 'a>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "FixedPolicy",
            Box::new(|_: &Fleet| Box::new(FixedPolicy::new_only()) as Box<dyn Scheduler>),
        ),
        (
            "EcoLife",
            Box::new(|f: &Fleet| {
                Box::new(EcoLife::new(f.clone(), EcoLifeConfig::default())) as Box<dyn Scheduler>
            }),
        ),
        (
            "BruteForce::oracle",
            Box::new(|f: &Fleet| {
                Box::new(BruteForce::oracle(
                    f.clone(),
                    CarbonIntensityTrace::synthetic(Region::Caiso, 150, 77),
                )) as Box<dyn Scheduler>
            }),
        ),
    ];

    for (name, mk) in &factories {
        let mut a = mk(&via_pair);
        let mut b = mk(&via_skus);
        let (_, ma) = run_scheme(&trace, &ci, &via_pair, &mut a);
        let (_, mb) = run_scheme(&trace, &ci, &via_skus, &mut b);
        assert_eq!(
            comparable(ma),
            comparable(mb),
            "{name}: pair-path and fleet-path runs diverged"
        );
    }
}

/// The seed engine semantics the two-node path must keep: exact warm and
/// cold service times for pair A (cold = half-sensitivity cold start +
/// scaled execution + 50 ms setup), pinned numerically.
#[test]
fn pair_a_service_times_match_seed_semantics() {
    let catalog = WorkloadCatalog::new(vec![FunctionProfile::new("f", 1_000, 2_000, 512, 0.64)]);
    let trace = Trace::new(
        catalog,
        vec![
            Invocation {
                func: FunctionId(0),
                t_ms: 0,
            },
            Invocation {
                func: FunctionId(0),
                t_ms: 2 * MINUTE_MS,
            },
        ],
    );
    let ci = CarbonIntensityTrace::constant(300.0, 60);
    let fleet = skus::fleet_a();

    // On the new node (perf 1.0): cold = 2000 + 1000 + 50, warm = 1050.
    let (_, m_new) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::new_only());
    assert_eq!(m_new.records[0].service_ms, 3_050);
    assert_eq!(m_new.records[1].service_ms, 1_050);

    // On the old node (perf 0.8 → slowdown 1.25): exec ×1.16 at
    // sensitivity 0.64 → 1160; cold start ×1.125 → 2250.
    let (_, m_old) = run_scheme(&trace, &ci, &fleet, &mut FixedPolicy::old_only());
    assert_eq!(m_old.records[0].service_ms, 2_250 + 1_160 + 50);
    assert_eq!(m_old.records[1].service_ms, 1_160 + 50);
}

//! Priced cross-region migration (ISSUE 8).
//!
//! Three pins on the transfer-pricing subsystem:
//!
//! 1. **Grid attribution across a migration** — a container moved by the
//!    re-placement pass charges `[warm_since, transfer)` to the *source*
//!    node's grid and `[transfer, end)` to the *target's*, and its
//!    egress grams are priced at the source grid's intensity at the
//!    moment of transfer. The re-warm latency debt is charged to the
//!    container's next warm service, exactly once.
//! 2. **Free pricing is invisible** — `TransferCost::free()` with the
//!    re-placement pass off and an empty membership plan replays
//!    byte-identically to a plain pre-pricing `SimConfig::default()`
//!    run, event stream and chain tip included (the CI bench-smoke
//!    assert).
//! 3. **Thread invariance under contention** — a memory-pressured
//!    sharded run (optimistic admissions revoked at reconcile) with
//!    pricing, re-placement, and membership churn all active produces
//!    byte-identical event streams at worker threads {1, 2, 4} for each
//!    shard count.
//! 4. **Shard-*count* invariance under contention** — on a workload
//!    engineered so no shard-local budget overflows (every conflict is
//!    resolved by the global reconcile ledger), the layout itself
//!    becomes invisible: shard counts {2, 4, 8} × threads {1, 2, 4} all
//!    emit one identical stream, while the merged load still forces
//!    revocations at the period boundary.

use ecolife::prelude::*;
use ecolife::sim::{Decision, InvocationCtx, KeepAliveChoice};
use ecolife::telemetry::diff::first_divergence;

const DIRTY_CI: f64 = 600.0;
const CLEAN_CI: f64 = 30.0;

/// Pins execution to node 0 and keeps function 0 warm there for
/// `keepalive_min`; every other function runs cold with no keep-alive.
/// The engine's re-placement pass is then the only thing that can move
/// the container.
struct PinOld {
    keepalive_min: u64,
}

impl Scheduler for PinOld {
    fn name(&self) -> &'static str {
        "pin-old"
    }
    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        let keepalive = (ctx.func == FunctionId(0)).then(|| KeepAliveChoice {
            location: NodeId(0),
            duration_ms: self.keepalive_min * MINUTE_MS,
        });
        Decision {
            exec: NodeId(0),
            keepalive,
        }
    }
}

/// Pair-A fleet split across a dirty and a clean grid, both constant, so
/// every settlement average is exact and the pass has one obvious move.
fn split_grid_setup() -> (Fleet, CiBundle) {
    let fleet = skus::fleet_a()
        .with_region(NodeId(0), Region::Florida)
        .with_region(NodeId(1), Region::Caiso)
        .with_uniform_keepalive_budget_mib(10 * 1024);
    let bundle = CiBundle::new(vec![
        (
            Region::Florida,
            CarbonIntensityTrace::constant(DIRTY_CI, 30),
        ),
        (Region::Caiso, CarbonIntensityTrace::constant(CLEAN_CI, 30)),
    ])
    .unwrap();
    (fleet, bundle)
}

fn two_shot_trace(arrivals: &[(u32, u64)]) -> Trace {
    let catalog = WorkloadCatalog::sebs();
    let invocations = arrivals
        .iter()
        .map(|&(func, t_ms)| Invocation {
            func: FunctionId(func),
            t_ms,
        })
        .collect();
    Trace::new(catalog, invocations)
}

#[test]
fn migrated_container_charges_each_grid_for_its_own_segment() {
    let (fleet, bundle) = split_grid_setup();
    // Function 0 arrives at t=0 and is kept warm on the dirty node for
    // ten minutes; a second function at t=5min extends the horizon so
    // the every-minute re-placement pass fires at t=1min.
    let trace = two_shot_trace(&[(0, 0), (1, 5 * MINUTE_MS)]);
    let cost = TransferCost {
        egress_kwh_per_mib: 2.0e-9,
        latency_ms: 50,
    };
    let metrics = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
        .unwrap()
        .with_config(
            SimConfig::default()
                .with_transfer_cost(cost)
                .with_replacement_every_min(1),
        )
        .run(&mut PinOld { keepalive_min: 10 });

    assert_eq!(
        metrics.transfers, 1,
        "the pass must migrate dirty → clean exactly once"
    );
    let mem = trace.catalog().iter().next().unwrap().1.memory_mib;
    let warm_since = metrics.records[0].t_ms + metrics.records[0].service_ms;
    let transfer_at = MINUTE_MS; // first pass tick
    let expiry = warm_since + 10 * MINUTE_MS;
    assert!(warm_since < transfer_at && transfer_at < expiry);

    // Each segment priced on its own grid, with the engine's own model.
    let model = CarbonModel::default();
    let src_g = model
        .keepalive_phase(
            fleet.node(NodeId(0)),
            mem,
            transfer_at - warm_since,
            DIRTY_CI,
        )
        .total_g();
    let dst_g = model
        .keepalive_phase(fleet.node(NodeId(1)), mem, expiry - transfer_at, CLEAN_CI)
        .total_g();
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(
        close(metrics.keepalive_g_by_node[0], src_g),
        "source grid must be charged exactly [warm_since, transfer): {} vs {src_g}",
        metrics.keepalive_g_by_node[0]
    );
    assert!(
        close(metrics.keepalive_g_by_node[1], dst_g),
        "target grid must be charged exactly [transfer, expiry): {} vs {dst_g}",
        metrics.keepalive_g_by_node[1]
    );
    // Both segments land on the origin record, and nowhere else.
    assert!(close(
        metrics.records[0].keepalive_carbon.total_g(),
        src_g + dst_g
    ));
    assert_eq!(metrics.records[1].keepalive_carbon.total_g(), 0.0);

    // Egress is priced at the *source* grid's intensity at transfer time
    // and attributed to the source node.
    let egress = cost.grams(mem, DIRTY_CI);
    assert!(egress > 0.0);
    assert_eq!(metrics.transfer_g.to_bits(), egress.to_bits());
    assert_eq!(metrics.transfer_g_by_node[0].to_bits(), egress.to_bits());
    assert_eq!(metrics.transfer_g_by_node[1], 0.0);
    assert_eq!(metrics.transfer_ms, cost.latency_ms);
}

#[test]
fn transfer_latency_debt_hits_the_next_warm_service_exactly_once() {
    let (fleet, bundle) = split_grid_setup();
    // Migration at t=1min, then two more warm hits of function 0: the
    // first pays the 50 ms re-warm debt, the second must not.
    let arrivals = [
        (0u32, 0u64),
        (0, 4 * MINUTE_MS),
        (0, 4 * MINUTE_MS + 30_000),
        (1, 5 * MINUTE_MS),
    ];
    let run = |latency_ms: u64| -> RunMetrics {
        let cost = TransferCost {
            egress_kwh_per_mib: 2.0e-9,
            latency_ms,
        };
        Simulation::try_new_regional(&two_shot_trace(&arrivals), &bundle, fleet.clone())
            .unwrap()
            .with_config(
                SimConfig::default()
                    .with_transfer_cost(cost)
                    .with_replacement_every_min(1),
            )
            .run(&mut PinOld { keepalive_min: 10 })
    };
    let free_latency = run(0);
    let debt = run(50);
    assert!(free_latency.transfers >= 1);
    assert_eq!(debt.transfers, free_latency.transfers);
    assert!(debt.records[1].warm, "second arrival must be a warm hit");
    assert_eq!(
        debt.records[1].service_ms,
        free_latency.records[1].service_ms + 50,
        "the migrated container's next service pays the re-warm latency"
    );
    assert!(debt.records[2].warm);
    assert_eq!(
        debt.records[2].service_ms, free_latency.records[2].service_ms,
        "the debt is consumed by the first warm service, not repeated"
    );
    assert_eq!(debt.transfer_ms, 50 * debt.transfers);
    assert_eq!(free_latency.transfer_ms, 0);
}

/// The CI bench-smoke assert: free pricing + pass off + empty membership
/// must be byte-for-byte the pre-pricing engine, on a workload where the
/// overflow/transfer path actually fires.
#[test]
fn free_transfer_cost_replays_the_unpriced_engine_byte_for_byte() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 90,
        seed: 23,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 120, 23);
    let fleet = Fleet::from(skus::pair_a()).with_uniform_keepalive_budget_mib(6 * 1024);

    let mut plain_sink = CaptureSink::default();
    let plain = Simulation::new(&trace, &ci, fleet.clone()).run_with_sink(
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
        &mut plain_sink,
    );

    let mut free_sink = CaptureSink::default();
    let free = Simulation::new(&trace, &ci, fleet.clone())
        .with_config(
            SimConfig::default()
                .with_transfer_cost(TransferCost::free())
                .with_replacement_every_min(0),
        )
        .with_membership(MembershipPlan::default())
        .run_with_sink(
            &mut EcoLife::new(
                fleet.clone(),
                EcoLifeConfig::default().with_transfer_cost(TransferCost::free()),
            ),
            &mut free_sink,
        );

    assert!(plain.transfers > 0, "workload must exercise transfers");
    assert_eq!(free.records, plain.records);
    assert_eq!(free.transfer_g, 0.0);
    assert_eq!(free.transfer_ms, 0);
    if let Some(d) = first_divergence(&plain_sink.lines(), &free_sink.lines()) {
        panic!("free pricing changed the event stream: {d:?}");
    }
    assert_eq!(free_sink.tip(), plain_sink.tip());
}

/// Contended sharded replay: small budgets force optimistic admissions
/// to be revoked at reconcile, with pricing, the re-placement pass, and
/// membership churn all live. Worker-thread count must still be
/// invisible: for each shard count, threads {1, 2, 4} emit identical
/// streams. (Different shard *counts* may legitimately resolve
/// contention differently — the invariant is per layout.)
#[test]
fn contended_priced_sharded_replay_is_thread_invariant() {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 60,
        seed: 0x8_11,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let bundle = CiBundle::synthetic_all(80, 0x8_11);
    let fleet = skus::fleet_five_regions().with_uniform_keepalive_budget_mib(2 * 1024);
    let cost = TransferCost {
        egress_kwh_per_mib: 2.0e-9,
        latency_ms: 50,
    };
    let membership = MembershipPlan::default()
        .leave(15 * MINUTE_MS, NodeId(1))
        .join(35 * MINUTE_MS, NodeId(1));
    let config = SimConfig::default()
        .with_transfer_cost(cost)
        .with_replacement_every_min(10);

    let mut contended = false;
    for shards in [2usize, 4, 8] {
        let mut baseline: Option<(CaptureSink, RunMetrics)> = None;
        for threads in [1usize, 2, 4] {
            let mut sink = CaptureSink::default();
            let metrics = Simulation::try_new_regional(&trace, &bundle, fleet.clone())
                .unwrap()
                .with_config(config)
                .with_membership(membership.clone())
                .run_sharded_with_sink(
                    |_| {
                        EcoLife::new(
                            fleet.clone(),
                            EcoLifeConfig::default().with_transfer_cost(cost),
                        )
                    },
                    &ShardOptions::new(shards).with_threads(threads),
                    &mut sink,
                );
            contended |= metrics.reconcile_revocations > 0;
            match &baseline {
                None => baseline = Some((sink, metrics)),
                Some((ref_sink, ref_metrics)) => {
                    assert_eq!(
                        metrics.records, ref_metrics.records,
                        "records diverged at {shards} shards / {threads} threads"
                    );
                    assert_eq!(
                        metrics.reconcile_revocations,
                        ref_metrics.reconcile_revocations
                    );
                    if let Some(d) = first_divergence(&ref_sink.lines(), &sink.lines()) {
                        panic!("stream diverged at {shards} shards / {threads} threads: {d:?}");
                    }
                    assert_eq!(sink.tip(), ref_sink.tip());
                }
            }
        }
    }
    assert!(
        contended,
        "workload must pressure the ledger into at least one revocation"
    );
}

/// Pins execution to node 0 and installs a long keep-alive there for
/// every function except the horizon marker (function 5).
struct PinAll {
    keepalive_min: u64,
}

impl Scheduler for PinAll {
    fn name(&self) -> &'static str {
        "pin-all"
    }
    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        let keepalive = (ctx.func != FunctionId(5)).then(|| KeepAliveChoice {
            location: NodeId(0),
            duration_ms: self.keepalive_min * MINUTE_MS,
        });
        Decision {
            exec: NodeId(0),
            keepalive,
        }
    }
}

/// Satellite pin (ISSUE 9): where the previous test only promises
/// per-layout thread invariance, this workload is engineered so the
/// shard *count* is invisible too. Thirteen 1-GiB functions; the eight
/// whose ids hash to per-shard sums ≤ 4 GiB at 2 shards, ≤ 2 GiB at 4,
/// and ≤ 1 GiB at 8 install keep-alives on node 0 against a 6 GiB
/// budget — so no shard ever overflows locally and every admission is
/// optimistic. The merged 8 GiB exceeds the budget, so the global
/// reconcile at the t = 60 s period boundary must revoke — and since
/// the ledger sees the same admissions in the same order under every
/// layout, records, streams, and chain tips are identical across
/// shard counts {2, 4, 8} and worker threads {1, 2, 4}.
#[test]
fn reconcile_resolved_contention_is_shard_count_invariant() {
    let catalog = WorkloadCatalog::new(
        (0..13)
            .map(|i| FunctionProfile::new(&format!("gib-{i}"), 1_000, 300, 1_024, 0.5))
            .collect(),
    );
    // Ids chosen so each shard's keepalive sum stays under 6 GiB at
    // every layout (verified against `shard_of`'s splitmix64 hash).
    let chosen: [u32; 8] = [0, 1, 2, 3, 4, 6, 9, 12];
    let mut invocations: Vec<Invocation> = chosen
        .iter()
        .enumerate()
        .map(|(i, &func)| Invocation {
            func: FunctionId(func),
            t_ms: i as u64 * 1_000,
        })
        .collect();
    // Horizon marker in the next period (no keep-alive, so it cannot
    // itself contend) forces the boundary reconcile to run.
    invocations.push(Invocation {
        func: FunctionId(5),
        t_ms: 90_000,
    });
    let trace = Trace::new(catalog, invocations);
    let ci = CarbonIntensityTrace::constant(300.0, 30);
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(6 * 1024);

    let mut baseline: Option<(CaptureSink, RunMetrics)> = None;
    for shards in [2usize, 4, 8] {
        for threads in [1usize, 2, 4] {
            let mut sink = CaptureSink::default();
            let metrics = Simulation::new(&trace, &ci, fleet.clone()).run_sharded_with_sink(
                |_| PinAll { keepalive_min: 30 },
                &ShardOptions::new(shards).with_threads(threads),
                &mut sink,
            );
            assert!(
                metrics.reconcile_revocations > 0,
                "merged load must overflow the global ledger at {shards} shards"
            );
            match &baseline {
                None => baseline = Some((sink, metrics)),
                Some((ref_sink, ref_metrics)) => {
                    assert_eq!(
                        metrics.records, ref_metrics.records,
                        "records diverged at {shards} shards / {threads} threads"
                    );
                    assert_eq!(
                        metrics.reconcile_revocations,
                        ref_metrics.reconcile_revocations
                    );
                    assert_eq!(metrics.evicted_functions, ref_metrics.evicted_functions);
                    if let Some(d) = first_divergence(&ref_sink.lines(), &sink.lines()) {
                        panic!("stream diverged at {shards} shards / {threads} threads: {d:?}");
                    }
                    assert_eq!(sink.tip(), ref_sink.tip());
                }
            }
        }
    }
}

//! End-to-end integration: the full pipeline (trace → simulator →
//! schedulers → metrics) reproduces the paper's qualitative landscape.

use ecolife::prelude::*;

fn setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 360,
        seed: 2024,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 400, 2024);
    let fleet = skus::fleet_a().with_uniform_keepalive_budget_mib(10 * 1024);
    (trace, ci, fleet)
}

fn run_all() -> Vec<RunSummary> {
    let (trace, ci, fleet) = setup();
    let mut schemes: Vec<Box<dyn Scheduler>> = vec![
        Box::new(BruteForce::service_time_opt(fleet.clone(), ci.clone())),
        Box::new(BruteForce::co2_opt(fleet.clone(), ci.clone())),
        Box::new(BruteForce::oracle(fleet.clone(), ci.clone())),
        Box::new(BruteForce::energy_opt(fleet.clone(), ci.clone())),
        Box::new(EcoLife::new(fleet.clone(), EcoLifeConfig::default())),
        Box::new(FixedPolicy::new_only()),
        Box::new(FixedPolicy::old_only()),
    ];
    schemes
        .iter_mut()
        .map(|s| run_scheme(&trace, &ci, &fleet, s).0)
        .collect()
}

#[test]
fn the_evaluation_landscape_holds() {
    let s = run_all();
    let (st, co2, oracle, energy, eco, new_only, old_only) =
        (&s[0], &s[1], &s[2], &s[3], &s[4], &s[5], &s[6]);

    // Anchors anchor.
    for other in &s {
        assert!(
            st.total_service_ms <= other.total_service_ms,
            "{} beat Service-Time-Opt",
            other.name
        );
        assert!(
            co2.total_carbon_g <= other.total_carbon_g * 1.001,
            "{} beat CO2-Opt",
            other.name
        );
    }
    // Energy-Opt minimizes energy.
    for other in &s {
        assert!(
            energy.total_energy_kwh <= other.total_energy_kwh * 1.001,
            "{} beat Energy-Opt on energy",
            other.name
        );
    }

    // Fig. 7: EcoLife within a modest band of the Oracle on both axes.
    let svc_gap = eco.total_service_ms as f64 / oracle.total_service_ms as f64 - 1.0;
    let co2_gap = eco.total_carbon_g / oracle.total_carbon_g - 1.0;
    assert!(
        svc_gap < 0.15,
        "service gap to Oracle {:.1}%",
        100.0 * svc_gap
    );
    assert!(
        co2_gap < 0.20,
        "carbon gap to Oracle {:.1}%",
        100.0 * co2_gap
    );

    // Fig. 9: the single-generation trade-off.
    assert!(new_only.total_service_ms < old_only.total_service_ms);
    assert!(new_only.total_carbon_g > old_only.total_carbon_g);
    // EcoLife saves carbon against New-Only and service against Old-Only.
    assert!(eco.total_carbon_g < new_only.total_carbon_g);
    assert!(eco.total_service_ms < old_only.total_service_ms);
}

#[test]
fn decision_overhead_is_bounded() {
    let (trace, ci, fleet) = setup();
    let (summary, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    // Paper: < 0.4% of service time. Allow 2% headroom for debug builds
    // and noisy CI machines.
    assert!(
        summary.decision_overhead_fraction < 0.02,
        "overhead {:.3}%",
        100.0 * summary.decision_overhead_fraction
    );
}

#[test]
fn every_scheme_accounts_all_invocations() {
    let (trace, _, _) = setup();
    for s in run_all() {
        assert_eq!(s.invocations, trace.len(), "{} lost invocations", s.name);
        assert!(s.total_carbon_g > 0.0);
        assert!(s.total_service_ms > 0);
        assert!(
            (s.operational_g + s.embodied_g - s.total_carbon_g).abs() < 1e-6,
            "{}: carbon split does not add up",
            s.name
        );
    }
}

#[test]
fn ecolife_beats_fixed_policies_jointly() {
    // The headline value proposition: against each fixed policy, EcoLife
    // is better on at least one axis without being much worse on the
    // other — and against New-Only it must win carbon outright.
    let s = run_all();
    let (eco, new_only) = (&s[4], &s[5]);
    assert!(eco.total_carbon_g < 0.9 * new_only.total_carbon_g);
    assert!(eco.total_service_ms as f64 <= 1.15 * new_only.total_service_ms as f64);
}

/root/repo/target/release/deps/fleet-603bc8e15bfbe593.d: tests/fleet.rs Cargo.toml

/root/repo/target/release/deps/libfleet-603bc8e15bfbe593.rmeta: tests/fleet.rs Cargo.toml

tests/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/release/deps/proptest-de08c99b69f12340.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-de08c99b69f12340.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

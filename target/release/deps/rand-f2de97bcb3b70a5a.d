/root/repo/target/release/deps/rand-f2de97bcb3b70a5a.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-f2de97bcb3b70a5a.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-f2de97bcb3b70a5a.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:

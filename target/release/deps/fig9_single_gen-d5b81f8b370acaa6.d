/root/repo/target/release/deps/fig9_single_gen-d5b81f8b370acaa6.d: crates/bench/benches/fig9_single_gen.rs

/root/repo/target/release/deps/fig9_single_gen-d5b81f8b370acaa6: crates/bench/benches/fig9_single_gen.rs

crates/bench/benches/fig9_single_gen.rs:

/root/repo/target/release/deps/fig7_effectiveness-47e639369b2b669d.d: crates/bench/benches/fig7_effectiveness.rs

/root/repo/target/release/deps/fig7_effectiveness-47e639369b2b669d: crates/bench/benches/fig7_effectiveness.rs

crates/bench/benches/fig7_effectiveness.rs:

//! The scheduler interface the engine drives.
//!
//! A scheduler makes two decisions per invocation (the paper's EPDM and
//! KDM respectively):
//!
//! 1. **execution placement** — which fleet node executes the function
//!    (forced to the warm location when a warm container exists; the
//!    engine enforces this, per Sec. IV-D);
//! 2. **keep-alive** — where and for how long to keep the function warm
//!    after execution ([`KeepAliveChoice`]).
//!
//! When a keep-alive does not fit its target pool, the engine calls
//! [`Scheduler::on_pool_overflow`], which is where EcoLife's warm-pool
//! adjustment plugs in; the default resolution drops the incoming
//! keep-alive (what a plain fixed-policy platform does). An
//! [`AdjustPlan`] may rank the transfer targets for displaced containers
//! explicitly; with no ranking the engine tries the remaining fleet nodes
//! in id order.

use crate::cluster::Cluster;
use ecolife_carbon::CiProvider;
use ecolife_hw::NodeId;
use ecolife_trace::{FunctionId, FunctionProfile, Trace};

/// The keep-alive half of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeepAliveChoice {
    /// Which node's pool hosts the warm container.
    pub location: NodeId,
    /// Keep-alive period (ms); `0` is rejected — use
    /// [`Decision::keepalive`] `= None` for "don't keep alive".
    pub duration_ms: u64,
}

/// A scheduler's full answer for one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Where to execute. Ignored (overridden by the engine) when the
    /// function is already warm somewhere.
    pub exec: NodeId,
    /// Keep-alive placement after execution; `None` = let the container
    /// die immediately.
    pub keepalive: Option<KeepAliveChoice>,
}

/// Everything a scheduler may consult when deciding (no future!).
#[derive(Debug)]
pub struct InvocationCtx<'a> {
    /// Position of this invocation in the trace.
    pub index: usize,
    /// The invoked function.
    pub func: FunctionId,
    /// Its profile.
    pub profile: &'a FunctionProfile,
    /// Arrival time (ms).
    pub t_ms: u64,
    /// Where the function is warm right now, if anywhere.
    pub warm_at: Option<NodeId>,
    /// Per-node carbon-intensity resolution: `ci.at(node, t_ms)` is the
    /// intensity *that node's grid* is at — on a multi-region fleet
    /// different nodes see different values at the same instant, which
    /// is exactly the signal cross-region placement trades on.
    /// Schedulers must not peek at minutes beyond `t_ms` — the oracle
    /// family gets its future knowledge explicitly in `prepare`. Global
    /// signals like EcoLife's ΔCI derive from
    /// [`CiProvider::distinct_regions`] purely as a function of
    /// simulated time and region, which keeps them identical between a
    /// whole-trace run and any per-function shard of it.
    pub ci: &'a CiProvider<'a>,
    /// Cluster state (pools, fleet) — read-only.
    pub cluster: &'a Cluster,
}

/// Context handed to the overflow handler.
#[derive(Debug)]
pub struct OverflowCtx<'a> {
    /// The pool that overflowed.
    pub location: NodeId,
    /// The keep-alive that did not fit.
    pub incoming_func: FunctionId,
    pub incoming_memory_mib: u64,
    /// Current time (ms).
    pub t_ms: u64,
    /// Carbon intensity on the overflowing node's own grid, now.
    pub ci_now: f64,
    /// Carbon intensity now on every fleet node's grid (indexed by
    /// `NodeId`) — transfer-target ranking compares these on a
    /// multi-region fleet.
    pub ci_by_node: Vec<f64>,
    /// Cluster state — read-only; mutations are expressed via
    /// [`AdjustPlan`].
    pub cluster: &'a Cluster,
}

/// How to resolve an overflow.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdjustPlan {
    /// Containers to remove from the overflowing pool, in order. Each is
    /// transferred into the first transfer-target pool with room,
    /// otherwise fully evicted (counted in the metrics).
    pub displace: Vec<FunctionId>,
    /// Whether to place the incoming keep-alive after displacement
    /// (if it fits by then; otherwise it is dropped and counted).
    pub place_incoming: bool,
    /// Candidate pools for displaced containers, tried in order; the
    /// overflowing pool itself is never a valid target and is skipped.
    /// `None` = every other fleet node in id order (the two-node
    /// behavior: "kept warm in the other generation's memory if there is
    /// enough space"); `Some(vec![])` = transfer nowhere, displaced
    /// containers are evicted (single-node restricted schemes).
    pub transfer_targets: Option<Vec<NodeId>>,
}

/// Overflow resolution options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverflowAction {
    /// Drop the incoming keep-alive (function simply is not kept warm).
    Drop,
    /// Apply a warm-pool adjustment.
    Adjust(AdjustPlan),
}

/// A scheduling policy.
pub trait Scheduler {
    /// Human-readable scheme name (figure legends).
    fn name(&self) -> &'static str;

    /// Called once before the run. Oracle-family baselines precompute
    /// future knowledge here; online schedulers typically ignore it.
    fn prepare(&mut self, _trace: &Trace) {}

    /// Decide execution placement and keep-alive for one invocation.
    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision;

    /// Resolve a keep-alive that does not fit `ctx.location`'s pool.
    fn on_pool_overflow(&mut self, _ctx: &OverflowCtx<'_>) -> OverflowAction {
        OverflowAction::Drop
    }

    /// Observe the outcome of an invocation (service time ms, warm?).
    /// Online schedulers update their predictors here.
    fn observe(&mut self, _ctx: &InvocationCtx<'_>, _service_ms: u64, _warm: bool) {}
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare(&mut self, trace: &Trace) {
        (**self).prepare(trace)
    }
    fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
        (**self).decide(ctx)
    }
    fn on_pool_overflow(&mut self, ctx: &OverflowCtx<'_>) -> OverflowAction {
        (**self).on_pool_overflow(ctx)
    }
    fn observe(&mut self, ctx: &InvocationCtx<'_>, service_ms: u64, warm: bool) {
        (**self).observe(ctx, service_ms, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::Generation;

    /// A trivial policy for interface-level tests.
    struct AlwaysNewest;
    impl Scheduler for AlwaysNewest {
        fn name(&self) -> &'static str {
            "always-newest"
        }
        fn decide(&mut self, ctx: &InvocationCtx<'_>) -> Decision {
            let newest = ctx.cluster.fleet().newest();
            Decision {
                exec: newest,
                keepalive: Some(KeepAliveChoice {
                    location: newest,
                    duration_ms: 600_000,
                }),
            }
        }
    }

    #[test]
    fn default_overflow_drops() {
        let cluster = Cluster::new(ecolife_hw::skus::fleet_a());
        let mut s = AlwaysNewest;
        let ctx = OverflowCtx {
            location: Generation::New.into(),
            incoming_func: FunctionId(0),
            incoming_memory_mib: 128,
            t_ms: 0,
            ci_now: 100.0,
            ci_by_node: vec![100.0, 100.0],
            cluster: &cluster,
        };
        assert_eq!(s.on_pool_overflow(&ctx), OverflowAction::Drop);
        assert_eq!(s.name(), "always-newest");
    }

    #[test]
    fn adjust_plan_default_is_empty() {
        let p = AdjustPlan::default();
        assert!(p.displace.is_empty());
        assert!(!p.place_incoming);
        assert!(p.transfer_targets.is_none());
    }
}

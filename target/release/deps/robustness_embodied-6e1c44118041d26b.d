/root/repo/target/release/deps/robustness_embodied-6e1c44118041d26b.d: crates/bench/benches/robustness_embodied.rs

/root/repo/target/release/deps/robustness_embodied-6e1c44118041d26b: crates/bench/benches/robustness_embodied.rs

crates/bench/benches/robustness_embodied.rs:

/root/repo/target/debug/deps/ecolife_carbon-0623e3544659e277.d: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

/root/repo/target/debug/deps/ecolife_carbon-0623e3544659e277: crates/carbon/src/lib.rs crates/carbon/src/footprint.rs crates/carbon/src/intensity.rs crates/carbon/src/model.rs

crates/carbon/src/lib.rs:
crates/carbon/src/footprint.rs:
crates/carbon/src/intensity.rs:
crates/carbon/src/model.rs:

/root/repo/target/release/deps/invariants-d5504f5ccad7740a.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-d5504f5ccad7740a: tests/invariants.rs

tests/invariants.rs:

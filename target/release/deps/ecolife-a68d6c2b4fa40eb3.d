/root/repo/target/release/deps/ecolife-a68d6c2b4fa40eb3.d: src/lib.rs

/root/repo/target/release/deps/ecolife-a68d6c2b4fa40eb3: src/lib.rs

src/lib.rs:

//! End-to-end integration over an N-node heterogeneous fleet (N ≥ 3):
//! the full pipeline — trace → simulator → schedulers → metrics — with a
//! genuine multi-way placement choice.

use ecolife::prelude::*;
use std::collections::BTreeMap;

fn setup() -> (Trace, CarbonIntensityTrace, Fleet) {
    let trace = SynthTraceConfig {
        n_functions: 24,
        duration_min: 240,
        seed: 31,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::synthetic(Region::Caiso, 280, 31);
    let fleet = skus::fleet_three_generations().with_uniform_keepalive_budget_mib(8 * 1024);
    (trace, ci, fleet)
}

fn placements_by_node(m: &RunMetrics) -> BTreeMap<NodeId, usize> {
    let mut counts = BTreeMap::new();
    for r in &m.records {
        *counts.entry(r.exec_location).or_insert(0) += 1;
    }
    counts
}

#[test]
fn three_node_fleet_runs_ecolife_and_baselines_end_to_end() {
    let (trace, ci, fleet) = setup();
    assert_eq!(fleet.len(), 3);

    let (eco_sum, eco) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    let (pin_sum, pinned) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut FixedPolicy::pinned(fleet.newest(), 10),
    );
    let (oracle_sum, oracle) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::oracle(fleet.clone(), ci.clone()),
    );

    // Every scheme accounts every invocation, with placements inside the
    // fleet.
    for (sum, m) in [
        (&eco_sum, &eco),
        (&pin_sum, &pinned),
        (&oracle_sum, &oracle),
    ] {
        assert_eq!(sum.invocations, trace.len());
        assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
        assert!(sum.total_carbon_g > 0.0);
        assert!(
            (sum.operational_g + sum.embodied_g - sum.total_carbon_g).abs() < 1e-6,
            "{}: carbon split does not add up",
            sum.name
        );
    }

    // The pinned baseline never leaves its node; the fleet-aware schemes
    // actually exercise the multi-way choice.
    assert_eq!(placements_by_node(&pinned).len(), 1);
    assert!(
        placements_by_node(&oracle).len() >= 2,
        "oracle never used a second node: {:?}",
        placements_by_node(&oracle)
    );
    assert!(
        placements_by_node(&eco).len() >= 2,
        "EcoLife never used a second node: {:?}",
        placements_by_node(&eco)
    );

    // Keeping functions warm beyond one node pays: EcoLife must beat the
    // pinned-newest fixed policy on carbon without giving up much
    // service time (the Fig. 9 relationship, fleet edition).
    assert!(eco_sum.total_carbon_g < pin_sum.total_carbon_g);
    assert!(eco_sum.total_service_ms as f64 <= 1.15 * pin_sum.total_service_ms as f64);
}

#[test]
fn mid_node_restriction_runs_on_the_three_node_fleet() {
    let (trace, ci, fleet) = setup();
    let mid = NodeId(1);
    let (sum, m) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default().restricted_to(mid)),
    );
    assert_eq!(sum.invocations, trace.len());
    assert!(m.records.iter().all(|r| r.exec_location == mid));
}

#[test]
fn oracle_dominance_holds_on_the_three_node_fleet() {
    let (trace, ci, fleet) = setup();
    let (st, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::service_time_opt(fleet.clone(), ci.clone()),
    );
    let (co2, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut BruteForce::co2_opt(fleet.clone(), ci.clone()),
    );
    let (eco, _) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    // The brute-force anchors still anchor when the enumeration spans
    // three nodes.
    assert!(st.total_service_ms <= eco.total_service_ms);
    assert!(co2.total_carbon_g <= eco.total_carbon_g * 1.001);
}

#[test]
fn four_node_fleet_with_duplicate_skus_runs() {
    // Horizontal scale-out: two m5zn nodes next to two older ones. The
    // duplicate SKU gives the scheduler a second identical pool to
    // overflow into.
    let fleet = skus::fleet_of(&[Sku::I3Metal, Sku::M5Metal, Sku::M5znMetal, Sku::M5znMetal])
        .with_uniform_keepalive_budget_mib(2 * 1024);
    let trace = SynthTraceConfig {
        n_functions: 16,
        duration_min: 90,
        seed: 13,
        ..Default::default()
    }
    .generate(&WorkloadCatalog::sebs());
    let ci = CarbonIntensityTrace::constant(300.0, 120);
    let (sum, m) = run_scheme(
        &trace,
        &ci,
        &fleet,
        &mut EcoLife::new(fleet.clone(), EcoLifeConfig::default()),
    );
    assert_eq!(sum.invocations, trace.len());
    assert!(m.records.iter().all(|r| fleet.contains(r.exec_location)));
    assert!(sum.warm_rate > 0.0);
}

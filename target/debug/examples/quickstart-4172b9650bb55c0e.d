/root/repo/target/debug/examples/quickstart-4172b9650bb55c0e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4172b9650bb55c0e: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/release/deps/ecolife_pso-e1658ed5e4c9860a.d: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

/root/repo/target/release/deps/ecolife_pso-e1658ed5e4c9860a: crates/pso/src/lib.rs crates/pso/src/dpso.rs crates/pso/src/ga.rs crates/pso/src/pso.rs crates/pso/src/sa.rs crates/pso/src/space.rs

crates/pso/src/lib.rs:
crates/pso/src/dpso.rs:
crates/pso/src/ga.rs:
crates/pso/src/pso.rs:
crates/pso/src/sa.rs:
crates/pso/src/space.rs:

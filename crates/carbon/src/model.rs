//! The serverless carbon-footprint model of Sec. II.
//!
//! For a function `f` with memory `M_f`, serviced for `S_f` and kept alive
//! for `k` on a node with lifetime `LT`:
//!
//! ```text
//! DRAM embodied      = (S_f + k)/LT_DRAM · M_f/M_DRAM · EC_DRAM
//! CPU  embodied      = S_f/LT_CPU · EC_CPU  +  k/LT_CPU · EC_CPU/Core_num
//! DRAM operational   = M_f/M_DRAM · (E_service_DRAM + E_keepalive_DRAM) · CI
//! CPU  operational   = (E_service_CPU + E_keepalive_CPU/Core_num·…) · CI
//! ```
//!
//! The whole CPU package is attributed during service (cold start +
//! execution); one reserved core is attributed during keep-alive. The
//! energy terms come from the calibrated power model in `ecolife-hw`
//! (`PowerDraw`), standing in for the paper's RAPL measurements.

use crate::footprint::CarbonFootprint;
use ecolife_hw::{HardwareNode, PowerDraw};

/// Model configuration knobs for the robustness studies (Sec. VI-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonModelConfig {
    /// Multiplier on every embodied term — the "±10% estimation
    /// flexibility" sweep uses 0.9..=1.1.
    pub embodied_scale: f64,
    /// Include the embodied carbon of other platform components (storage,
    /// motherboard, power unit). Modeled as a platform overhead factor on
    /// the per-node embodied attribution, following the Boavizta server
    /// decomposition where non-CPU/DRAM components contribute roughly an
    /// extra 30% on top of CPU and 20% on top of DRAM shares.
    pub include_platform_components: bool,
}

impl Default for CarbonModelConfig {
    fn default() -> Self {
        CarbonModelConfig {
            embodied_scale: 1.0,
            include_platform_components: false,
        }
    }
}

/// Platform (storage + motherboard + PSU) embodied overheads relative to
/// the CPU and DRAM attributions, applied when
/// [`CarbonModelConfig::include_platform_components`] is set.
const PLATFORM_CPU_OVERHEAD: f64 = 0.30;
const PLATFORM_DRAM_OVERHEAD: f64 = 0.20;

/// Carbon-footprint calculator for serverless phases on a node.
#[derive(Debug, Clone, Copy, Default)]
pub struct CarbonModel {
    pub config: CarbonModelConfig,
}

impl CarbonModel {
    pub fn new(config: CarbonModelConfig) -> Self {
        CarbonModel { config }
    }

    fn embodied_factor_cpu(&self) -> f64 {
        let platform = if self.config.include_platform_components {
            1.0 + PLATFORM_CPU_OVERHEAD
        } else {
            1.0
        };
        self.config.embodied_scale * platform
    }

    fn embodied_factor_dram(&self) -> f64 {
        let platform = if self.config.include_platform_components {
            1.0 + PLATFORM_DRAM_OVERHEAD
        } else {
            1.0
        };
        self.config.embodied_scale * platform
    }

    /// Footprint of an *active* phase (execution, or cold start — both
    /// assign the full CPU package and active DRAM) lasting `duration_ms`
    /// under average carbon intensity `ci_g_per_kwh`.
    pub fn active_phase(
        &self,
        node: &HardwareNode,
        func_mem_mib: u64,
        duration_ms: u64,
        ci_g_per_kwh: f64,
    ) -> CarbonFootprint {
        let energy_kwh = PowerDraw::executing(node, func_mem_mib).energy_kwh(duration_ms);
        let operational_g = energy_kwh * ci_g_per_kwh;
        let embodied_g = node
            .cpu
            .embodied_for_full_package_g(duration_ms, node.lifetime_ms)
            * self.embodied_factor_cpu()
            + node
                .dram
                .embodied_for_share_g(func_mem_mib, duration_ms, node.lifetime_ms)
                * self.embodied_factor_dram();
        CarbonFootprint::new(operational_g, embodied_g)
    }

    /// Footprint of a keep-alive phase: one reserved core plus the warm
    /// container's memory share, lasting `duration_ms`.
    pub fn keepalive_phase(
        &self,
        node: &HardwareNode,
        func_mem_mib: u64,
        duration_ms: u64,
        ci_g_per_kwh: f64,
    ) -> CarbonFootprint {
        let energy_kwh = PowerDraw::keepalive(node, func_mem_mib).energy_kwh(duration_ms);
        let operational_g = energy_kwh * ci_g_per_kwh;
        let embodied_g = node
            .cpu
            .embodied_for_one_core_g(duration_ms, node.lifetime_ms)
            * self.embodied_factor_cpu()
            + node
                .dram
                .embodied_for_share_g(func_mem_mib, duration_ms, node.lifetime_ms)
                * self.embodied_factor_dram();
        CarbonFootprint::new(operational_g, embodied_g)
    }

    /// Energy (kWh) of an active phase — the quantity the Energy-Opt
    /// baseline minimizes.
    pub fn active_energy_kwh(
        &self,
        node: &HardwareNode,
        func_mem_mib: u64,
        duration_ms: u64,
    ) -> f64 {
        PowerDraw::executing(node, func_mem_mib).energy_kwh(duration_ms)
    }

    /// Energy (kWh) of a keep-alive phase.
    pub fn keepalive_energy_kwh(
        &self,
        node: &HardwareNode,
        func_mem_mib: u64,
        duration_ms: u64,
    ) -> f64 {
        PowerDraw::keepalive(node, func_mem_mib).energy_kwh(duration_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_hw::skus;

    fn model() -> CarbonModel {
        CarbonModel::default()
    }

    #[test]
    fn active_phase_scales_linearly_in_duration() {
        let p = skus::pair_a();
        let m = model();
        let one = m.active_phase(&p.new, 512, 1_000, 300.0);
        let five = m.active_phase(&p.new, 512, 5_000, 300.0);
        assert!((five.total_g() - 5.0 * one.total_g()).abs() < 1e-9);
    }

    #[test]
    fn operational_scales_with_ci_embodied_does_not() {
        let p = skus::pair_a();
        let m = model();
        let lo = m.active_phase(&p.new, 512, 1_000, 50.0);
        let hi = m.active_phase(&p.new, 512, 1_000, 300.0);
        assert!((hi.operational_g / lo.operational_g - 6.0).abs() < 1e-9);
        assert_eq!(hi.embodied_g, lo.embodied_g);
    }

    #[test]
    fn keepalive_phase_far_cheaper_than_active_per_unit_time() {
        let p = skus::pair_a();
        let m = model();
        for node in [&p.old, &p.new] {
            let active = m.active_phase(node, 512, 60_000, 300.0);
            let warm = m.keepalive_phase(node, 512, 60_000, 300.0);
            assert!(warm.total_g() < active.total_g() / 10.0);
        }
    }

    #[test]
    fn keepalive_cheaper_on_old_hardware_pair_a() {
        // The core motivation (Sec. III): keep-alive carbon per minute is
        // lower on the older generation.
        let p = skus::pair_a();
        let m = model();
        for ci in [50.0, 150.0, 300.0] {
            let old = m.keepalive_phase(&p.old, 512, 600_000, ci);
            let new = m.keepalive_phase(&p.new, 512, 600_000, ci);
            assert!(
                old.total_g() < new.total_g(),
                "ci={ci}: old {} vs new {}",
                old.total_g(),
                new.total_g()
            );
        }
    }

    #[test]
    fn old_execution_trades_time_for_carbon() {
        // The Fig. 2 trade-off: for the same work, the old node takes
        // longer (slowdown) but its lower package power keeps the
        // operational carbon at or below the new node's.
        let p = skus::pair_a();
        let m = model();
        let base = 2_000u64;
        let old_ms = (base as f64 * p.old.cpu.slowdown()).round() as u64;
        assert!(old_ms > base, "old must be slower");
        let old = m.active_phase(&p.old, 512, old_ms, 300.0);
        let new = m.active_phase(&p.new, 512, base, 300.0);
        assert!(
            old.total_g() < new.total_g(),
            "old {} vs new {}",
            old.total_g(),
            new.total_g()
        );
    }

    #[test]
    fn embodied_scale_multiplies_embodied_only() {
        let p = skus::pair_a();
        let base = CarbonModel::default().active_phase(&p.new, 512, 1_000, 300.0);
        let scaled = CarbonModel::new(CarbonModelConfig {
            embodied_scale: 1.1,
            include_platform_components: false,
        })
        .active_phase(&p.new, 512, 1_000, 300.0);
        assert_eq!(scaled.operational_g, base.operational_g);
        assert!((scaled.embodied_g / base.embodied_g - 1.1).abs() < 1e-9);
    }

    #[test]
    fn platform_components_increase_embodied() {
        let p = skus::pair_a();
        let base = CarbonModel::default().keepalive_phase(&p.new, 512, 60_000, 300.0);
        let plat = CarbonModel::new(CarbonModelConfig {
            embodied_scale: 1.0,
            include_platform_components: true,
        })
        .keepalive_phase(&p.new, 512, 60_000, 300.0);
        assert!(plat.embodied_g > base.embodied_g);
        assert_eq!(plat.operational_g, base.operational_g);
    }

    #[test]
    fn energy_accessors_match_power_model() {
        let p = skus::pair_a();
        let m = model();
        let e = m.active_energy_kwh(&p.new, 1024, 3_600_000);
        // Active package + 1 GiB DRAM at active power, for one hour.
        let exp_active = (p.new.cpu.active_power_w + p.new.dram.active_w_per_gib) / 1000.0;
        assert!((e - exp_active).abs() < 1e-9);
        let k = m.keepalive_energy_kwh(&p.new, 1024, 3_600_000);
        let exp_idle = (p.new.cpu.idle_core_power_w + p.new.dram.idle_w_per_gib) / 1000.0;
        assert!((k - exp_idle).abs() < 1e-9);
    }

    #[test]
    fn fig1_shape_keepalive_share_grows_with_k() {
        // Fig. 1: as the keep-alive period grows 2→10 min, the keep-alive
        // share of the total footprint grows substantially (Graph-BFS goes
        // 18% → 52% in the paper).
        let p = skus::pair_a();
        let m = model();
        let ci = 300.0;
        // Graph-BFS-like cold service: ~6 s execution + ~2 s cold start.
        let service = m.active_phase(&p.new, 256, 8_000, ci);
        let share = |k_min: u64| {
            let ka = m.keepalive_phase(&p.new, 256, k_min * 60_000, ci);
            ka.total_g() / (ka.total_g() + service.total_g())
        };
        let s2 = share(2);
        let s10 = share(10);
        assert!(s2 < 0.40, "share at 2 min = {s2:.2}");
        assert!(s10 > 0.50, "share at 10 min = {s10:.2}");
        assert!(s10 > 1.5 * s2, "share must grow strongly with k");
    }

    #[test]
    fn carbon_saving_shrinks_at_low_ci() {
        // Fig. 3: "the magnitude of this benefit can be reduced or absent
        // in some cases when the carbon intensity is very low". In this
        // calibration Case A (warm on old) keeps a positive saving at low
        // CI (the embodied gap persists), but the absolute saving shrinks
        // because the avoided cold-start *operational* carbon collapses —
        // see EXPERIMENTS.md for the deviation note on the full inversion.
        let p = skus::pair_a();
        let m = model();
        let mem = 4_096;
        let exec_new = 12_000u64;
        let exec_old = (exec_new as f64 * (1.0 + 0.25 * 0.3)).round() as u64;
        let cold_new = 5_000u64;

        let case = |ci: f64, ka_old_min: u64, ka_new_min: u64| {
            // Case A: warm on old after ka_old_min of keep-alive.
            let a = m.keepalive_phase(&p.old, mem, ka_old_min * 60_000, ci)
                + m.active_phase(&p.old, mem, exec_old, ci);
            // Case B: cold on new after ka_new_min of (expired) keep-alive.
            let b = m.keepalive_phase(&p.new, mem, ka_new_min * 60_000, ci)
                + m.active_phase(&p.new, mem, cold_new + exec_new, ci);
            (a.total_g(), b.total_g())
        };

        let (a_hi, b_hi) = case(300.0, 15, 10);
        assert!(a_hi < b_hi, "high CI: case A should save carbon");
        let (a_lo, b_lo) = case(50.0, 15, 10);
        let abs_saving_hi = b_hi - a_hi;
        let abs_saving_lo = b_lo - a_lo;
        assert!(
            abs_saving_lo < abs_saving_hi,
            "saving at CI=50 ({abs_saving_lo:.4} g) should shrink vs CI=300 ({abs_saving_hi:.4} g)"
        );
    }
}

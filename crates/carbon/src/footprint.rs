//! The embodied/operational carbon decomposition every estimate in the
//! system is expressed in.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A carbon footprint split into its two constituents (both gCO2e).
///
/// * `operational_g` — grid-electricity emissions: `energy(kWh) × CI`.
/// * `embodied_g` — manufacturing emissions amortized over hardware
///   lifetime and attributed by resource share.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CarbonFootprint {
    pub operational_g: f64,
    pub embodied_g: f64,
}

impl CarbonFootprint {
    pub const ZERO: CarbonFootprint = CarbonFootprint {
        operational_g: 0.0,
        embodied_g: 0.0,
    };

    pub fn new(operational_g: f64, embodied_g: f64) -> Self {
        CarbonFootprint {
            operational_g,
            embodied_g,
        }
    }

    /// Total footprint in grams.
    #[inline]
    pub fn total_g(&self) -> f64 {
        self.operational_g + self.embodied_g
    }

    /// Fraction of the total that is embodied (0 when total is 0).
    pub fn embodied_fraction(&self) -> f64 {
        let t = self.total_g();
        if t == 0.0 {
            0.0
        } else {
            self.embodied_g / t
        }
    }

    /// Scale only the embodied component — the Sec. VI-C "±10% estimation
    /// flexibility" robustness knob.
    pub fn with_embodied_scaled(self, scale: f64) -> Self {
        CarbonFootprint {
            operational_g: self.operational_g,
            embodied_g: self.embodied_g * scale,
        }
    }
}

impl Add for CarbonFootprint {
    type Output = CarbonFootprint;
    fn add(self, rhs: CarbonFootprint) -> CarbonFootprint {
        CarbonFootprint {
            operational_g: self.operational_g + rhs.operational_g,
            embodied_g: self.embodied_g + rhs.embodied_g,
        }
    }
}

impl AddAssign for CarbonFootprint {
    fn add_assign(&mut self, rhs: CarbonFootprint) {
        self.operational_g += rhs.operational_g;
        self.embodied_g += rhs.embodied_g;
    }
}

impl Mul<f64> for CarbonFootprint {
    type Output = CarbonFootprint;
    fn mul(self, rhs: f64) -> CarbonFootprint {
        CarbonFootprint {
            operational_g: self.operational_g * rhs,
            embodied_g: self.embodied_g * rhs,
        }
    }
}

impl Sum for CarbonFootprint {
    fn sum<I: Iterator<Item = CarbonFootprint>>(iter: I) -> CarbonFootprint {
        iter.fold(CarbonFootprint::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_components() {
        let f = CarbonFootprint::new(1.5, 0.5);
        assert_eq!(f.total_g(), 2.0);
    }

    #[test]
    fn zero_footprint() {
        assert_eq!(CarbonFootprint::ZERO.total_g(), 0.0);
        assert_eq!(CarbonFootprint::ZERO.embodied_fraction(), 0.0);
    }

    #[test]
    fn embodied_fraction() {
        let f = CarbonFootprint::new(3.0, 1.0);
        assert_eq!(f.embodied_fraction(), 0.25);
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = CarbonFootprint::new(1.0, 2.0);
        let b = CarbonFootprint::new(0.5, 0.25);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(c.total_g(), 3.75);
    }

    #[test]
    fn scalar_multiply() {
        let f = CarbonFootprint::new(1.0, 2.0) * 3.0;
        assert_eq!(f.operational_g, 3.0);
        assert_eq!(f.embodied_g, 6.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CarbonFootprint = (0..4).map(|i| CarbonFootprint::new(i as f64, 1.0)).sum();
        assert_eq!(total.operational_g, 6.0);
        assert_eq!(total.embodied_g, 4.0);
    }

    #[test]
    fn embodied_scaling_leaves_operational_untouched() {
        let f = CarbonFootprint::new(2.0, 1.0).with_embodied_scaled(1.1);
        assert_eq!(f.operational_g, 2.0);
        assert!((f.embodied_g - 1.1).abs() < 1e-12);
    }
}

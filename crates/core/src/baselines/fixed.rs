//! `New-Only` / `Old-Only`: single-node execution with the
//! OpenWhisk-style fixed 10-minute keep-alive (Sec. V).
//!
//! "Utilizing multi-generation hardware to keep functions alive is not a
//! feature introduced in either the New-Only or Old-Only scheme" — these
//! policies never look at the rest of the fleet and never adjust the warm
//! pool (overflows simply drop the keep-alive). On an N-node fleet the
//! same policy pins any node via [`FixedPolicy::pinned`].

use ecolife_hw::NodeId;
use ecolife_sim::{Decision, InvocationCtx, KeepAliveChoice, Scheduler, MINUTE_MS};

/// A fixed single-node policy.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    node: NodeId,
    label: &'static str,
    keepalive_min: u64,
}

impl FixedPolicy {
    /// Pin execution and keep-alive to one fleet node, labelled `Pinned`.
    /// A node id names a position, not a generation, so no Old/New label
    /// is inferred — only the named [`FixedPolicy::new_only`] /
    /// [`FixedPolicy::old_only`] constructors (which *define* the
    /// canonical pair layout) carry the paper's scheme names.
    pub fn new(node: impl Into<NodeId>, keepalive_min: u64) -> Self {
        FixedPolicy {
            node: node.into(),
            label: "Pinned",
            keepalive_min,
        }
    }

    /// Alias of [`FixedPolicy::new`].
    pub fn pinned(node: impl Into<NodeId>, keepalive_min: u64) -> Self {
        FixedPolicy::new(node, keepalive_min)
    }

    /// The paper's `New-Only` scheme: the canonical pair layout's new
    /// node (node 1), 10-minute keep-alive.
    pub fn new_only() -> Self {
        FixedPolicy {
            node: NodeId(1),
            label: "New-Only",
            keepalive_min: 10,
        }
    }

    /// The paper's `Old-Only` scheme (node 0 of the canonical layout).
    pub fn old_only() -> Self {
        FixedPolicy {
            node: NodeId(0),
            label: "Old-Only",
            keepalive_min: 10,
        }
    }

    /// The pinned node.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

impl Scheduler for FixedPolicy {
    fn name(&self) -> &'static str {
        self.label
    }

    fn decide(&mut self, _ctx: &InvocationCtx<'_>) -> Decision {
        Decision {
            exec: self.node,
            keepalive: (self.keepalive_min > 0).then_some(KeepAliveChoice {
                location: self.node,
                duration_ms: self.keepalive_min * MINUTE_MS,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecolife_carbon::CarbonIntensityTrace;
    use ecolife_hw::{skus, Generation};
    use ecolife_sim::Simulation;
    use ecolife_trace::{SynthTraceConfig, WorkloadCatalog};

    #[test]
    fn names_and_nodes() {
        assert_eq!(FixedPolicy::new_only().name(), "New-Only");
        assert_eq!(FixedPolicy::old_only().name(), "Old-Only");
        assert_eq!(FixedPolicy::new_only().node(), NodeId(1));
        // A raw node id is a position, not a generation: no Old/New label.
        assert_eq!(FixedPolicy::new(Generation::Old, 10).name(), "Pinned");
        assert_eq!(FixedPolicy::new(NodeId(2), 10).name(), "Pinned");
        assert_eq!(FixedPolicy::pinned(NodeId(1), 10).name(), "Pinned");
    }

    #[test]
    fn old_only_never_touches_new_hardware() {
        let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(200.0, 120);
        let m = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::old_only());
        assert!(m
            .records
            .iter()
            .all(|r| r.exec_location == NodeId::from(Generation::Old)));
    }

    #[test]
    fn pinned_policy_stays_on_a_mid_fleet_node() {
        let trace = SynthTraceConfig::small(3).generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(200.0, 120);
        let fleet = skus::fleet_three_generations();
        let m = Simulation::new(&trace, &ci, fleet).run(&mut FixedPolicy::pinned(NodeId(1), 10));
        assert!(m.records.iter().all(|r| r.exec_location == NodeId(1)));
    }

    #[test]
    fn new_only_is_faster_but_dirtier_than_old_only() {
        // The Fig. 9 relationship: Old-Only saves carbon at a service-time
        // cost; New-Only is fast but pays keep-alive carbon on new silicon.
        let trace = SynthTraceConfig {
            n_functions: 16,
            duration_min: 120,
            ..SynthTraceConfig::small(5)
        }
        .generate(&WorkloadCatalog::sebs());
        let ci = CarbonIntensityTrace::constant(300.0, 180);
        let m_new = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::new_only());
        let m_old = Simulation::new(&trace, &ci, skus::pair_a()).run(&mut FixedPolicy::old_only());
        assert!(m_new.total_service_ms() < m_old.total_service_ms());
        assert!(m_new.total_carbon_g() > m_old.total_carbon_g());
    }
}
